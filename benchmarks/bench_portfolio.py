"""Benchmark of the scheduler portfolio with bound-aware ILP pruning.

Runs the default portfolio (two cheap two-stage pipelines plus the
warm-started holistic ILP) over the tiny dataset twice — once with
bound-aware pruning disabled and once with the default provable-only gap —
and reports, per run, the per-instance winners, the number of ILP solver
calls actually dispatched (counted at the backend registry) and the skip
log.  Both runs must report identical best costs: at gap 0 a skip requires
the baseline to match the theory lower bound, in which case the warm-started
ILP member would have returned the baseline anyway.

Environment knobs: ``REPRO_ILP_BACKEND`` selects the solver backend
(``scipy``/``bnb``/``auto``), ``REPRO_PORTFOLIO_PRUNE_GAP`` widens the
pruning gap beyond the cost-neutral default of 0.
"""

from __future__ import annotations

import os

from repro.experiments.datasets import tiny_dataset
from repro.experiments.runner import ExperimentConfig, _env_float
from repro.ilp import reset_solver_call_stats, solver_call_stats
from repro.portfolio import DEFAULT_MEMBERS, Portfolio, format_portfolio_table

from helpers import env_backend, env_limit, env_time_limit, record_text


def _run(dags, config, prune_gap):
    reset_solver_call_stats()
    rows = Portfolio(config=config, prune_gap=prune_gap).run(
        list(DEFAULT_MEMBERS), dags
    )
    return rows, solver_call_stats().total


def test_portfolio_bound_pruning(benchmark):
    config = ExperimentConfig(
        name="portfolio-bench",
        ilp_time_limit=env_time_limit(3.0),
        ilp_node_limit=500,
    )
    prune_gap = _env_float("REPRO_PORTFOLIO_PRUNE_GAP", 0.0)
    dags = tiny_dataset(limit=env_limit(None))

    def both_runs():
        unpruned = _run(dags, config, prune_gap=None)
        pruned = _run(dags, config, prune_gap=prune_gap)
        return unpruned, pruned

    (plain_rows, plain_calls), (pruned_rows, pruned_calls) = benchmark.pedantic(
        both_runs, rounds=1, iterations=1
    )

    lines = [
        f"Scheduler portfolio with bound-aware pruning "
        f"(backend={env_backend()}, gap={prune_gap:g})",
        "",
        "--- pruning disabled",
        format_portfolio_table(plain_rows),
        f"ILP solver calls: {plain_calls}",
        "",
        f"--- pruning enabled (gap {prune_gap:g})",
        format_portfolio_table(pruned_rows),
        f"ILP solver calls: {pruned_calls}",
    ]
    skips = sum(row.num_pruned for row in pruned_rows)
    lines.append(f"skipped ILP solves: {skips}")
    record_text(
        "portfolio_pruning",
        "\n".join(lines),
        benchmark,
        ilp_calls_unpruned=plain_calls,
        ilp_calls_pruned=pruned_calls,
        skipped=skips,
        prune_gap=prune_gap,
    )

    # pruning never costs solver calls, and at gap 0 never costs quality
    assert pruned_calls <= plain_calls
    if prune_gap == 0.0:
        for left, right in zip(plain_rows, pruned_rows):
            assert abs(left.best_cost - right.best_cost) < 1e-9
