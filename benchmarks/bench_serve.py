"""Benchmark of the online scheduling service (`repro.serve`).

Replays the pinned 10^5-request serve bench trace — a seeded Poisson
arrival process over the first 6 tiny-dataset templates, answered by the
load-adaptive policy with repeats served from the content-hash cache — and
checks the JSON SLO summary against the checked-in trajectory
``benchmarks/BENCH_serve.json`` **byte for byte**.

The summary contains no wall-clock values (the service timeline is
virtual), so the comparison is exact on any machine: a mismatch means the
arrival process, the policy, the virtual cost model or the SLO computation
changed behaviour, and the trajectory file must be regenerated on purpose:

    PYTHONPATH=src python benchmarks/bench_serve.py --regenerate

Environment knobs: ``REPRO_BENCH_WORKERS`` fans the distinct-job execution
out over worker processes (cannot change the summary by design),
``REPRO_CACHE_DIR`` lets repeat invocations skip the solver calls.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.serve import run_serve_bench

from helpers import record_text, env_workers, env_backend

TRAJECTORY = Path(__file__).parent / "BENCH_serve.json"

#: The pinned bench configuration (changing it invalidates the trajectory).
BENCH_KWARGS = dict(
    seed=0,
    requests=100_000,
    rate=4.0,
    servers=2,
    dataset="tiny",
    scale="default",
    limit=6,
)


def run_bench() -> str:
    """The byte-stable JSON rendering of the pinned serve bench."""
    from repro.experiments.runner import env_cache_dir

    summary = run_serve_bench(
        workers=env_workers(), cache_dir=env_cache_dir(), **BENCH_KWARGS
    )
    return json.dumps(summary, sort_keys=True, indent=2) + "\n"


def test_serve_bench_matches_trajectory(benchmark):
    text = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    summary = json.loads(text)
    record_text(
        "serve_bench",
        text,
        benchmark=benchmark,
        requests=summary["slo"]["requests"],
        distinct_jobs=summary["slo"]["distinct_jobs"],
        cache_hit_rate=summary["slo"]["cache_hit_rate"],
        trace_digest=summary["trace_digest"],
        ilp_backend=env_backend(),
    )
    expected = TRAJECTORY.read_text()
    assert text == expected, (
        "serve bench summary diverged from benchmarks/BENCH_serve.json; "
        "if the change is intentional, regenerate with "
        "'PYTHONPATH=src python benchmarks/bench_serve.py --regenerate'"
    )


if __name__ == "__main__":
    import sys

    text = run_bench()
    if "--regenerate" in sys.argv:
        TRAJECTORY.write_text(text)
        print(f"wrote {TRAJECTORY}")
    else:
        print(text, end="")
        sys.exit(0 if text == TRAJECTORY.read_text() else 1)
