"""Benchmark regenerating the Figure 1/2 (Theorem 4.1) comparison.

The construction's two-stage schedule (chain per processor + optimal
eviction) is compared with the memory-aware optimum for growing sizes; the
cost ratio grows linearly in the construction size, which is the executable
form of Theorem 4.1.  Lower bounds from :mod:`repro.theory.bounds` are also
reported for the optimum schedule.
"""

from __future__ import annotations

from repro.experiments.figures import theorem41_comparison
from repro.theory.bounds import synchronous_lower_bound
from repro.theory.constructions import two_stage_gap_construction

from helpers import record_text

SIZES = (4, 8, 12, 16, 20)


def test_theorem41_two_stage_gap(benchmark):
    points = benchmark.pedantic(
        lambda: theorem41_comparison(sizes=SIZES, chain_factor=2), rounds=1, iterations=1
    )
    lines = ["Theorem 4.1 — two-stage cost vs. memory-aware optimum (g=1, L=0)", ""]
    header = f"{'d':>4s} {'m':>4s} {'two-stage':>10s} {'optimal':>9s} {'ratio':>7s} {'lower bnd':>10s}"
    lines.append(header)
    lines.append("-" * len(header))
    for point in points:
        construction = two_stage_gap_construction(point.d, point.m)
        bound = synchronous_lower_bound(construction.instance(g=1.0, L=0.0))
        lines.append(
            f"{point.d:>4d} {point.m:>4d} {point.two_stage_cost:>10.1f} "
            f"{point.optimal_cost:>9.1f} {point.ratio:>7.2f} {bound:>10.1f}"
        )
    lines.append("")
    lines.append("the ratio grows with d — the two-stage approach is a Theta(n) factor")
    lines.append("away from the optimum in the limit (Theorem 4.1).")
    record_text("theory_theorem41", "\n".join(lines), benchmark,
                largest_ratio=points[-1].ratio)

    ratios = [p.ratio for p in points]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 2.0
