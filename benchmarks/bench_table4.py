"""Benchmark regenerating Table 4: alternative parameter configurations.

Configurations: r = 5*r0, r = r0, P = 8, L = 0, and the asynchronous cost
model.  The paper's geometric-mean cost reductions are 0.76x, 0.97x, 0.82x,
0.85x and 0.91x respectively; the expected *shape* is that the tight memory
bound (r = r0) and the asynchronous model leave the least room for
improvement.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_reference
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import table4

from helpers import env_limit, env_time_limit, make_engine, record_results

CONFIG_NAMES = ["r5", "r1", "p8", "L0", "async"]


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
def test_table4_configuration(benchmark, config_name):
    base = ExperimentConfig(name="base", ilp_time_limit=env_time_limit(6.0))
    limit = env_limit(6)
    engine = make_engine()

    results_by_config = benchmark.pedantic(
        lambda: table4(base_config=base, limit=limit, configurations=[config_name],
                       engine=engine),
        rounds=1,
        iterations=1,
    )
    results = results_by_config[config_name]
    record_results(
        f"table4_{config_name}",
        results,
        benchmark,
        title=f"Table 4 [{config_name}] — baseline / ILP",
        paper_reference=paper_reference.TABLE4.get(config_name),
    )
    assert all(r.ilp_cost <= r.baseline_cost + 1e-9 for r in results)
