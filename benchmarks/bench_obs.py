"""Benchmark of the observability layer (`repro.obs`): disabled overhead.

The tracing layer's hard constraint is **zero cost when disabled**: every
instrumented hot path calls ``obs.trace_span`` / ``obs.count`` /
``obs.observe``, which must reduce to a guard check and nothing else.
This bench enforces the constraint quantitatively:

1. micro-benchmark the disabled call sites (ns per ``trace_span`` /
   ``count`` / ``observe`` call while tracing is off);
2. run the pinned workload traced once and count every span and metric
   event it records — that is exactly how many disabled-path calls an
   untraced run of the same workload performs;
3. time the untraced workload and assert that the *predicted* overhead —
   events x disabled-call cost over the untraced wall time — stays under
   ``OVERHEAD_BUDGET_PCT`` (2%).

The prediction is deliberately used instead of diffing two noisy
wall-clock runs: on a loaded CI host the run-to-run jitter of the
workload dwarfs the nanosecond-scale cost being measured.

``benchmarks/BENCH_obs.json`` pins the *deterministic structure* of the
traced workload — span counts by name and the recorded metric names — so
an instrumentation regression (a span silently dropped, a hot path that
stopped counting) fails the bench even though timings are machine-local.
Regenerate deliberately after changing the instrumentation:

    PYTHONPATH=src python benchmarks/bench_obs.py --regenerate
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exec import Session, plan_pipelines
from repro.experiments.runner import ExperimentConfig

TRAJECTORY = Path(__file__).parent / "BENCH_obs.json"

OVERHEAD_BUDGET_PCT = 2.0

#: The pinned workload (changing it invalidates the trajectory): seeded
#: two-stage, refine and race pipelines — solver-free, so span counts and
#: wall time are deterministic and fast.
SPECS = (
    "bspg+clairvoyant",
    "bspg+clairvoyant|refine(seed=1)",
    "baseline|race(refine(seed=1),refine(seed=2,strategy=anneal))",
)
DAG_SEEDS = (1, 2)


def _plan():
    dags = []
    for seed in DAG_SEEDS:
        dag = spmv(3, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"spmv_{seed}"
        dags.append(dag)
    config = ExperimentConfig(
        name="bench-obs", num_processors=2, ilp_time_limit=1.0
    )
    return plan_pipelines(SPECS, dags, config)


def _microbench(fn, calls: int = 200_000) -> float:
    """Nanoseconds per call of ``fn`` (one warm timed loop)."""
    fn()  # warm up
    t0 = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - t0) / calls * 1e9


def run_bench() -> dict:
    assert not obs.tracing_enabled(), "bench must start untraced"

    # 1. disabled-path micro-bench
    ns_span = _microbench(lambda: obs.trace_span("x", category="b", a=1))
    ns_count = _microbench(lambda: obs.count("x"))
    ns_observe = _microbench(lambda: obs.observe("x", 1.0))

    # 2. traced run: the event census of the workload
    obs.get_tracer().reset()
    obs.metrics().reset()
    with obs.trace_scope():
        Session(workers=1).run(_plan())
        spans = obs.get_tracer().drain()
        snapshot = obs.metrics().snapshot()
    obs.metrics().reset()
    span_counts: dict = {}
    for span in spans:
        span_counts[span.name] = span_counts.get(span.name, 0) + 1
    counter_events = sum(snapshot["counters"].values())
    observe_events = sum(len(v) for v in snapshot["histograms"].values())
    metric_names = sorted(
        list(snapshot["counters"]) + list(snapshot["histograms"])
    )

    # 3. untraced wall time and the predicted disabled overhead
    t0 = time.perf_counter()
    Session(workers=1).run(_plan())
    untraced_wall = time.perf_counter() - t0
    overhead_ns = (
        len(spans) * ns_span
        + counter_events * ns_count
        + observe_events * ns_observe
    )
    overhead_pct = overhead_ns / (untraced_wall * 1e9) * 100.0

    return {
        "structure": {
            "specs": list(SPECS),
            "dag_seeds": list(DAG_SEEDS),
            "span_counts": dict(sorted(span_counts.items())),
            "metric_names": metric_names,
            "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        },
        "timing": {
            "ns_per_disabled_trace_span": ns_span,
            "ns_per_disabled_count": ns_count,
            "ns_per_disabled_observe": ns_observe,
            "untraced_wall_s": untraced_wall,
            "predicted_overhead_pct": overhead_pct,
        },
    }


def structure_text(report: dict) -> str:
    """The byte-stable part checked against BENCH_obs.json (timings are
    machine-local and deliberately excluded)."""
    return json.dumps(report["structure"], sort_keys=True, indent=2) + "\n"


def main(argv) -> int:
    report = run_bench()
    timing = report["timing"]
    print(f"disabled trace_span: {timing['ns_per_disabled_trace_span']:.0f} ns/call")
    print(f"disabled count:      {timing['ns_per_disabled_count']:.0f} ns/call")
    print(f"disabled observe:    {timing['ns_per_disabled_observe']:.0f} ns/call")
    print(f"untraced workload:   {timing['untraced_wall_s']:.3f} s")
    print(f"predicted disabled-tracing overhead: "
          f"{timing['predicted_overhead_pct']:.4f}% "
          f"(budget {OVERHEAD_BUDGET_PCT:g}%)")
    if timing["predicted_overhead_pct"] >= OVERHEAD_BUDGET_PCT:
        print("FAIL: disabled-tracing overhead exceeds the budget")
        return 1
    text = structure_text(report)
    if "--regenerate" in argv:
        TRAJECTORY.write_text(text)
        print(f"wrote {TRAJECTORY}")
        return 0
    expected = TRAJECTORY.read_text()
    if text != expected:
        print("FAIL: traced-run structure diverged from benchmarks/"
              "BENCH_obs.json; if the instrumentation change is "
              "intentional, regenerate with "
              "'PYTHONPATH=src python benchmarks/bench_obs.py --regenerate'")
        print(text, end="")
        return 1
    print("structure matches BENCH_obs.json")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
