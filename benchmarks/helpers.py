"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The solver
runs are executed exactly once per benchmark (``benchmark.pedantic`` with a
single round); the interesting output is not the wall-clock time but the
schedule costs, which are printed, written to ``benchmarks/results/`` and
attached to the benchmark's ``extra_info``.

Environment knobs:

* ``REPRO_ILP_TIME_LIMIT``  — seconds per ILP solve (default set per bench),
* ``REPRO_ILP_BACKEND``     — ILP solver backend for every solve
  (``scipy``/``bnb``/``auto``; picked up by every ``ExperimentConfig`` the
  benchmarks construct and recorded in the benchmark ``extra_info``),
* ``REPRO_BENCH_SCALE``     — ``default`` (reduced sizes) or ``paper``,
* ``REPRO_BENCH_LIMIT``     — only run the first N instances of a dataset,
* ``REPRO_BENCH_WORKERS``   — worker processes for the experiment engine,
* ``REPRO_CACHE_DIR``       — on-disk result cache for the engine (repeat
  benchmark invocations then skip all solver calls).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.experiments.reporting import format_results_table, write_csv
from repro.experiments.runner import (
    InstanceResult,
    _env_float,
    _env_int,
    env_bench_workers,
    env_cache_dir,
    geometric_mean,
)

RESULTS_DIR = Path(__file__).parent / "results"


def env_time_limit(default: float) -> float:
    """Per-solve time limit, overridable through REPRO_ILP_TIME_LIMIT."""
    return _env_float("REPRO_ILP_TIME_LIMIT", default)


def env_limit(default: Optional[int]) -> Optional[int]:
    """Instance-count limit, overridable through REPRO_BENCH_LIMIT."""
    return _env_int("REPRO_BENCH_LIMIT", default)


def env_workers(default: int = 1) -> int:
    """Engine worker-process count, overridable through REPRO_BENCH_WORKERS.

    Malformed or non-positive values warn and fall back to ``default``
    (the shared warn-and-fall-back convention of the ``REPRO_*`` knobs).
    """
    return env_bench_workers(default)


def env_backend() -> str:
    """The ILP solver backend selected through REPRO_ILP_BACKEND.

    Every :class:`~repro.experiments.runner.ExperimentConfig` a benchmark
    constructs resolves this knob itself; the helper exists so harness code
    can *report* which backend a run used.
    """
    from repro.ilp import default_backend

    return default_backend()


def make_engine(workers: Optional[int] = None):
    """An :class:`~repro.experiments.parallel.ExperimentEngine` configured
    from the environment (REPRO_BENCH_WORKERS, REPRO_CACHE_DIR, both
    warn-and-fall-back on invalid values)."""
    from repro.experiments.parallel import ExperimentEngine

    return ExperimentEngine(
        workers=env_workers() if workers is None else workers,
        cache_dir=env_cache_dir(),
    )


def record_results(
    name: str,
    results: Sequence[InstanceResult],
    benchmark=None,
    title: str = "",
    paper_reference: Optional[Dict[str, tuple]] = None,
) -> None:
    """Print, persist, and attach one experiment's results."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    table = format_results_table(results, title=title or name, paper_reference=paper_reference)
    print("\n" + table + "\n")
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    write_csv(results, RESULTS_DIR / f"{name}.csv")
    if benchmark is not None:
        benchmark.extra_info["geomean_ratio"] = geometric_mean([r.ratio for r in results])
        benchmark.extra_info["instances"] = len(results)
        benchmark.extra_info["ilp_backend"] = env_backend()


def record_text(name: str, text: str, benchmark=None, **extra) -> None:
    """Persist free-form benchmark output (figures, summaries)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    print("\n" + text + "\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if benchmark is not None:
        for key, value in extra.items():
            benchmark.extra_info[key] = value
