"""Benchmark of the adaptive portfolio (`repro.learn`).

Runs the pinned 6-member portfolio exhaustively over the tiny dataset,
mines the results into a learned history, replays the same portfolio with
``select="adaptive"`` (greedy selector, top-3), and checks the JSON
summary against the checked-in trajectory ``benchmarks/BENCH_learn.json``
**byte for byte**.

The summary pins what the adaptive portfolio is *for*: the solver-call
reduction (adaptive must dispatch strictly fewer ILP solves than
exhaustive — the CI smoke gate additionally requires >= 40%) and the
aggregate regret versus the per-instance true best (0 on this dataset:
the history ranks the actual winners first).  The pinned configuration
uses the pure-Python branch-and-bound backend with a node limit, so every
number in the summary — costs, solver calls, selections, history digest —
is deterministic across machines; no wall-clock value enters the file.
A mismatch means features, mining, ranking or selection changed
behaviour, and the trajectory must be regenerated on purpose:

    PYTHONPATH=src python benchmarks/bench_learn.py --regenerate
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.experiments.runner import ExperimentConfig
from repro.ilp.backends import solver_call_stats
from repro.learn import mine_history
from repro.portfolio import Portfolio

from helpers import record_text

TRAJECTORY = Path(__file__).parent / "BENCH_learn.json"

#: The pinned bench configuration (changing it invalidates the trajectory).
#: Two refine variants ride along so the greedy ranking has real choices to
#: make: on most instances they displace the node-limited ILP member from
#: the top-3, which is where the solver-call reduction comes from.
MEMBERS = (
    "bspg+clairvoyant",
    "cilk+lru",
    "etf+clairvoyant",
    "bspg+clairvoyant|refine",
    "etf+clairvoyant|refine",
    "ilp",
)
TOP_K = 3


def _config() -> ExperimentConfig:
    # bnb + node limit: fully deterministic solver-call counts and costs
    # across machines (no HiGHS version or timing dependence)
    return ExperimentConfig(
        name="portfolio",
        ilp_time_limit=60.0,
        ilp_node_limit=3,
        ilp_backend="bnb",
    )


def _dataset():
    from repro.experiments.datasets import tiny_dataset

    return tiny_dataset()


def run_bench() -> str:
    """The byte-stable JSON rendering of the pinned learn bench."""
    from repro.experiments.parallel import ExperimentEngine

    stats = solver_call_stats()
    config = _config()
    dags = _dataset()
    members = list(MEMBERS)

    with tempfile.TemporaryDirectory(prefix="bench-learn-") as scratch:
        results_path = Path(scratch) / "results.jsonl"

        # phase 1: exhaustive ground truth (streams member-tagged records)
        before = stats.snapshot()
        exhaustive = Portfolio(config=config)
        engine = ExperimentEngine(workers=1, results_path=results_path)
        rows_exhaustive = exhaustive.run(members, dags, engine=engine)
        engine.session.log.close()
        exhaustive_calls = stats.delta_since(before)["solver_calls"]

        # phase 2: mine the history the adaptive run will consult
        history, mining = mine_history([results_path], dags, config)

    # phase 3: adaptive replay (fresh engine, no shared cache: the call
    # delta measures what adaptive actually dispatches)
    before = stats.snapshot()
    adaptive = Portfolio(
        config=config, select="adaptive", top_k=TOP_K, history=history
    )
    rows_adaptive = adaptive.run(members, dags, engine=None)
    adaptive_calls = stats.delta_since(before)["solver_calls"]

    selection = adaptive.last_selection
    regret = selection.aggregate_regret()
    summary = {
        "config": {
            "members": members,
            "top_k": TOP_K,
            "selector": "greedy",
            "dataset": "tiny",
            "ilp_backend": config.ilp_backend,
            "ilp_node_limit": config.ilp_node_limit,
        },
        "exhaustive": {
            "solver_calls": exhaustive_calls,
            "jobs": len(rows_exhaustive) * len(members),
            "mined_observations": mining.observations,
        },
        "adaptive": {
            "solver_calls": adaptive_calls,
            "jobs_run": selection.jobs_run,
            "jobs_total": selection.jobs_total,
            "predicted_calls_saved": selection.predicted_calls_saved,
        },
        "solver_call_reduction": round(
            1.0 - adaptive_calls / exhaustive_calls, 9
        ) if exhaustive_calls else 0.0,
        "regret": regret,
        "history_digest": history.digest(),
        "selections": {
            s.instance: list(s.chosen) for s in selection.selections
        },
        "best_costs": {
            row.instance_name: row.best_cost for row in rows_adaptive
        },
    }
    return json.dumps(summary, sort_keys=True, indent=2) + "\n"


def test_learn_bench_matches_trajectory(benchmark):
    text = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    summary = json.loads(text)
    record_text(
        "learn_bench",
        text,
        benchmark=benchmark,
        solver_call_reduction=summary["solver_call_reduction"],
        regret=summary["regret"]["relative"],
        history_digest=summary["history_digest"],
    )
    # the two headline guarantees, asserted independently of the byte
    # comparison so a regression reads as what it is
    assert summary["adaptive"]["solver_calls"] < summary["exhaustive"]["solver_calls"]
    assert summary["solver_call_reduction"] >= 0.4
    assert summary["regret"]["relative"] <= 0.0
    expected = TRAJECTORY.read_text()
    assert text == expected, (
        "learn bench summary diverged from benchmarks/BENCH_learn.json; "
        "if the change is intentional, regenerate with "
        "'PYTHONPATH=src python benchmarks/bench_learn.py --regenerate'"
    )


if __name__ == "__main__":
    import sys

    text = run_bench()
    if "--regenerate" in sys.argv:
        TRAJECTORY.write_text(text)
        print(f"wrote {TRAJECTORY}")
    else:
        print(text, end="")
        sys.exit(0 if text == TRAJECTORY.read_text() else 1)
