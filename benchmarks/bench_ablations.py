"""Benchmarks for the ablation experiments of Section 7.2.

* **Single processor (P = 1)** — the red-blue pebble game with compute costs:
  the DFS + clairvoyant baseline is strong and the ILP rarely improves on it.
* **No recomputation** — forbidding recomputation in the ILP can increase the
  schedule cost (the paper observes up to 1.4x on individual instances).
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentConfig, geometric_mean
from repro.experiments.tables import p1_experiment, recomputation_ablation

from helpers import env_limit, env_time_limit, make_engine, record_results, record_text


def test_single_processor_pebbling(benchmark):
    config = ExperimentConfig(name="p1", ilp_time_limit=env_time_limit(5.0))
    limit = env_limit(8)

    results = benchmark.pedantic(
        lambda: p1_experiment(config=config, limit=limit, engine=make_engine()), rounds=1, iterations=1
    )
    record_results(
        "ablation_p1_pebbling",
        results,
        benchmark,
        title="Single-processor red-blue pebbling (P=1): DFS+clairvoyant / ILP",
    )
    improved = sum(1 for r in results if r.ratio < 1.0 - 1e-9)
    # the paper improves on only 2 of 15 instances (the DFS + clairvoyant
    # baseline is strong); the measured count is recorded for EXPERIMENTS.md
    benchmark.extra_info["instances_improved"] = improved
    assert all(r.ilp_cost <= r.baseline_cost + 1e-9 for r in results)


def test_recomputation_ablation(benchmark):
    config = ExperimentConfig(name="recompute", ilp_time_limit=env_time_limit(6.0))
    limit = env_limit(4)

    results = benchmark.pedantic(
        lambda: recomputation_ablation(config=config, limit=limit, engine=make_engine()), rounds=1, iterations=1
    )
    with_rec = results["with_recompute"]
    without = results["no_recompute"]
    lines = ["Recomputation ablation — ILP cost with / without recomputation", ""]
    header = f"{'instance':<18s} {'recompute':>10s} {'forbidden':>10s} {'factor':>7s}"
    lines.append(header)
    lines.append("-" * len(header))
    factors = []
    for a, b in zip(with_rec, without):
        factor = b.ilp_cost / max(a.ilp_cost, 1e-9)
        factors.append(factor)
        lines.append(f"{a.instance_name:<18s} {a.ilp_cost:>10.1f} {b.ilp_cost:>10.1f} {factor:>7.2f}")
    lines.append("")
    lines.append(f"geomean factor: {geometric_mean(factors):.3f}  "
                 f"(paper: up to 1.40x on individual instances)")
    record_text("ablation_recomputation", "\n".join(lines), benchmark,
                geomean_factor=geometric_mean(factors))
    assert len(with_rec) == len(without)
