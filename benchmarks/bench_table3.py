"""Benchmark regenerating Table 3: every baseline and the ILPs on top of them.

Columns: main baseline (BSPg + clairvoyant), our ILP, weak baseline
(Cilk + LRU), BSP-ILP baseline (+ clairvoyant), and our ILP initialised with
that stronger baseline.  The paper reports geomean reductions of 0.77x vs the
main baseline, 0.66x vs Cilk+LRU and 0.88x vs the BSP-ILP baseline.
"""

from __future__ import annotations

from repro.experiments import paper_reference
from repro.experiments.runner import ExperimentConfig, geometric_mean
from repro.experiments.tables import table3

from helpers import env_limit, env_time_limit, make_engine, record_results, record_text


def test_table3_all_baselines(benchmark):
    config = ExperimentConfig(name="table3", ilp_time_limit=env_time_limit(8.0))
    limit = env_limit(8)
    engine = make_engine()

    results = benchmark.pedantic(
        lambda: table3(config=config, limit=limit, engine=engine), rounds=1, iterations=1
    )
    record_results(
        "table3_columns_base_ilp",
        results,
        benchmark,
        title="Table 3 — main baseline vs our ILP",
        paper_reference=paper_reference.TABLE1,
    )

    lines = ["Table 3 — all columns (baseline / ILP / Cilk+LRU / BSP-ILP / BSP-ILP+ILP)", ""]
    header = (f"{'instance':<18s} {'base':>8s} {'ILP':>8s} {'weak':>8s} "
              f"{'bspILP':>8s} {'bspILP+ILP':>11s}")
    lines.append(header)
    lines.append("-" * len(header))
    for res in results:
        lines.append(
            f"{res.instance_name:<18s} {res.baseline_cost:>8.1f} {res.ilp_cost:>8.1f} "
            f"{res.extra_costs['weak']:>8.1f} {res.extra_costs['bsp_ilp']:>8.1f} "
            f"{res.extra_costs['bsp_ilp_plus_ilp']:>11.1f}"
        )
    ratio_vs_weak = geometric_mean(
        [r.ilp_cost / max(r.extra_costs["weak"], 1e-9) for r in results]
    )
    ratio_vs_bsp_ilp = geometric_mean(
        [r.extra_costs["bsp_ilp_plus_ilp"] / max(r.extra_costs["bsp_ilp"], 1e-9) for r in results]
    )
    lines.append("")
    lines.append(f"geomean ILP / (Cilk+LRU)      : {ratio_vs_weak:.3f}  (paper: 0.66)")
    lines.append(f"geomean (BSP-ILP + ILP) / BSP-ILP: {ratio_vs_bsp_ilp:.3f}  (paper: 0.88)")
    record_text("table3_full", "\n".join(lines), benchmark,
                ratio_vs_weak=ratio_vs_weak, ratio_vs_bsp_ilp=ratio_vs_bsp_ilp)

    assert all(r.ilp_cost <= r.baseline_cost + 1e-9 for r in results)
    # the practical Cilk+LRU baseline should not beat our ILP on average
    assert ratio_vs_weak <= 1.0 + 1e-9
