"""Benchmark regenerating Table 2: divide-and-conquer ILP on the larger dataset.

Paper setting: the "small" dataset (264-464 nodes), P = 4, r = 5 * r0.  The
divide-and-conquer ILP wins clearly on the partitioning-friendly instances
(coarse-grained PageRank / graph-challenge, SpMV) and loses on the tightly
coupled ones (iterated SpMV, k-NN) — unlike the warm-started full ILP it is
*not* guaranteed to beat the baseline.
"""

from __future__ import annotations

from repro.experiments import paper_reference
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import table2

from helpers import env_limit, env_time_limit, make_engine, record_results


def test_table2_divide_and_conquer(benchmark):
    config = ExperimentConfig(
        name="table2", cache_factor=5.0, ilp_time_limit=env_time_limit(5.0)
    )
    limit = env_limit(6)
    engine = make_engine()

    results = benchmark.pedantic(
        lambda: table2(config=config, limit=limit, max_part_size=20, engine=engine),
        rounds=1,
        iterations=1,
    )
    record_results(
        "table2_divide_and_conquer",
        results,
        benchmark,
        title="Table 2 — baseline / divide-and-conquer ILP (P=4, r=5*r0)",
        paper_reference=paper_reference.TABLE2,
    )
    # shape check: costs are positive and every instance was partitioned
    assert all(r.baseline_cost > 0 and r.ilp_cost > 0 for r in results)
    assert all(r.extra_costs["parts"] >= 1 for r in results)
