"""Benchmark regenerating Table 1: baseline vs. holistic ILP, base configuration.

Paper setting: tiny dataset, P = 4, r = 3 * r0, g = 1, L = 10, synchronous
cost.  The paper reports a 0.77x geometric-mean cost reduction of the ILP
over the two-stage baseline (per-instance values in
``repro.experiments.paper_reference.TABLE1``).
"""

from __future__ import annotations

from repro.experiments import paper_reference
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import table1

from helpers import env_limit, env_time_limit, make_engine, record_results


def test_table1_base_case(benchmark):
    config = ExperimentConfig(name="base", ilp_time_limit=env_time_limit(10.0))
    limit = env_limit(None)
    engine = make_engine()

    results = benchmark.pedantic(
        lambda: table1(config=config, limit=limit, engine=engine), rounds=1, iterations=1
    )
    record_results(
        "table1_base",
        results,
        benchmark,
        title="Table 1 — synchronous cost, baseline / ILP (P=4, r=3*r0, L=10)",
        paper_reference=paper_reference.TABLE1,
    )
    # reproduction shape: the warm-started ILP never loses to the baseline
    assert all(r.ilp_cost <= r.baseline_cost + 1e-9 for r in results)
