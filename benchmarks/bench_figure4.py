"""Benchmark regenerating Figure 4: the distribution of cost-reduction ratios.

The figure summarises, per configuration (base case, r = 5*r0, P = 8, L = 0,
asynchronous), the distribution of per-instance ILP/baseline cost ratios.
This benchmark runs a compact version (base, r5, async on a subset of the
tiny dataset) and reports min / quartiles / max / geometric mean per series;
``REPRO_BENCH_LIMIT`` and ``REPRO_ILP_TIME_LIMIT`` scale it up.
"""

from __future__ import annotations

from repro.experiments import paper_reference
from repro.experiments.figures import figure4, render_figure4
from repro.experiments.runner import ExperimentConfig

from helpers import env_limit, env_time_limit, make_engine, record_text

CONFIGURATIONS = ("base", "r5", "async")


def test_figure4_ratio_distributions(benchmark):
    base = ExperimentConfig(name="base", ilp_time_limit=env_time_limit(5.0))
    limit = env_limit(5)
    engine = make_engine()

    series = benchmark.pedantic(
        lambda: figure4(base_config=base, limit=limit, configurations=CONFIGURATIONS,
                        engine=engine),
        rounds=1,
        iterations=1,
    )
    text = render_figure4(series)
    paper_lines = ["", "paper geometric means for reference:"]
    for name in CONFIGURATIONS:
        paper_lines.append(f"  {name:<6s}: {paper_reference.GEOMEAN_RATIOS.get(name, float('nan')):.2f}")
    record_text(
        "figure4",
        text + "\n" + "\n".join(paper_lines),
        benchmark,
        **{f"geomean_{name}": s.geomean for name, s in series.items()},
    )
    # every series consists of ratios in (0, 1]: the ILP never loses
    for s in series.values():
        assert s.maximum <= 1.0 + 1e-9
        assert s.minimum > 0.0
