"""Benchmark of the local-search refinement engine (``repro.refine``).

For every instance of the tiny dataset this harness measures how much of the
baseline-to-ILP cost gap the refiner closes, at what fraction of the ILP
member's wall time:

* ``base``    — the two-stage baseline (``bspg+clairvoyant``),
* ``refined`` — the baseline post-optimized by :func:`repro.refine
  .refine_schedule` (deterministic hill climbing, seeded),
* ``ilp``     — the warm-started holistic ILP member,

and reports, per instance and aggregated, the *closed gap*
``(base - refined) / (base - ilp)`` (1.0 = refinement matches the ILP;
values above 1 mean local search beat the time-limited solver) together
with the wall-time ratio ``refine_time / ilp_time``.

Runs standalone (no pytest-benchmark dependency), which is how the nightly
CI invokes it::

    PYTHONPATH=src python benchmarks/bench_refine.py --limit 13 \
        --out benchmarks/results/bench_refine.json

Environment knobs: ``REPRO_ILP_TIME_LIMIT`` (ILP member budget, default 5 s),
``REPRO_BENCH_LIMIT`` (instance count), ``REPRO_ILP_BACKEND``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.two_stage import baseline_schedule
from repro.experiments.datasets import tiny_dataset
from repro.experiments.runner import ExperimentConfig, run_instance
from repro.refine import refine_schedule

sys.path.insert(0, str(Path(__file__).parent))
from helpers import RESULTS_DIR, env_backend, env_limit, env_time_limit  # noqa: E402


def run_bench(limit=None, time_limit=5.0, refine_budget=3000, seed=0):
    config = ExperimentConfig(name="bench-refine", ilp_time_limit=time_limit)
    rows = []
    for dag in tiny_dataset(limit=limit):
        instance = config.instance_for(dag)
        t0 = time.perf_counter()
        base = baseline_schedule(instance, synchronous=True, seed=config.seed)
        base_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        refined = refine_schedule(base.mbsp_schedule, budget=refine_budget, seed=seed)
        refine_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        ilp = run_instance(dag, config, instance=instance, baseline=base)
        ilp_time = time.perf_counter() - t0

        gap = base.cost - ilp.ilp_cost
        closed = (base.cost - refined.final_cost) / gap if gap > 1e-9 else None
        rows.append({
            "instance": dag.name,
            "nodes": dag.num_nodes,
            "base_cost": base.cost,
            "refined_cost": refined.final_cost,
            "ilp_cost": ilp.ilp_cost,
            "closed_gap": closed,
            "base_time": base_time,
            "refine_time": refine_time,
            "ilp_time": ilp_time,
            "refine_accepted": refined.accepted,
            "refine_proposals": refined.proposals,
        })
    return rows


def summarize(rows, time_limit, refine_budget):
    improved = [r for r in rows if r["refined_cost"] < r["base_cost"] - 1e-9]
    beats_ilp = [r for r in rows if r["refined_cost"] < r["ilp_cost"] - 1e-9]
    gaps = [r["closed_gap"] for r in rows if r["closed_gap"] is not None]
    total_refine = sum(r["refine_time"] for r in rows)
    total_ilp = sum(r["ilp_time"] for r in rows)
    return {
        "backend": env_backend(),
        "ilp_time_limit": time_limit,
        "refine_budget": refine_budget,
        "instances": len(rows),
        "instances_improved_by_refine": len(improved),
        "instances_where_refine_beats_ilp": len(beats_ilp),
        "mean_closed_gap": sum(gaps) / len(gaps) if gaps else None,
        "total_refine_time": total_refine,
        "total_ilp_time": total_ilp,
        "refine_time_fraction_of_ilp": (
            total_refine / total_ilp if total_ilp > 0 else None
        ),
    }


def format_table(rows):
    header = (
        f"{'instance':<14s} {'n':>4s} {'base':>8s} {'refined':>8s} {'ilp':>8s} "
        f"{'closed':>7s} {'t_ref':>7s} {'t_ilp':>7s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        closed = f"{r['closed_gap']:.2f}" if r["closed_gap"] is not None else "-"
        lines.append(
            f"{r['instance']:<14s} {r['nodes']:>4d} {r['base_cost']:>8.1f} "
            f"{r['refined_cost']:>8.1f} {r['ilp_cost']:>8.1f} {closed:>7s} "
            f"{r['refine_time']:>6.2f}s {r['ilp_time']:>6.2f}s"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=env_limit(None))
    parser.add_argument("--time-limit", type=float, default=env_time_limit(5.0))
    parser.add_argument("--refine-budget", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(RESULTS_DIR / "bench_refine.json"))
    args = parser.parse_args(argv)

    rows = run_bench(limit=args.limit, time_limit=args.time_limit,
                     refine_budget=args.refine_budget, seed=args.seed)
    summary = summarize(rows, args.time_limit, args.refine_budget)
    table = format_table(rows)
    print(table)
    print()
    print(json.dumps(summary, indent=2))

    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps({"summary": summary, "instances": rows}, indent=2))
    (out_path.parent / "bench_refine.txt").write_text(table + "\n")
    print(f"\nresults written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
