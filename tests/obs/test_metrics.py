"""Unit tests for counters/histograms and their cross-process merge."""

from __future__ import annotations

import json
import os

from repro import obs
from repro.obs.metrics import (
    HISTOGRAM_VALUE_CAP,
    Histogram,
    MetricsRegistry,
    merge_spill_metrics,
    nearest_rank_percentile,
)


class TestNearestRank:
    def test_matches_the_serve_bench_convention(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank_percentile(values, 50) == 2.0
        assert nearest_rank_percentile(values, 99) == 4.0
        assert nearest_rank_percentile(values, 100) == 4.0
        assert nearest_rank_percentile([], 50) == 0.0
        assert nearest_rank_percentile([7.0], 50) == 7.0

    def test_histogram_summary_is_deterministic(self):
        hist = Histogram()
        for value in (5.0, 1.0, 3.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3.0
        assert summary["sum"] == 9.0
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["p50"] == 3.0

    def test_histogram_value_cap_keeps_count_and_sum_accurate(self):
        hist = Histogram()
        for i in range(HISTOGRAM_VALUE_CAP + 10):
            hist.observe(1.0)
        assert hist.count == HISTOGRAM_VALUE_CAP + 10
        assert len(hist.values) == HISTOGRAM_VALUE_CAP
        assert hist.dropped == 10


class TestRegistry:
    def test_module_helpers_are_noops_while_disabled(self):
        obs.count("cache.hit")
        obs.observe("stage_time", 0.5)
        summary = obs.metrics().summary()
        assert summary == {"counters": {}, "histograms": {}}

    def test_module_helpers_record_while_enabled(self):
        obs.configure_tracing(True)
        obs.count("cache.hit")
        obs.count("cache.hit", 2.0)
        obs.observe("stage_time", 0.25)
        assert obs.metrics().counter("cache.hit") == 3.0
        assert obs.metrics().histogram("stage_time").count == 1

    def test_merge_snapshot_sums_counters_and_concats_histograms(self):
        a = MetricsRegistry()
        a.inc("jobs", 2)
        a.observe("t", 1.0)
        b = MetricsRegistry()
        b.inc("jobs", 3)
        b.observe("t", 5.0)
        b.merge_snapshot(a.snapshot())
        assert b.counter("jobs") == 5.0
        assert sorted(b.histogram("t").values) == [1.0, 5.0]


class TestSpill:
    def test_flush_writes_only_the_delta_since_last_flush(self, tmp_path):
        spill = str(tmp_path)
        registry = MetricsRegistry()
        registry.inc("n", 2)
        assert registry.flush(spill)
        registry.inc("n", 5)
        registry.observe("h", 1.5)
        assert registry.flush(spill)
        # nothing new: no third line
        assert not registry.flush(spill)
        path = tmp_path / f"metrics-{os.getpid()}.jsonl"
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["counters"] == {"n": 2}
        assert lines[1]["counters"] == {"n": 5}
        assert lines[1]["histograms"] == {"h": [1.5]}

    def test_merge_spill_metrics_recovers_the_full_tally(self, tmp_path):
        spill = str(tmp_path)
        registry = MetricsRegistry()
        registry.inc("n", 2)
        registry.flush(spill)
        registry.inc("n", 5)
        registry.observe("h", 1.5)
        registry.flush(spill)
        # fake a second process's spill file
        other = {"pid": 999, "counters": {"n": 10}, "histograms": {"h": [2.5]}}
        with open(tmp_path / "metrics-999.jsonl", "w") as handle:
            handle.write(json.dumps(other) + "\n")
        merged = merge_spill_metrics(spill)
        assert merged.counter("n") == 17.0
        assert sorted(merged.histogram("h").values) == [1.5, 2.5]

    def test_collect_metrics_without_spill_reads_the_local_registry(self):
        obs.configure_tracing(True)
        obs.count("x")
        merged = obs.collect_metrics()
        assert merged.counter("x") == 1.0
        # a fresh registry: mutating it does not touch the live one
        merged.inc("x", 100)
        assert obs.metrics().counter("x") == 1.0
