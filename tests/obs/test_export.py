"""Chrome trace-event export, validation and the progress renderer."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs.export import (
    chrome_trace_events,
    span_tree_errors,
    validate_chrome_trace,
)
from repro.obs.progress import ProgressRenderer


def _traced_nest():
    obs.configure_tracing(True)
    with obs.trace_span("outer", category="session", jobs=2):
        with obs.trace_span("inner", category="pipeline"):
            pass
    return obs.collect_spans()


class TestChromeTrace:
    def test_events_carry_phase_timing_and_span_identity(self):
        spans = _traced_nest()
        events = chrome_trace_events(spans)
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1  # one process_name row per pid
        assert {e["name"] for e in complete} == {"outer", "inner"}
        by_name = {e["name"]: e for e in complete}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["cat"] == "session"
        assert outer["args"]["jobs"] == 2
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        # ts is microseconds relative to the earliest span
        assert min(e["ts"] for e in complete) == 0.0
        assert all(e["dur"] >= 0.0 for e in complete)

    def test_write_and_validate_roundtrip(self, tmp_path):
        spans = _traced_nest()
        path = str(tmp_path / "trace.json")
        assert obs.write_chrome_trace(path, spans) == 2
        ok, errors = obs.validate_chrome_trace_file(path)
        assert ok, errors
        document = json.load(open(path))
        assert document["displayTimeUnit"] == "ms"

    def test_validator_rejects_malformed_documents(self):
        assert not validate_chrome_trace([])[0]
        assert not validate_chrome_trace({"traceEvents": "nope"})[0]
        ok, errors = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "Z", "pid": "bad", "tid": 0}]}
        )
        assert not ok
        assert any("bad phase" in error for error in errors)
        assert any("pid" in error for error in errors)
        ok, errors = validate_chrome_trace(
            {"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -4, "dur": 0}
            ]}
        )
        assert not ok

    def test_empty_trace_exports_no_events(self, tmp_path):
        path = str(tmp_path / "empty.json")
        assert obs.write_chrome_trace(path, []) == 0
        ok, _ = obs.validate_chrome_trace_file(path)
        assert ok

    def test_span_tree_errors_flags_dangling_and_escaping_children(self):
        spans = _traced_nest()
        assert span_tree_errors(spans) == []
        spans[1].parent_id = 999
        assert any("dangling" in error for error in span_tree_errors(spans))

    def test_export_trace_metrics_formats(self, tmp_path):
        obs.configure_tracing(True)
        obs.count("cache.hit", 3)
        obs.observe("stage_time", 0.5)
        json_path = str(tmp_path / "metrics.json")
        assert obs.export_trace(json_path, fmt="metrics-json") == 2
        data = json.load(open(json_path))
        assert data["counters"]["cache.hit"] == 3.0
        assert data["histograms"]["stage_time"]["count"] == 1.0
        text_path = str(tmp_path / "metrics.txt")
        assert obs.export_trace(text_path, fmt="metrics") == 2
        text = open(text_path).read()
        assert "cache.hit" in text and "p99" in text


class TestChromeTraceFile:
    def test_traces_a_region_and_writes_the_merged_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        with obs.chrome_trace_file(path) as trace:
            assert obs.tracing_enabled()
            with obs.trace_span("region"):
                pass
        assert not obs.tracing_enabled()
        assert trace.span_count == 1
        ok, errors = obs.validate_chrome_trace_file(path)
        assert ok, errors


class TestProgressRenderer:
    def test_renders_nothing_when_stream_is_not_a_tty(self):
        stream = io.StringIO()  # isatty() -> False
        progress = ProgressRenderer(stream=stream)
        progress.update(1, 4, current="x")
        progress.close()
        assert stream.getvalue() == ""

    def test_forced_enabled_renders_and_closes_with_newline(self):
        stream = io.StringIO()
        progress = ProgressRenderer(stream=stream, enabled=True)
        progress.update(1, 4, current="spmv · baseline", cache_hits=1)
        progress.update(2, 4)
        progress.close()
        out = stream.getvalue()
        assert "[1/4]" in out and "[2/4]" in out
        assert "spmv · baseline" in out
        assert out.endswith("\n")
        # closing twice adds nothing
        progress.close()
        assert stream.getvalue() == out

    def test_attach_drives_updates_from_session_events(self):
        from repro.exec import RunPlan, Session
        from repro.experiments.parallel import ExperimentJob
        from repro.experiments.runner import ExperimentConfig
        from repro.dag.generators import spmv

        config = ExperimentConfig(
            name="progress-test", num_processors=2, ilp_time_limit=1.0
        )
        jobs = [
            ExperimentJob.make(
                "portfolio", spmv(3, seed=s), config, member="bspg+clairvoyant"
            )
            for s in (1, 2)
        ]
        stream = io.StringIO()
        progress = ProgressRenderer(stream=stream, enabled=True)
        session = Session()
        progress.attach(session)
        session.run(RunPlan.from_jobs(jobs))
        progress.close()
        out = stream.getvalue()
        assert "[1/2]" in out and "[2/2]" in out
        assert "bspg+clairvoyant" in out
