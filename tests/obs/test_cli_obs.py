"""CLI tests for the observability wiring: --trace on exec run /
pipeline run / serve bench, --progress, and the obs export command."""

import json

import pytest

from repro import cli, obs
from repro.exceptions import ConfigurationError


class TestExecRunTrace:
    def test_trace_writes_a_valid_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "out.json"
        exit_code = cli.main([
            "exec", "run",
            "--pipeline", "baseline|race(ilp@bnb,ilp@scipy)",
            "--limit", "1", "--node-limit", "5", "--time-limit", "1",
            "--trace", str(trace),
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "chrome trace written to" in out
        ok, errors = obs.validate_chrome_trace_file(str(trace))
        assert ok, errors
        document = json.load(open(trace))
        names = {
            event["name"] for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        assert {
            "session.run", "session.job", "pipeline", "stage",
            "race.branch", "ilp.solve",
        } <= names
        # tracing is off again once the command returns
        assert not obs.tracing_enabled()

    def test_traced_results_byte_identical_to_untraced(self, tmp_path, capsys):
        common = [
            "exec", "run", "--pipeline", "bspg+clairvoyant",
            "--limit", "2", "--time-limit", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        traced = tmp_path / "traced.jsonl"
        untraced = tmp_path / "untraced.jsonl"
        assert cli.main(common + [
            "--results", str(traced), "--trace", str(tmp_path / "t.json"),
        ]) == 0
        assert cli.main(common + ["--results", str(untraced)]) == 0
        capsys.readouterr()
        assert traced.read_bytes() == untraced.read_bytes()

    def test_progress_flag_is_silent_off_tty(self, capsys):
        exit_code = cli.main([
            "exec", "run", "--pipeline", "bspg+clairvoyant",
            "--limit", "1", "--time-limit", "1", "--progress",
        ])
        assert exit_code == 0
        assert capsys.readouterr().err == ""


class TestPipelineRunTrace:
    def test_trace_captures_stage_and_solver_spans(self, tmp_path, capsys):
        trace = tmp_path / "pipe.json"
        exit_code = cli.main([
            "pipeline", "run", "--spec", "baseline|ilp@scipy",
            "--generator", "spmv", "--size", "3", "--time-limit", "1",
            "--trace", str(trace),
        ])
        assert exit_code == 0
        ok, errors = obs.validate_chrome_trace_file(str(trace))
        assert ok, errors
        document = json.load(open(trace))
        names = {
            event["name"] for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        assert {"pipeline", "stage", "ilp.solve"} <= names


class TestServeBenchTrace:
    def test_traced_summary_identical_to_untraced(self, tmp_path, capsys):
        common = [
            "serve", "bench", "--seed", "3", "--requests", "200",
            "--limit", "2",
        ]
        traced = tmp_path / "traced.json"
        untraced = tmp_path / "untraced.json"
        assert cli.main(common + [
            "--output", str(traced), "--trace", str(tmp_path / "t.json"),
        ]) == 0
        assert cli.main(common + ["--output", str(untraced)]) == 0
        capsys.readouterr()
        assert traced.read_bytes() == untraced.read_bytes()
        document = json.load(open(tmp_path / "t.json"))
        names = {
            event["name"] for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        assert {"serve.run", "serve.simulate", "serve.execute"} <= names


class TestObsExport:
    def _spill_a_run(self, spill, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, str(spill))
        # the CLI process would self-configure at import; do it explicitly
        obs.configure_tracing(True, spill_dir=str(spill))
        assert cli.main([
            "exec", "run", "--pipeline", "bspg+clairvoyant",
            "--limit", "1", "--time-limit", "1",
        ]) == 0
        obs.flush_observability()
        obs.configure_tracing(False, spill_dir=None)

    def test_export_chrome_trace_from_spill_dir(
        self, tmp_path, capsys, monkeypatch
    ):
        spill = tmp_path / "spill"
        self._spill_a_run(spill, monkeypatch)
        out_path = tmp_path / "merged.json"
        assert cli.main([
            "obs", "export", "--spill", str(spill),
            "--output", str(out_path),
        ]) == 0
        assert "exported" in capsys.readouterr().out
        ok, errors = obs.validate_chrome_trace_file(str(out_path))
        assert ok, errors

    def test_export_metrics_table_prints_to_stdout(
        self, tmp_path, capsys, monkeypatch
    ):
        spill = tmp_path / "spill"
        self._spill_a_run(spill, monkeypatch)
        assert cli.main([
            "obs", "export", "--spill", str(spill), "--format", "metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "histograms:" in out or "counters:" in out

    def test_export_without_spill_dir_errors_clearly(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_TRACE, raising=False)
        with pytest.raises(ConfigurationError, match="spill"):
            cli.main(["obs", "export", "--output", "x.json"])
