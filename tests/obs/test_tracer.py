"""Unit tests for the span tracer (repro.obs.tracer)."""

from __future__ import annotations

import os
import threading

from repro import obs
from repro.obs.tracer import _SpanScope  # noqa: F401 - existence check


class TestDisabled:
    def test_disabled_trace_span_returns_shared_null_scope(self):
        scope = obs.trace_span("anything", category="x", cost=1)
        assert scope is obs.NULL_SCOPE
        assert obs.trace_span_detached("other", parent=3) is obs.NULL_SCOPE
        with scope as span:
            span.set(more=2)  # no-op, no error
        assert obs.get_tracer().drain() == []

    def test_tracing_enabled_reflects_configuration(self):
        assert not obs.tracing_enabled()
        obs.configure_tracing(True)
        assert obs.tracing_enabled()
        obs.configure_tracing(False)
        assert not obs.tracing_enabled()


class TestRecording:
    def test_span_records_identity_timing_and_attrs(self):
        obs.configure_tracing(True)
        with obs.trace_span("work", category="test", size=3) as span:
            span.set(cost=7)
        (recorded,) = obs.get_tracer().drain()
        assert recorded.name == "work"
        assert recorded.category == "test"
        assert recorded.attrs == {"size": 3, "cost": 7}
        assert recorded.pid == os.getpid()
        assert recorded.tid == threading.get_ident() & 0xFFFFFFFF
        assert recorded.duration >= 0.0
        assert recorded.parent_id is None

    def test_nested_spans_chain_parents_through_the_thread_stack(self):
        obs.configure_tracing(True)
        with obs.trace_span("outer"):
            with obs.trace_span("middle"):
                with obs.trace_span("inner"):
                    pass
        by_name = {span.name: span for span in obs.get_tracer().drain()}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id

    def test_sibling_threads_get_independent_stacks(self):
        obs.configure_tracing(True)

        def worker():
            with obs.trace_span("child"):
                pass

        with obs.trace_span("parent"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {span.name: span for span in obs.get_tracer().drain()}
        # the other thread's stack is empty: no cross-thread parenting
        assert by_name["child"].parent_id is None

    def test_detached_span_uses_explicit_parent_and_skips_the_stack(self):
        obs.configure_tracing(True)
        with obs.trace_span("outer"):
            parent_id = obs.get_tracer().current_span_id()
            with obs.trace_span_detached("job-a", parent=parent_id):
                # a detached span must NOT become the stack parent of
                # spans opened while it is live
                with obs.trace_span("stacked"):
                    pass
        by_name = {span.name: span for span in obs.get_tracer().drain()}
        assert by_name["job-a"].parent_id == by_name["outer"].span_id
        assert by_name["stacked"].parent_id == by_name["outer"].span_id

    def test_exception_inside_span_sets_error_attr_and_pops_stack(self):
        obs.configure_tracing(True)
        try:
            with obs.trace_span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        with obs.trace_span("after"):
            pass
        by_name = {span.name: span for span in obs.get_tracer().drain()}
        assert by_name["boom"].attrs["error"] == "ValueError"
        assert by_name["after"].parent_id is None

    def test_bounded_buffer_drops_and_counts_overflow(self):
        obs.configure_tracing(True, max_spans=4)
        try:
            for i in range(7):
                with obs.trace_span(f"s{i}"):
                    pass
            tracer = obs.get_tracer()
            assert len(tracer.spans()) == 4
            assert tracer.dropped == 3
            assert [span.name for span in tracer.drain()] == [
                "s3", "s4", "s5", "s6",
            ]
        finally:
            obs.configure_tracing(False, max_spans=obs.DEFAULT_MAX_SPANS)


class TestScopeAndSpill:
    def test_trace_scope_restores_prior_state_and_env(self):
        os.environ.pop(obs.ENV_TRACE, None)
        with obs.trace_scope():
            assert obs.tracing_enabled()
            assert os.environ[obs.ENV_TRACE] == "1"
        assert not obs.tracing_enabled()
        assert obs.ENV_TRACE not in os.environ

    def test_trace_scope_exports_spill_dir_for_workers(self, tmp_path):
        spill = str(tmp_path / "spill")
        with obs.trace_scope(spill_dir=spill):
            assert os.environ[obs.ENV_TRACE] == spill
            with obs.trace_span("work"):
                pass
        # exit flushed to the spill file
        spans = obs.read_spill_spans(spill)
        assert [span.name for span in spans] == ["work"]

    def test_flush_appends_jsonl_and_roundtrips(self, tmp_path):
        spill = str(tmp_path)
        obs.configure_tracing(True, spill_dir=spill)
        with obs.trace_span("one", category="c", answer=42):
            pass
        assert obs.get_tracer().flush() == 1
        with obs.trace_span("two"):
            pass
        assert obs.get_tracer().flush() == 1
        spans = obs.read_spill_spans(spill)
        assert [span.name for span in spans] == ["one", "two"]
        assert spans[0].attrs == {"answer": 42}
        assert spans[0].category == "c"

    def test_flush_without_spill_dir_keeps_spans_buffered(self):
        obs.configure_tracing(True)
        with obs.trace_span("kept"):
            pass
        assert obs.get_tracer().flush() == 0
        assert [span.name for span in obs.get_tracer().drain()] == ["kept"]

    def test_read_spill_spans_skips_corrupt_lines(self, tmp_path):
        spill = str(tmp_path)
        obs.configure_tracing(True, spill_dir=spill)
        with obs.trace_span("good"):
            pass
        obs.get_tracer().flush()
        path = tmp_path / f"spans-{os.getpid()}.jsonl"
        with open(path, "a") as handle:
            handle.write("not json\n{\"also\": \"bad\"}\n")
        spans = obs.read_spill_spans(spill)
        assert [span.name for span in spans] == ["good"]
