"""End-to-end instrumentation tests: spans across Session / pipeline /
solver, per-branch race telemetry, and the no-observable-difference
guarantee (traced results fingerprint-identical to untraced ones)."""

from __future__ import annotations

import math

from repro import obs
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exec import RunPlan, Session
from repro.experiments.parallel import ExperimentJob
from repro.experiments.runner import ExperimentConfig
from repro.obs.export import span_tree_errors
from repro.pipeline import describe_stage_table
from repro.pipeline.stage import StageResult

RACE_SPEC = "baseline|race(ilp@bnb,ilp@scipy)"


def _dag(seed=1):
    dag = spmv(3, seed=seed)
    assign_random_memory_weights(dag, seed=seed)
    dag.name = f"spmv_{seed}"
    return dag


def _config(**kwargs):
    return ExperimentConfig(
        name="obs-test", num_processors=2, ilp_time_limit=1.0, **kwargs
    )


def _run_race(traced: bool, workers: int = 2):
    session = Session(workers=workers)
    if traced:
        with obs.trace_scope():
            result = session.run_pipeline(RACE_SPEC, _dag(), _config())
            spans = obs.get_tracer().drain()
        return result, spans
    return session.run_pipeline(RACE_SPEC, _dag(), _config()), []


class TestRacePipelineSpans:
    def test_traced_race_records_every_layer_with_correct_nesting(self):
        result, spans = _run_race(traced=True)
        assert result.applicable
        names = {span.name for span in spans}
        assert {"pipeline", "stage", "race.branch", "ilp.solve"} <= names
        categories = {span.category for span in spans}
        assert {"pipeline", "solver"} <= categories
        assert span_tree_errors(spans) == []
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        # both race branches ran, each with its own solver span under it
        branches = by_name["race.branch"]
        assert len(branches) == 2
        branch_ids = {span.span_id for span in branches}
        solves = by_name["ilp.solve"]
        assert {span.parent_id for span in solves} <= branch_ids
        for span in solves:
            assert span.attrs["backend"] in ("bnb", "scipy")
        # stage spans carry the cost flow
        stage_spans = by_name["stage"]
        assert any("cost_out" in span.attrs for span in stage_spans)

    def test_session_run_records_job_lifecycle_spans(self):
        config = _config()
        jobs = [
            ExperimentJob.make(
                "portfolio", _dag(seed), config, member="bspg+clairvoyant"
            )
            for seed in (1, 2)
        ]
        with obs.trace_scope():
            Session(workers=1).run(RunPlan.from_jobs(jobs))
            spans = obs.get_tracer().drain()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        (session_span,) = by_name["session.run"]
        assert session_span.attrs["jobs"] == 2
        assert session_span.attrs["executed"] == 2
        job_spans = by_name["session.job"]
        assert len(job_spans) == 2
        assert all(
            span.parent_id == session_span.span_id for span in job_spans
        )
        assert {span.attrs["instance"] for span in job_spans} == {
            "spmv_1", "spmv_2",
        }

    def test_untraced_run_records_nothing(self):
        result, _ = _run_race(traced=False)
        assert result.applicable
        assert obs.get_tracer().drain() == []


class TestNoObservableDifference:
    def test_traced_and_untraced_fingerprints_are_identical(self):
        traced_result, _ = _run_race(traced=True)
        untraced_result, _ = _run_race(traced=False)
        traced = traced_result.to_instance_result()
        untraced = untraced_result.to_instance_result()
        assert traced.fingerprint() == untraced.fingerprint()

    def test_job_keys_ignore_tracing_state(self):
        job = ExperimentJob.make(
            "portfolio", _dag(), _config(), member="bspg+clairvoyant"
        )
        key_untraced = job.key()
        with obs.trace_scope():
            key_traced = job.key()
        assert key_traced == key_untraced


class TestRaceBranchTelemetry:
    def test_branches_carry_solver_attribution_and_outcome(self):
        result, _ = _run_race(traced=False)
        race_stage = result.stages[-1]
        branches = race_stage.telemetry["race_branches"]
        assert set(branches) == {"ilp@bnb", "ilp@scipy"}
        winners = 0
        for telemetry in branches.values():
            assert {
                "wall_time", "solver_calls", "solver_time",
                "cancel_reason", "cancelled", "winner", "started",
            } <= set(telemetry)
            winners += bool(telemetry["winner"])
            if telemetry["started"] and not telemetry["cancelled"]:
                assert telemetry["solver_calls"] >= 1
                assert telemetry["solver_time"] >= 0.0
        assert winners == 1

    def test_sequential_fallback_marks_skipped_branches(self):
        # workers=1 runs branches sequentially; once a branch wins, the
        # rest are recorded as not started with the winner-decided reason
        result = Session(workers=1).run_pipeline(
            "baseline|race(bspg+clairvoyant,ilp@scipy)", _dag(), _config()
        )
        branches = result.stages[-1].telemetry["race_branches"]
        skipped = [b for b in branches.values() if not b["started"]]
        for telemetry in skipped:
            assert telemetry["cancel_reason"] == "race winner decided"
            assert telemetry["solver_calls"] == 0


class TestDescribeStageTable:
    def test_skipped_stage_renders_dashes_not_zero_seconds(self):
        stages = [
            StageResult(stage="baseline", schedule=None, cost=10.0,
                        status="schedule:abc",
                        telemetry={"wall_time": 0.5, "solver_calls": 0.0}),
            StageResult(stage="ilp", schedule=None, cost=10.0,
                        status="skipped", skipped=True),
        ]
        lines = describe_stage_table(stages)
        skipped_line = lines[1]
        assert "skipped (bound pruning)" in skipped_line
        assert "-" in skipped_line
        assert "0.00s" not in skipped_line
        assert "cost 10 -> 10" in skipped_line

    def test_composite_row_uses_canonical_token_and_branch_subrows(self):
        token = "race(ilp@bnb,ilp@scipy)"
        stages = [
            StageResult(stage="baseline", schedule=None, cost=12.0,
                        telemetry={"wall_time": 0.1, "solver_calls": 0.0}),
            StageResult(
                stage=token, schedule=None, cost=9.0,
                status="race[ilp@bnb] optimal",
                telemetry={
                    "wall_time": 1.0,
                    "solver_calls": 2.0,
                    "race_branches": {
                        "ilp@bnb": {
                            "cost": 9.0, "wall_time": 0.9, "winner": True,
                            "started": True, "cancelled": False,
                            "solver_calls": 1, "cancel_reason": "",
                        },
                        "ilp@scipy": {
                            "cost": math.inf, "wall_time": 0.4,
                            "winner": False, "started": True,
                            "cancelled": True, "solver_calls": 1,
                            "cancel_reason": "race winner decided",
                        },
                    },
                },
            ),
        ]
        lines = describe_stage_table(stages)
        # the composite row shows the canonical token, sized to fit
        assert any(line.strip().startswith(token) for line in lines)
        subrows = [line for line in lines if line.startswith("    - ")]
        assert len(subrows) == 2
        winner_row = next(line for line in subrows if "ilp@bnb" in line)
        loser_row = next(line for line in subrows if "ilp@scipy" in line)
        assert "winner" in winner_row
        assert "cancelled: race winner decided" in loser_row
        assert "cost -" in loser_row  # infinite cost renders as '-'

    def test_not_started_branch_renders_reason(self):
        stages = [
            StageResult(
                stage="race(a,b)", schedule=None, cost=5.0,
                telemetry={
                    "wall_time": 0.2, "solver_calls": 0.0,
                    "race_branches": {
                        "a": {"cost": 5.0, "wall_time": 0.2, "winner": True,
                              "started": True, "cancelled": False,
                              "solver_calls": 0},
                        "b": {"cost": math.inf, "wall_time": 0.0,
                              "winner": False, "started": False,
                              "cancelled": True, "solver_calls": 0,
                              "cancel_reason": "race winner decided"},
                    },
                },
            ),
        ]
        lines = describe_stage_table(stages)
        assert any("not started: race winner decided" in line for line in lines)
