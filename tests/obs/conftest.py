"""Fixtures for the observability tests: leave no tracer state behind.

The tracer and metrics registry are process-wide singletons; every test
in this package runs with a clean slate and restores the disabled state
afterwards so the rest of the suite stays untraced.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_observability():
    obs.configure_tracing(False, spill_dir=None)
    obs.get_tracer().reset()
    obs.metrics().reset()
    yield
    obs.configure_tracing(False, spill_dir=None)
    obs.get_tracer().reset()
    obs.metrics().reset()
