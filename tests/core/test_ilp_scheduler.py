"""End-to-end tests of the holistic ILP scheduler (small instances only)."""

import pytest

from repro.core.full_ilp import MbspIlpConfig
from repro.core.scheduler import MbspIlpScheduler, estimate_time_steps, schedule_mbsp
from repro.core.two_stage import baseline_schedule
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, fork_join_dag, kmeans, spmv
from repro.exceptions import ConfigurationError
from repro.ilp import SolverOptions
from repro.model.cost import asynchronous_cost, synchronous_cost
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule


def tiny_instance(num_processors=2, cache_factor=3.0, L=10.0):
    dag = fork_join_dag(width=3, stages=1)
    assign_random_memory_weights(dag, seed=3)
    return make_instance(dag, num_processors=num_processors, cache_factor=cache_factor, g=1, L=L)


FAST = MbspIlpConfig(solver_options=SolverOptions(time_limit=10.0))


class TestEstimateTimeSteps:
    def test_derived_from_supersteps(self, small_instance):
        base = baseline_schedule(small_instance)
        steps = estimate_time_steps(base.mbsp_schedule, extra_steps=2, step_cap=100)
        assert steps == 2 * base.mbsp_schedule.num_supersteps + 2

    def test_cap_applied(self, small_instance):
        base = baseline_schedule(small_instance)
        assert estimate_time_steps(base.mbsp_schedule, step_cap=6) <= 6

    def test_minimum_of_four(self, small_instance):
        base = baseline_schedule(small_instance)
        assert estimate_time_steps(base.mbsp_schedule, step_cap=1) >= 4


class TestIlpScheduler:
    @pytest.mark.slow
    def test_never_worse_than_baseline_synchronous(self):
        instance = tiny_instance()
        result = MbspIlpScheduler(FAST).schedule(instance)
        assert result.best_cost <= result.baseline.cost + 1e-9
        assert result.improvement_ratio <= 1.0 + 1e-9
        validate_schedule(result.best_schedule, require_all_computed=False)
        assert synchronous_cost(result.best_schedule) == pytest.approx(result.best_cost)

    @pytest.mark.slow
    def test_finds_improvement_on_easy_instance(self):
        """The fork-join gadget has an obviously better schedule than the
        superstep-heavy baseline; 10 seconds are plenty for HiGHS here."""
        instance = tiny_instance()
        result = MbspIlpScheduler(FAST).schedule(instance)
        assert result.ilp_cost is not None
        assert result.ilp_cost < result.baseline.cost

    @pytest.mark.slow
    def test_asynchronous_mode(self):
        instance = tiny_instance(L=0.0)
        config = MbspIlpConfig(synchronous=False, solver_options=SolverOptions(time_limit=10.0))
        result = MbspIlpScheduler(config).schedule(instance)
        validate_schedule(result.best_schedule, require_all_computed=False)
        assert result.best_cost == pytest.approx(
            asynchronous_cost(result.best_schedule)
        )
        assert result.best_cost <= result.baseline.cost + 1e-9

    @pytest.mark.slow
    def test_no_recomputation_mode(self):
        instance = tiny_instance()
        config = MbspIlpConfig(
            allow_recomputation=False, solver_options=SolverOptions(time_limit=8.0)
        )
        result = MbspIlpScheduler(config).schedule(instance)
        if result.ilp_schedule is not None:
            assert result.ilp_schedule.recomputation_count() == 0

    def test_zero_time_budget_falls_back_to_baseline(self):
        instance = tiny_instance()
        config = MbspIlpConfig(solver_options=SolverOptions(time_limit=0.01))
        result = MbspIlpScheduler(config).schedule(instance)
        assert result.best_cost == result.baseline.cost

    def test_fast_smoke_never_worse_than_baseline(self):
        """1-second variant of the end-to-end path, kept in the fast suite."""
        instance = tiny_instance()
        config = MbspIlpConfig(solver_options=SolverOptions(time_limit=1.0))
        result = MbspIlpScheduler(config).schedule(instance)
        assert result.best_cost <= result.baseline.cost + 1e-9
        validate_schedule(result.best_schedule, require_all_computed=False)
        assert synchronous_cost(result.best_schedule) == pytest.approx(result.best_cost)

    @pytest.mark.slow
    def test_explicit_baseline_reused(self):
        instance = tiny_instance()
        base = baseline_schedule(instance)
        result = MbspIlpScheduler(FAST).schedule(instance, baseline=base)
        assert result.baseline is base


class TestScheduleMbspEntryPoint:
    def test_baseline_method(self, small_instance):
        schedule = schedule_mbsp(small_instance, method="baseline")
        validate_schedule(schedule)

    def test_practical_method(self, small_instance):
        schedule = schedule_mbsp(small_instance, method="practical")
        validate_schedule(schedule)

    @pytest.mark.slow
    def test_ilp_method(self):
        instance = tiny_instance()
        schedule = schedule_mbsp(instance, method="ilp", config=FAST)
        validate_schedule(schedule, require_all_computed=False)

    def test_unknown_method(self, small_instance):
        with pytest.raises(ConfigurationError):
            schedule_mbsp(small_instance, method="quantum")
