"""Tests for the schedule -> ILP-variable encoder (repro.core.encoding)."""

import pytest

from repro.core.encoding import encode_schedule_solution, required_encoding_steps
from repro.core.full_ilp import MbspIlpBuilder, MbspIlpConfig
from repro.core.scheduler import MbspIlpScheduler
from repro.core.two_stage import baseline_schedule
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, fork_join_dag, spmv
from repro.ilp import SolverOptions
from repro.model.cost import synchronous_cost
from repro.model.instance import make_instance
from repro.refine import RefineConfig, Refiner


def _instances():
    out = []
    for name, dag, P in [
        ("spmv", spmv(3, seed=1), 2),
        ("chain", chain_dag(5), 1),
        ("forkjoin", fork_join_dag(width=3, stages=2), 2),
    ]:
        assign_random_memory_weights(dag, seed=11)
        out.append(make_instance(dag, num_processors=P, cache_factor=3.0,
                                 g=1.0, L=10.0))
    return out


def _schedules(instance):
    base = baseline_schedule(instance, synchronous=True, seed=0)
    refined = Refiner(RefineConfig(budget=300)).refine(
        base.mbsp_schedule, synchronous=True
    )
    return [
        (base.mbsp_schedule, base.cost),
        (refined.schedule, refined.final_cost),
    ]


class TestEncoding:
    def test_encodings_are_feasible_with_bounded_objective(self):
        """Every encoded assignment satisfies the compiled model, and its
        objective never exceeds the schedule's synchronous cost (merged
        phases may make it cheaper — it is still the same schedule)."""
        for instance in _instances():
            builder = MbspIlpBuilder(instance, config=MbspIlpConfig(synchronous=True))
            for schedule, cost in _schedules(instance):
                needed = required_encoding_steps(builder, schedule)
                assert needed is not None and needed >= 1
                model, variables = builder.build(needed)
                encoding = encode_schedule_solution(builder, model, variables, schedule)
                assert encoding is not None
                assert encoding.steps_used == needed
                assert encoding.objective <= cost + 1e-6
                assert model.compile().is_feasible(encoding.values)

    def test_extra_steps_stay_feasible(self):
        """Padding with empty steps (states persisting) keeps feasibility."""
        instance = _instances()[1]  # the chain
        builder = MbspIlpBuilder(instance, config=MbspIlpConfig(synchronous=True))
        schedule, _ = _schedules(instance)[0]
        needed = required_encoding_steps(builder, schedule)
        model, variables = builder.build(needed + 2)
        encoding = encode_schedule_solution(builder, model, variables, schedule)
        assert encoding is not None

    def test_too_few_steps_is_rejected_not_mis_encoded(self):
        instance = _instances()[0]
        builder = MbspIlpBuilder(instance, config=MbspIlpConfig(synchronous=True))
        schedule, _ = _schedules(instance)[0]
        needed = required_encoding_steps(builder, schedule)
        model, variables = builder.build(max(1, needed - 1))
        assert encode_schedule_solution(builder, model, variables, schedule) is None

    def test_unsupported_models_are_rejected(self):
        instance = _instances()[1]
        schedule, _ = _schedules(instance)[0]
        for config in (
            MbspIlpConfig(synchronous=False),
            MbspIlpConfig(synchronous=True, use_step_merging=False),
        ):
            builder = MbspIlpBuilder(instance, config=config)
            model, variables = builder.build(6)
            assert encode_schedule_solution(builder, model, variables, schedule) is None

    def test_objective_equals_cost_on_a_chain(self):
        """On a single-processor chain with one comm phase per superstep the
        encoded objective reproduces the synchronous cost exactly."""
        instance = _instances()[1]
        builder = MbspIlpBuilder(instance, config=MbspIlpConfig(synchronous=True))
        schedule, cost = _schedules(instance)[0]
        assert cost == pytest.approx(synchronous_cost(schedule))
        needed = required_encoding_steps(builder, schedule)
        model, variables = builder.build(needed)
        encoding = encode_schedule_solution(builder, model, variables, schedule)
        assert encoding.objective == pytest.approx(cost)


class TestSchedulerWarmStartModes:
    def test_solution_mode_with_zero_nodes_keeps_the_incumbent(self):
        """The crucial difference to the objective-only warm start: with no
        search budget at all, the bnb backend still returns a solution — the
        installed incumbent — so the scheduler reports FEASIBLE, not
        NO_SOLUTION."""
        instance = _instances()[0]
        base = baseline_schedule(instance, synchronous=True, seed=0)
        config = MbspIlpConfig(
            synchronous=True,
            warm_start="solution",
            solver_options=SolverOptions(time_limit=30.0, node_limit=0),
            backend="bnb",
        )
        result = MbspIlpScheduler(config).schedule(instance, baseline=base)
        assert result.warm_start == "solution"
        assert result.solver_status == "feasible"
        assert "warm-start solution kept" in result.solver_message
        assert result.best_cost <= base.cost

        objective_only = MbspIlpScheduler(
            MbspIlpConfig(
                synchronous=True,
                warm_start="objective",
                solver_options=SolverOptions(time_limit=30.0, node_limit=0),
                backend="bnb",
            )
        ).schedule(instance, baseline=base)
        assert objective_only.warm_start == "objective"
        assert objective_only.solver_status == "no_solution"
        assert objective_only.best_cost == base.cost

    def test_invalid_warm_start_mode_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="warm_start"):
            MbspIlpConfig(warm_start="telepathy")
