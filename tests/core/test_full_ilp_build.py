"""Tests for the construction of the MBSP ILP model (no solving here)."""

import pytest

from repro.core.full_ilp import BoundaryConditions, MbspIlpBuilder, MbspIlpConfig
from repro.dag.generators import chain_dag, spmv
from repro.exceptions import ConfigurationError
from repro.ilp import SolverOptions
from repro.model.instance import make_instance


@pytest.fixture
def chain_instance():
    dag = chain_dag(4)
    return make_instance(dag, num_processors=2, cache_factor=3.0, g=1, L=5)


class TestModelShape:
    def test_variable_classes_created(self, chain_instance):
        builder = MbspIlpBuilder(chain_instance)
        model, variables = builder.build(num_steps=6)
        n = chain_instance.dag.num_nodes
        computable = n - 1
        P = 2
        assert len(variables.compute) == computable * P * 6
        assert len(variables.save) == n * P * 6
        assert len(variables.load) == n * P * 6
        assert len(variables.hasred) == n * P * 6
        # sources are permanently blue, so only non-sources get blue variables
        assert len(variables.hasblue) == (n - 1) * 6
        assert model.num_variables > 0
        assert model.num_constraints > 0

    def test_step_count_scales_model(self, chain_instance):
        builder = MbspIlpBuilder(chain_instance)
        small, _ = builder.build(num_steps=4)
        large, _ = builder.build(num_steps=8)
        assert large.num_variables > small.num_variables

    def test_synchronous_has_phase_variables(self, chain_instance):
        builder = MbspIlpBuilder(chain_instance, MbspIlpConfig(synchronous=True))
        _, variables = builder.build(num_steps=5)
        assert len(variables.compphase) == 5
        assert len(variables.commends) == 5
        assert variables.makespan is None

    def test_asynchronous_has_makespan(self, chain_instance):
        builder = MbspIlpBuilder(chain_instance, MbspIlpConfig(synchronous=False))
        _, variables = builder.build(num_steps=5)
        assert variables.makespan is not None
        assert variables.compphase == []

    def test_no_recompute_adds_constraints(self, chain_instance):
        base = MbspIlpBuilder(chain_instance, MbspIlpConfig(allow_recomputation=True))
        restricted = MbspIlpBuilder(chain_instance, MbspIlpConfig(allow_recomputation=False))
        m1, _ = base.build(5)
        m2, _ = restricted.build(5)
        assert m2.num_constraints > m1.num_constraints

    def test_cutoff_adds_constraint(self, chain_instance):
        without = MbspIlpBuilder(chain_instance, MbspIlpConfig()).build(4)[0]
        with_cutoff = MbspIlpBuilder(chain_instance, MbspIlpConfig(cutoff=100.0)).build(4)[0]
        assert with_cutoff.num_constraints == without.num_constraints + 1

    def test_invalid_step_count(self, chain_instance):
        builder = MbspIlpBuilder(chain_instance)
        with pytest.raises(ConfigurationError):
            builder.build(0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MbspIlpConfig(max_steps=0)
        with pytest.raises(ConfigurationError):
            MbspIlpConfig(extra_steps=-1)


class TestBoundaryConditions:
    def test_initial_blue_removes_hasblue_variables(self, chain_instance):
        builder = MbspIlpBuilder(
            chain_instance,
            boundary=BoundaryConditions(initial_blue={1}),
        )
        _, variables = builder.build(5)
        assert all(key[0] != 1 for key in variables.hasblue)

    def test_required_blue_accepted(self, chain_instance):
        builder = MbspIlpBuilder(
            chain_instance,
            boundary=BoundaryConditions(required_blue={2}),
        )
        model, _ = builder.build(5)
        assert model.num_constraints > 0

    def test_initial_red_is_constant_state(self, chain_instance):
        boundary = BoundaryConditions(initial_red={0: {0}})
        builder = MbspIlpBuilder(chain_instance, boundary=boundary)
        assert builder.initial_red(0) == {0}
        assert builder.initial_red(1) == set()

    def test_helper_sets(self, chain_instance):
        builder = MbspIlpBuilder(chain_instance)
        assert builder.initial_blue() == {0}
        assert builder.required_blue() == {3}
        assert set(builder.computable_nodes()) == {1, 2, 3}
