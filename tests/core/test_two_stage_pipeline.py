"""Tests of the two-stage pipeline wrappers."""

import pytest

from repro.core.two_stage import (
    baseline_schedule,
    practical_baseline_schedule,
    run_two_stage,
)
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exceptions import ConfigurationError
from repro.model.cost import asynchronous_cost, synchronous_cost
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule


class TestRunTwoStage:
    @pytest.mark.parametrize("scheduler", ["bspg", "cilk"])
    @pytest.mark.parametrize("policy", ["clairvoyant", "lru", "fifo"])
    def test_all_combinations_valid(self, small_instance, scheduler, policy):
        result = run_two_stage(small_instance, scheduler=scheduler, policy=policy)
        validate_schedule(result.mbsp_schedule)
        assert result.cost == pytest.approx(synchronous_cost(result.mbsp_schedule))
        assert result.scheduler_name == scheduler
        assert result.policy_name == policy

    def test_asynchronous_cost_reported(self, small_instance):
        result = run_two_stage(small_instance, synchronous=False)
        assert result.cost == pytest.approx(asynchronous_cost(result.mbsp_schedule))

    def test_dfs_requires_single_processor(self, small_instance):
        with pytest.raises(ConfigurationError):
            run_two_stage(small_instance, scheduler="dfs")

    def test_dfs_on_single_processor(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=1, cache_factor=3.0)
        result = run_two_stage(instance, scheduler="dfs")
        validate_schedule(result.mbsp_schedule)

    def test_unknown_scheduler(self, small_instance):
        with pytest.raises(ConfigurationError):
            run_two_stage(small_instance, scheduler="magic")


class TestNamedBaselines:
    def test_main_baseline(self, small_instance):
        result = baseline_schedule(small_instance)
        assert result.scheduler_name == "bspg"
        assert result.policy_name == "clairvoyant"
        validate_schedule(result.mbsp_schedule)

    def test_main_baseline_switches_to_dfs_for_p1(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=1, cache_factor=3.0)
        result = baseline_schedule(instance)
        assert result.scheduler_name == "dfs"

    def test_practical_baseline(self, small_instance):
        result = practical_baseline_schedule(small_instance)
        assert result.scheduler_name == "cilk"
        assert result.policy_name == "lru"
        validate_schedule(result.mbsp_schedule)

    def test_practical_usually_not_better_than_main(self):
        """Cilk+LRU should rarely beat BSPg+clairvoyant (paper Section 7.2)."""
        wins = 0
        for seed in range(3):
            dag = spmv(5, seed=seed)
            assign_random_memory_weights(dag, seed=seed)
            instance = make_instance(dag, num_processors=2, cache_factor=3.0, g=1, L=10)
            main = baseline_schedule(instance).cost
            weak = practical_baseline_schedule(instance).cost
            if weak < main - 1e-9:
                wins += 1
        assert wins <= 1
