"""Tests for acyclic partitioning, quotient planning and divide-and-conquer."""

import pytest

from repro.core.acyclic_partition import (
    PartitionConfig,
    ilp_acyclic_bipartition,
    recursive_acyclic_partition,
    topological_sweep_bipartition,
)
from repro.core.divide_conquer import DivideAndConquerScheduler
from repro.core.full_ilp import MbspIlpConfig
from repro.core.quotient import build_quotient_dag, plan_subproblems
from repro.dag.analysis import assign_random_memory_weights, edge_cut
from repro.dag.generators import chain_dag, iterated_spmv, random_layered_dag, simple_pagerank
from repro.exceptions import ConfigurationError
from repro.ilp import SolverOptions
from repro.model.cost import synchronous_cost
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule


def _is_acyclic_bipartition(dag, parts):
    return all(parts[u] <= parts[v] for u, v in dag.edges())


class TestBipartitioning:
    def test_topological_sweep_is_acyclic_and_balanced(self, medium_dag):
        parts = topological_sweep_bipartition(medium_dag, balance_fraction=1 / 3)
        assert _is_acyclic_bipartition(medium_dag, parts)
        sizes = [sum(1 for p in parts.values() if p == i) for i in (0, 1)]
        assert min(sizes) >= medium_dag.num_nodes // 3

    def test_ilp_bipartition_acyclic_and_not_worse_than_sweep(self, medium_dag):
        config = PartitionConfig(solver_options=SolverOptions(time_limit=5))
        parts = ilp_acyclic_bipartition(medium_dag, config)
        assert _is_acyclic_bipartition(medium_dag, parts)
        sweep = topological_sweep_bipartition(medium_dag, 1 / 3)
        assert edge_cut(medium_dag, parts) <= edge_cut(medium_dag, sweep)

    def test_ilp_disabled_falls_back(self, medium_dag):
        config = PartitionConfig(use_ilp=False)
        parts = ilp_acyclic_bipartition(medium_dag, config)
        assert _is_acyclic_bipartition(medium_dag, parts)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PartitionConfig(balance_fraction=0.8)
        with pytest.raises(ConfigurationError):
            PartitionConfig(max_part_size=1)


class TestRecursivePartition:
    def test_parts_respect_size_limit(self):
        dag = random_layered_dag(6, 5, seed=2)
        partition = recursive_acyclic_partition(dag, PartitionConfig(max_part_size=8))
        assert max(partition.part_sizes()) <= 8
        assert sum(partition.part_sizes()) == dag.num_nodes

    def test_part_order_is_topological(self):
        dag = random_layered_dag(6, 5, seed=4)
        partition = recursive_acyclic_partition(dag, PartitionConfig(max_part_size=8))
        for u, v in dag.edges():
            assert partition.parts[u] <= partition.parts[v]

    def test_small_dag_single_part(self, diamond_dag):
        partition = recursive_acyclic_partition(diamond_dag, PartitionConfig(max_part_size=10))
        assert partition.num_parts == 1


class TestQuotient:
    def test_quotient_weights_are_summed(self):
        dag = chain_dag(6, omega=2.0, mu=1.0)
        partition = recursive_acyclic_partition(dag, PartitionConfig(max_part_size=3, use_ilp=False))
        quotient = build_quotient_dag(dag, partition)
        assert quotient.num_nodes == partition.num_parts
        assert sum(quotient.omega(p) for p in quotient.nodes) == pytest.approx(12.0)
        assert quotient.is_acyclic()

    def test_plan_covers_all_parts_and_processors(self):
        dag = random_layered_dag(6, 6, seed=9)
        partition = recursive_acyclic_partition(dag, PartitionConfig(max_part_size=10, use_ilp=False))
        quotient = build_quotient_dag(dag, partition)
        plans = plan_subproblems(quotient, num_processors=4)
        assert {plan.part for plan in plans} == set(range(partition.num_parts))
        for plan in plans:
            assert plan.processors
            assert all(0 <= p < 4 for p in plan.processors)

    def test_lone_part_gets_all_processors(self, diamond_dag):
        partition = recursive_acyclic_partition(diamond_dag, PartitionConfig(max_part_size=10))
        quotient = build_quotient_dag(diamond_dag, partition)
        plans = plan_subproblems(quotient, num_processors=4)
        assert plans[0].processors == [0, 1, 2, 3]


class TestDivideAndConquer:
    @pytest.mark.slow
    def test_end_to_end_valid_schedule(self):
        dag = simple_pagerank(num_blocks=3, iterations=3, seed=1)
        assign_random_memory_weights(dag, seed=1)
        instance = make_instance(dag, num_processors=2, cache_factor=5.0, g=1, L=10)
        scheduler = DivideAndConquerScheduler(
            ilp_config=MbspIlpConfig(solver_options=SolverOptions(time_limit=3.0)),
            partition_config=PartitionConfig(max_part_size=15),
        )
        result = scheduler.schedule(instance)
        validate_schedule(result.dac_schedule, require_all_computed=False)
        assert result.dac_cost == pytest.approx(synchronous_cost(result.dac_schedule))
        assert result.partition.num_parts >= 2
        assert result.best_cost <= result.baseline.cost + 1e-9
        assert len(result.subproblems) == result.partition.num_parts

    @pytest.mark.slow
    def test_subproblem_outputs_reach_slow_memory(self):
        dag = iterated_spmv(4, 2, seed=2)
        assign_random_memory_weights(dag, seed=2)
        instance = make_instance(dag, num_processors=2, cache_factor=5.0, g=1, L=10)
        scheduler = DivideAndConquerScheduler(
            ilp_config=MbspIlpConfig(solver_options=SolverOptions(time_limit=2.0)),
            partition_config=PartitionConfig(max_part_size=12),
        )
        result = scheduler.schedule(instance)
        # validity of the concatenated schedule already implies every
        # cross-part value was saved before it was loaded
        validate_schedule(result.dac_schedule, require_all_computed=False)
