"""Unit tests for the unified execution core (repro.exec).

Fast two-stage jobs exercise the plan/session machinery end to end: plan
validation, event streaming, cache/resume services, dependency edges, and
equivalence with the legacy engine path.
"""

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exceptions import ConfigurationError
from repro.exec import (
    PlanNode,
    ResultEvent,
    RunPlan,
    Session,
    as_plan,
    branch_slots,
    plan_pipelines,
    slot_scope,
)
from repro.experiments.parallel import ExperimentEngine, ExperimentJob
from repro.experiments.reporting import read_jsonl
from repro.experiments.runner import ExperimentConfig


def _dags(count=3):
    dags = []
    for seed in range(1, count + 1):
        dag = spmv(3, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"spmv_{seed}"
        dags.append(dag)
    return dags


CFG = ExperimentConfig(name="exec-test", num_processors=2, ilp_time_limit=1.0)


def _fast_jobs(dags=None, member="bspg+clairvoyant"):
    return [
        ExperimentJob.make("portfolio", dag, CFG, member=member)
        for dag in (dags or _dags())
    ]


class TestRunPlan:
    def test_from_jobs_preserves_order(self):
        jobs = _fast_jobs()
        plan = RunPlan.from_jobs(jobs)
        assert len(plan) == len(jobs)
        assert [node.job for node in plan] == jobs

    def test_duplicate_id_rejected(self):
        job = _fast_jobs()[0]
        plan = RunPlan()
        plan.add(job, id="a")
        with pytest.raises(ConfigurationError, match="duplicate"):
            plan.add(job, id="a")

    def test_unknown_dependency_rejected(self):
        job = _fast_jobs()[0]
        plan = RunPlan()
        with pytest.raises(ConfigurationError, match="unknown node"):
            plan.add(job, id="a", after=("ghost",))

    def test_forward_only_edges_make_plans_acyclic(self):
        jobs = _fast_jobs()
        plan = RunPlan()
        first = plan.add(jobs[0])
        second = plan.add(jobs[1], after=(first,))
        plan.add(jobs[2], after=(first, second))
        assert [node.after for node in plan] == [(), (first,), (first, second)]

    def test_as_plan_coerces_jobs_and_plans(self):
        jobs = _fast_jobs()
        assert len(as_plan(jobs)) == 3
        assert len(as_plan(jobs[0])) == 1
        plan = RunPlan.from_jobs(jobs)
        assert as_plan(plan) is plan

    def test_plan_pipelines_is_instance_major(self):
        dags = _dags(2)
        plan = plan_pipelines(["bspg+clairvoyant", "cilk+lru"], dags, CFG)
        names = [node.job.instance_name for node in plan]
        assert names == ["spmv_1", "spmv_1", "spmv_2", "spmv_2"]


class TestSession:
    def test_run_matches_engine_bit_for_bit(self):
        jobs = _fast_jobs()
        engine_results = ExperimentEngine(workers=1).run(jobs)
        session_results = Session(workers=1).run(RunPlan.from_jobs(jobs))
        assert [r.fingerprint() for r in session_results] == [
            r.fingerprint() for r in engine_results
        ]

    def test_parallel_identical_to_serial(self):
        jobs = _fast_jobs()
        serial = Session(workers=1).run(jobs)
        parallel = Session(workers=4).run(jobs)
        assert [r.fingerprint() for r in parallel] == [
            r.fingerprint() for r in serial
        ]

    def test_stream_yields_one_event_per_node(self):
        jobs = _fast_jobs()
        events = list(Session(workers=1).stream(RunPlan.from_jobs(jobs)))
        assert sorted(event.index for event in events) == [0, 1, 2]
        assert all(isinstance(event, ResultEvent) for event in events)
        assert all(event.source == "executed" for event in events)
        assert [events[i].instance for i in range(3)] == [
            "spmv_1", "spmv_2", "spmv_3"
        ]

    def test_dependency_edges_are_honoured(self):
        jobs = _fast_jobs()
        plan = RunPlan()
        first = plan.add(jobs[0])
        plan.add(jobs[1], after=(first,))
        plan.add(jobs[2], after=(first,))
        completion = [
            event.node_id for event in Session(workers=4).stream(plan)
        ]
        assert completion[0] == first  # dependents cannot finish before it

    def test_stats_accumulate_across_runs(self):
        session = Session(workers=1)
        session.run(_fast_jobs())
        session.run(_fast_jobs())
        assert session.stats.total == 6
        assert session.stats.executed == 6
        assert "6 jobs" in session.stats.describe()

    def test_cache_hits_skip_execution_and_are_flagged(self, tmp_path):
        jobs = _fast_jobs()
        Session(workers=1, cache_dir=tmp_path / "cache").run(jobs)
        warm = Session(workers=1, cache_dir=tmp_path / "cache")
        events = list(warm.stream(RunPlan.from_jobs(jobs)))
        assert warm.stats.cache_hits == len(jobs)
        assert warm.stats.executed == 0
        assert all(event.source == "cache" for event in events)

    def test_resume_from_results_log(self, tmp_path):
        path = tmp_path / "results.jsonl"
        jobs = _fast_jobs()
        Session(workers=1, results_path=path).run(jobs)
        resumed = Session(workers=1, results_path=path, resume=True)
        events = list(resumed.stream(RunPlan.from_jobs(jobs)))
        assert resumed.stats.resumed == len(jobs)
        assert all(event.source == "resumed" for event in events)
        assert len(read_jsonl(path)) == len(jobs)

    def test_jsonl_is_plan_ordered_even_with_workers(self, tmp_path):
        from repro.experiments.reporting import iter_jsonl_records

        jobs = _fast_jobs()
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        Session(workers=1, results_path=serial_path).run(jobs)
        Session(workers=4, results_path=parallel_path).run(jobs)
        serial = [
            (r["key"], r["instance"]) for r in iter_jsonl_records(serial_path)
        ]
        parallel = [
            (r["key"], r["instance"]) for r in iter_jsonl_records(parallel_path)
        ]
        assert serial == parallel

    def test_resume_without_results_path_warns(self):
        with pytest.warns(UserWarning, match="resume"):
            Session(workers=1, resume=True)

    def test_abandoned_threaded_stream_cancels_remaining_jobs(self):
        """Breaking out of session.stream under a running loop must stop
        the plan (the drain task is cancelled between jobs) instead of
        silently executing every remaining node."""
        import asyncio

        config = CFG.variant(ilp_time_limit=1.0)
        jobs = [
            ExperimentJob.make("portfolio", dag, config, member="ilp")
            for dag in _dags(4)  # ~1s each: slow enough to observe the cancel
        ]

        async def abandon():
            session = Session(workers=1)
            for _ in session.stream(RunPlan.from_jobs(jobs)):
                break
            await asyncio.sleep(1.5)  # give an (incorrect) runaway time to show
            return session.stats.executed

        assert asyncio.run(abandon()) <= 2

    def test_sync_facades_work_inside_a_running_event_loop(self):
        """Jupyter/async callers: engine.run / session.run / stream must not
        crash on 'asyncio.run() cannot be called from a running event loop'
        (the legacy engine was plain sync code and worked everywhere)."""
        import asyncio

        jobs = _fast_jobs(_dags(1))
        reference = Session(workers=1).run(jobs)[0].fingerprint()

        async def under_loop():
            ran = ExperimentEngine(workers=1).run(jobs)[0]
            streamed = list(Session(workers=1).stream(as_plan(jobs)))[0]
            native = (await Session(workers=1).arun(jobs))[0]
            return [r.fingerprint() for r in (ran, streamed.result, native)]

        assert asyncio.run(under_loop()) == [reference] * 3

    def test_run_pipeline_returns_stage_telemetry(self):
        dag = _dags(1)[0]
        session = Session(workers=2)
        result = session.run_pipeline("bspg+clairvoyant|refine", dag, CFG)
        assert result.applicable
        assert [stage.stage for stage in result.stages] == [
            "bspg+clairvoyant", "refine"
        ]


class TestSlotScope:
    def test_default_is_one_slot(self):
        assert branch_slots() == 1

    def test_scope_grants_and_restores(self):
        with slot_scope(4):
            assert branch_slots() == 4
            with slot_scope(2):
                assert branch_slots() == 2
            assert branch_slots() == 4
        assert branch_slots() == 1

    def test_non_positive_clamps_to_one(self):
        with slot_scope(0):
            assert branch_slots() == 1


def test_plan_node_is_frozen():
    job = _fast_jobs()[0]
    node = PlanNode(id="x", job=job)
    with pytest.raises(AttributeError):
        node.id = "y"
