"""Regression tests for the exec-core failure paths.

Three long-lived-service bugs (found by the ``repro.serve`` loop, fixed in
the same PR):

* a batch failure used to drop the already-completed results of later plan
  nodes (persistence is plan-order gated) — now they are flushed to the
  cache (and to the JSONL log while contiguous), so a resumed run
  re-executes only the failed job;
* a ``TimeoutError`` raised *inside* a job used to be rewrapped as the
  session ``job_timeout`` (on Python >= 3.11 ``asyncio.TimeoutError is
  TimeoutError``) — the wait_for timeout is now caught at its call site;
* ``ResultLog.append`` used to reopen the results file per record — it now
  keeps one lazily-opened, flushed append handle with ``close()`` /
  context-manager support.

The pool tests substitute a thread pool for the process pool (the
``Session._make_executor`` seam), so a monkeypatched ``execute_job`` is
visible to the "workers" and failures are deterministic.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exec import ResultLog, RunPlan, Session
from repro.experiments.parallel import ExperimentJob
from repro.experiments.reporting import iter_jsonl_records
from repro.experiments.runner import ExperimentConfig, InstanceResult

CFG = ExperimentConfig(name="failure-test", num_processors=2, ilp_time_limit=1.0)


def _jobs(count=4):
    jobs = []
    for seed in range(1, count + 1):
        dag = spmv(3, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"spmv_{seed}"
        jobs.append(
            ExperimentJob.make("portfolio", dag, CFG, member="bspg+clairvoyant")
        )
    return jobs


class ThreadedSession(Session):
    """A session whose worker pool is a thread pool, so tests can
    monkeypatch ``execute_job`` (worker processes would re-import the real
    one) and inject deterministic failures."""

    def _make_executor(self, pending_count):
        return ThreadPoolExecutor(max_workers=min(self.workers, pending_count))


def _fake_result(job):
    return InstanceResult(
        instance_name=job.instance_name,
        num_nodes=3,
        baseline_cost=10.0,
        ilp_cost=10.0,
        solver_status="fake",
    )


class TestMidPlanFailure:
    def test_completed_results_survive_and_resume_skips_them(
        self, tmp_path, monkeypatch
    ):
        jobs = _jobs(4)
        fail_key = jobs[1].key()
        calls = []
        lock = threading.Lock()

        def failing_execute(job):
            with lock:
                calls.append(job.instance_name)
            if job.key() == fail_key:
                # fail *after* the other jobs completed, so their results
                # exist (out of plan order) when the failure is raised
                time.sleep(0.5)
                raise RuntimeError("boom")
            return _fake_result(job)

        monkeypatch.setattr(
            "repro.experiments.parallel.execute_job", failing_execute
        )
        session = ThreadedSession(
            workers=4,
            cache_dir=tmp_path / "cache",
            results_path=tmp_path / "results.jsonl",
        )
        with pytest.raises(RuntimeError, match="boom"):
            session.run(RunPlan.from_jobs(jobs))

        # every completed job reached the cache — including those *after*
        # the failed plan position, which used to be dropped
        for job in (jobs[0], jobs[2], jobs[3]):
            assert session.cache.load(job.key()) is not None, job.instance_name
        assert session.cache.load(fail_key) is None
        # the JSONL log stays plan-ordered: it holds the contiguous prefix
        recorded = [
            r["key"] for r in iter_jsonl_records(tmp_path / "results.jsonl")
        ]
        assert recorded == [jobs[0].key()]
        assert sorted(calls) == sorted(j.instance_name for j in jobs)

        # a resumed run re-executes only the failed job
        calls.clear()

        def fixed_execute(job):
            with lock:
                calls.append(job.instance_name)
            return _fake_result(job)

        monkeypatch.setattr(
            "repro.experiments.parallel.execute_job", fixed_execute
        )
        resumed = ThreadedSession(
            workers=4,
            cache_dir=tmp_path / "cache",
            results_path=tmp_path / "results.jsonl",
            resume=True,
        )
        events = {
            e.index: e.source for e in resumed.stream(RunPlan.from_jobs(jobs))
        }
        assert calls == [jobs[1].instance_name]
        assert resumed.stats.executed == 1
        assert resumed.stats.resumed == 1  # job 0, from the log
        assert resumed.stats.cache_hits == 2  # jobs 2 and 3, from the cache
        assert events == {0: "resumed", 1: "executed", 2: "cache", 3: "cache"}

    def test_failure_without_stores_still_raises(self, monkeypatch):
        jobs = _jobs(2)

        def failing_execute(job):
            raise ValueError("no stores configured")

        monkeypatch.setattr(
            "repro.experiments.parallel.execute_job", failing_execute
        )
        with pytest.raises(ValueError, match="no stores"):
            ThreadedSession(workers=2).run(RunPlan.from_jobs(jobs))


class TestJobTimeoutLabeling:
    @pytest.mark.parametrize("job_timeout", [None, 30.0])
    def test_job_raised_timeout_surfaces_untouched(
        self, monkeypatch, job_timeout
    ):
        """A job raising TimeoutError internally must not be relabeled as a
        session job_timeout — with the bound unset *and* set."""
        jobs = _jobs(2)
        marker = jobs[0].key()

        def timing_out_execute(job):
            if job.key() == marker:
                raise TimeoutError("solver stage gave up")
            return _fake_result(job)

        monkeypatch.setattr(
            "repro.experiments.parallel.execute_job", timing_out_execute
        )
        session = ThreadedSession(workers=2, job_timeout=job_timeout)
        with pytest.raises(TimeoutError) as err:
            session.run(RunPlan.from_jobs(jobs))
        assert "solver stage gave up" in str(err.value)
        assert "job_timeout" not in str(err.value)

    def test_genuine_session_timeout_is_labeled(self, monkeypatch):
        jobs = _jobs(2)

        def slow_execute(job):
            time.sleep(0.5)
            return _fake_result(job)

        monkeypatch.setattr(
            "repro.experiments.parallel.execute_job", slow_execute
        )
        session = ThreadedSession(workers=2, job_timeout=0.05)
        with pytest.raises(TimeoutError, match="exceeded the session job_timeout"):
            session.run(RunPlan.from_jobs(jobs))

    def test_completed_result_at_the_limit_is_honoured(self, monkeypatch):
        """The shield keeps wait_for from discarding a job that completed
        exactly when the timeout fired: a generous bound never truncates."""
        jobs = _jobs(2)

        monkeypatch.setattr(
            "repro.experiments.parallel.execute_job", _fake_result
        )
        session = ThreadedSession(workers=2, job_timeout=30.0)
        results = session.run(RunPlan.from_jobs(jobs))
        assert [r.instance_name for r in results] == [
            j.instance_name for j in jobs
        ]


class TestResultLogHandle:
    def test_one_lazily_opened_handle_across_appends(self, tmp_path):
        job = _jobs(1)[0]
        log = ResultLog(tmp_path / "r.jsonl")
        assert log._handle is None  # lazy: no file touched before an append
        log.append("k1", job, _fake_result(job))
        handle = log._handle
        assert handle is not None
        log.append("k2", job, _fake_result(job))
        assert log._handle is handle  # no per-record reopen
        # flushed after every record: a reader sees complete lines now
        keys = [r["key"] for r in iter_jsonl_records(log.results_path)]
        assert keys == ["k1", "k2"]
        # the dedup contract is unchanged
        log.append("k1", job, _fake_result(job))
        assert [r["key"] for r in iter_jsonl_records(log.results_path)] == [
            "k1", "k2"
        ]
        log.close()
        assert log._handle is None

    def test_invalidate_closes_and_next_append_reopens(self, tmp_path):
        job = _jobs(1)[0]
        path = tmp_path / "r.jsonl"
        log = ResultLog(path)
        log.append("k1", job, _fake_result(job))
        log.invalidate()
        assert log._handle is None
        # the file was rewritten underneath (the shard-merge scenario);
        # the next append must open the *new* file, not the old inode
        path.unlink()
        log.append("k2", job, _fake_result(job))
        assert [r["key"] for r in iter_jsonl_records(path)] == ["k2"]

    def test_context_manager_releases_the_handle(self, tmp_path):
        job = _jobs(1)[0]
        with ResultLog(tmp_path / "r.jsonl") as log:
            log.append("k1", job, _fake_result(job))
            assert log._handle is not None
        assert log._handle is None

    def test_disabled_log_appends_are_noops(self, tmp_path):
        job = _jobs(1)[0]
        log = ResultLog(None)
        log.append("k1", job, _fake_result(job))
        assert log._handle is None
        log.close()  # must not raise
