"""Multi-process safety of the result stores (the sharding prerequisite).

N processes concurrently ``store()`` the same and distinct keys while also
``load()``-ing them: every read must be a complete old or new entry (never
torn), no ``.tmp`` litter may remain, and filesystem-level failures must
degrade to cache misses / warn-and-skip instead of crashing the run.  Plus
the :class:`ResultLog` contract sharding relies on: per-shard files merge
byte-identically into the single-process stream.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.exec import ResultCache, ResultLog, RunPlan, merge_shard_logs
from repro.exec.shard import shard_results_path
from repro.experiments.runner import InstanceResult


def _result(tag: int) -> InstanceResult:
    # fully deterministic content (fixed solve_time) so byte comparisons
    # are meaningful without a cache
    return InstanceResult(
        instance_name=f"inst_{tag}",
        num_nodes=tag + 1,
        baseline_cost=10.0 + tag,
        ilp_cost=5.0 + tag,
        solver_status="optimal",
        solve_time=0.25,
        extra_costs={"member_cost": 5.0 + tag},
    )


def _hammer(payload):
    """One writer+reader process of the stress test (module-level: must be
    picklable into the worker processes)."""
    cache_dir, worker_id, rounds = payload
    cache = ResultCache(cache_dir)
    torn = 0
    for r in range(rounds):
        cache.store("contended.key", _result(worker_id))
        cache.store(f"distinct.{worker_id}.{r}", _result(r))
        loaded = cache.load("contended.key")
        # a miss (None) is acceptable mid-replace on some filesystems; a
        # torn/partial read is not — from_dict would have raised and load
        # would have returned None, so any non-None result is complete
        if loaded is not None and not loaded.instance_name.startswith("inst_"):
            torn += 1
    return torn


class TestResultCacheMultiProcess:
    def test_concurrent_writers_and_readers_no_torn_reads_no_litter(self, tmp_path):
        cache_dir = tmp_path / "cache"
        workers, rounds = 4, 25
        with ProcessPoolExecutor(max_workers=workers) as pool:
            torn = list(pool.map(
                _hammer, [(str(cache_dir), w, rounds) for w in range(workers)]
            ))
        assert sum(torn) == 0
        # no stray temp files survive the concurrent stores
        assert [p for p in cache_dir.iterdir() if p.suffix == ".tmp"] == []
        # the contended key holds one complete entry from some writer
        final = ResultCache(cache_dir).load("contended.key")
        assert final is not None and final.solver_status == "optimal"
        # every distinct key is present and loads cleanly
        cache = ResultCache(cache_dir)
        for w in range(workers):
            for r in range(rounds):
                loaded = cache.load(f"distinct.{w}.{r}")
                assert loaded is not None and loaded.instance_name == f"inst_{r}"

    def test_key_with_dot_maps_to_exact_json_name(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("a.b", _result(1))
        # name concatenation: "<key>.json", never with_suffix clobbering
        assert (tmp_path / "a.b.json").is_file()
        assert cache.path("a.b").name == "a.b.json"
        assert cache.load("a.b").instance_name == "inst_1"
        # and "a.b" cannot shadow a different key "a"
        assert cache.load("a") is None

    def test_unreadable_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        # the entry path occupied by a directory: load misses, store warns
        (tmp_path / "blocked.json").mkdir()
        assert cache.load("blocked") is None
        with pytest.warns(UserWarning, match="cache store failed"):
            cache.store("blocked", _result(1))
        # the run continues: other keys still store fine
        cache.store("fine", _result(2))
        assert cache.load("fine").instance_name == "inst_2"

    def test_store_into_unwritable_dir_warns_instead_of_crashing(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("permission bits do not bind as root")
        cache_dir = tmp_path / "ro"
        cache_dir.mkdir()
        cache_dir.chmod(0o500)
        try:
            cache = ResultCache(cache_dir)
            with pytest.warns(UserWarning, match="cache store failed"):
                cache.store("key", _result(1))
        finally:
            cache_dir.chmod(0o700)

    def test_corrupt_entry_still_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path("bad").write_text("{not json")
        assert cache.load("bad") is None


class _FakeJob:
    """Duck-typed plan job: enough surface for ResultLog + shard merging."""

    def __init__(self, key: str, instance: str):
        self._key = key
        self.kind = "fake"
        self.instance_name = instance

    def key(self) -> str:
        return self._key


def _log_plan(count: int) -> RunPlan:
    plan = RunPlan()
    for i in range(count):
        plan.add(_FakeJob(f"key-{i:03d}", f"inst_{i}"), id=f"n{i}")
    return plan


class TestResultLogShardMerge:
    def test_per_shard_files_merge_byte_identically(self, tmp_path):
        plan = _log_plan(7)
        results = [_result(i) for i in range(7)]

        # the single-process stream: one appender, plan order
        single = tmp_path / "single.jsonl"
        log = ResultLog(single)
        for node, result in zip(plan.nodes, results):
            log.append(node.job.key(), node.job, result)

        # per-shard streams (chain-free assignment: index % shards)
        shards = 3
        base = tmp_path / "merged.jsonl"
        shard_logs = [
            ResultLog(shard_results_path(base, shards, s)) for s in range(shards)
        ]
        for i, (node, result) in enumerate(zip(plan.nodes, results)):
            shard_logs[i % shards].append(node.job.key(), node.job, result)

        merged = merge_shard_logs(plan, base, shards)
        assert merged == base
        assert base.read_bytes() == single.read_bytes()

    def test_merge_skips_duplicate_keys_like_the_single_appender(self, tmp_path):
        plan = RunPlan()
        job = _FakeJob("dup-key", "inst_0")
        plan.add(job, id="a")
        plan.add(job, id="b")  # same key twice in the plan

        single = tmp_path / "single.jsonl"
        log = ResultLog(single)
        for node in plan.nodes:
            log.append(node.job.key(), node.job, _result(0))
        assert len(single.read_text().splitlines()) == 1

        base = tmp_path / "merged.jsonl"
        for s in range(2):
            shard_log = ResultLog(shard_results_path(base, 2, s))
            shard_log.append(job.key(), job, _result(0))
        merge_shard_logs(plan, base, 2)
        assert base.read_bytes() == single.read_bytes()

    def test_missing_shard_record_raises_a_clear_error(self, tmp_path):
        from repro.exceptions import ConfigurationError

        plan = _log_plan(4)
        base = tmp_path / "merged.jsonl"
        # only shard 0 ran
        log = ResultLog(shard_results_path(base, 2, 0))
        for i in (0, 2):
            node = plan.nodes[i]
            log.append(node.job.key(), node.job, _result(i))
        with pytest.raises(ConfigurationError, match="re-run shard 1 of 2"):
            merge_shard_logs(plan, base, 2)

    def test_malformed_shard_lines_are_skipped(self, tmp_path):
        plan = _log_plan(2)
        base = tmp_path / "merged.jsonl"
        shard_file = shard_results_path(base, 1, 0)
        log = ResultLog(shard_file)
        for i, node in enumerate(plan.nodes):
            log.append(node.job.key(), node.job, _result(i))
        with open(shard_file, "a") as handle:
            handle.write("{truncated-after-a-crash\n")
        merge_shard_logs(plan, base, 1)
        records = base.read_text().splitlines()
        assert len(records) == 2
        assert all(json.loads(line)["kind"] == "fake" for line in records)

    def test_invalidate_reparses_the_rewritten_file(self, tmp_path):
        path = tmp_path / "results.jsonl"
        log = ResultLog(path)
        job = _FakeJob("k1", "inst_1")
        log.append(job.key(), job, _result(1))
        assert set(log.recorded()) == {"k1"}
        # the file changes underneath (as after a shard merge)
        other = _FakeJob("k2", "inst_2")
        ResultLog(path).append(other.key(), other, _result(2))
        assert set(log.recorded()) == {"k1"}  # stale by contract
        log.invalidate()
        assert set(log.recorded()) == {"k1", "k2"}
