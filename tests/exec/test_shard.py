"""Unit tests for coordinator/worker sharded execution (repro.exec.shard).

Deterministic partitioning by job index (dependency chains stay within a
shard), per-shard result paths, the byte-stable plan-order merge, and the
fork-join coordinator — against the same fast two-stage jobs the session
tests use.
"""

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exceptions import ConfigurationError
from repro.exec import (
    RunPlan,
    Session,
    merge_shard_logs,
    plan_pipelines,
    run_sharded,
    shard_assignment,
    shard_plan,
    shard_results_path,
)
from repro.experiments.parallel import ExperimentJob
from repro.experiments.runner import ExperimentConfig

CFG = ExperimentConfig(name="shard-test", num_processors=2, ilp_time_limit=1.0)


def _dags(count=3):
    dags = []
    for seed in range(1, count + 1):
        dag = spmv(3, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"spmv_{seed}"
        dags.append(dag)
    return dags


def _fast_jobs(dags=None, member="bspg+clairvoyant"):
    return [
        ExperimentJob.make("portfolio", dag, CFG, member=member)
        for dag in (dags or _dags())
    ]


class TestShardAssignment:
    def test_edge_free_plan_shards_round_robin_by_index(self):
        plan = RunPlan.from_jobs(_fast_jobs(_dags(5)))
        assert shard_assignment(plan, 2) == [0, 1, 0, 1, 0]
        assert shard_assignment(plan, 3) == [0, 1, 2, 0, 1]
        assert shard_assignment(plan, 1) == [0] * 5

    def test_more_shards_than_nodes_leaves_trailing_shards_empty(self):
        plan = RunPlan.from_jobs(_fast_jobs(_dags(2)))
        assert shard_assignment(plan, 4) == [0, 1]

    def test_dependency_chains_stay_within_one_shard(self):
        jobs = _fast_jobs(_dags(6))
        plan = RunPlan()
        a = plan.add(jobs[0])
        plan.add(jobs[1], after=(a,))
        b = plan.add(jobs[2])
        plan.add(jobs[3], after=(b,))
        plan.add(jobs[4])
        plan.add(jobs[5])
        assignment = shard_assignment(plan, 3)
        # chain components assigned round-robin in plan order
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment == [0, 0, 1, 1, 2, 0]

    def test_too_coarse_chains_refuse_to_shard_with_a_clear_error(self):
        jobs = _fast_jobs(_dags(4))
        plan = RunPlan()
        prev = plan.add(jobs[0])
        for job in jobs[1:]:
            prev = plan.add(job, after=(prev,))
        with pytest.raises(ConfigurationError, match="dependency chain"):
            shard_assignment(plan, 2)
        # one shard is always fine, even fully chained
        assert shard_assignment(plan, 1) == [0, 0, 0, 0]

    def test_invalid_shard_counts_and_ids_are_rejected(self):
        plan = RunPlan.from_jobs(_fast_jobs(_dags(2)))
        with pytest.raises(ConfigurationError, match="shards must be >= 1"):
            shard_assignment(plan, 0)
        with pytest.raises(ConfigurationError, match="shard_id"):
            shard_plan(plan, 2, 2)
        with pytest.raises(ConfigurationError, match="shard_id"):
            shard_plan(plan, 2, -1)


class TestShardPlan:
    def test_subplan_keeps_ids_edges_and_full_plan_indices(self):
        jobs = _fast_jobs(_dags(4))
        plan = RunPlan()
        a = plan.add(jobs[0], id="a")
        plan.add(jobs[1], id="b", after=(a,))
        plan.add(jobs[2], id="c")
        plan.add(jobs[3], id="d")
        shard0 = shard_plan(plan, 2, 0)
        shard1 = shard_plan(plan, 2, 1)
        assert [n.id for n in shard0.plan] == ["a", "b", "d"]
        assert shard0.indices == (0, 1, 3)
        assert [n.id for n in shard1.plan] == ["c"]
        assert shard1.indices == (2,)
        # every node is in exactly one shard
        assert sorted(shard0.indices + shard1.indices) == [0, 1, 2, 3]

    def test_subset_rejects_broken_dependencies_and_bad_indices(self):
        jobs = _fast_jobs(_dags(2))
        plan = RunPlan()
        a = plan.add(jobs[0], id="a")
        plan.add(jobs[1], id="b", after=(a,))
        with pytest.raises(ConfigurationError, match="unknown node"):
            plan.subset([1])  # dependent without its dependency
        with pytest.raises(ConfigurationError, match="out of range"):
            plan.subset([5])
        assert len(plan.subset([0, 1])) == 2


class TestShardResultsPath:
    def test_name_concatenation_preserves_the_base_path(self):
        path = shard_results_path("out/results.jsonl", 4, 2)
        assert str(path) == "out/results.jsonl.shard2of4"
        # dots in the base name survive verbatim
        path = shard_results_path("a.b.c.jsonl", 2, 0)
        assert str(path) == "a.b.c.jsonl.shard0of2"


class TestRunSharded:
    def test_forkjoin_matches_single_process_results_and_bytes(self, tmp_path):
        plan = plan_pipelines(
            ["bspg+clairvoyant", "cilk+lru"], _dags(2), CFG
        )
        cache = tmp_path / "cache"
        single = tmp_path / "single.jsonl"
        reference = Session(
            workers=1, cache_dir=cache, results_path=single
        ).run(plan)

        merged = tmp_path / "merged.jsonl"
        session = Session(workers=1, cache_dir=cache, results_path=merged)
        results = session.run_sharded(plan, 2)
        assert [r.fingerprint() for r in results] == [
            r.fingerprint() for r in reference
        ]
        # shards replay the shared cache -> the merge is byte-identical
        assert merged.read_bytes() == single.read_bytes()
        assert session.stats.cache_hits == len(plan)
        # the per-shard files remain as artifacts
        assert shard_results_path(merged, 2, 0).is_file()
        assert shard_results_path(merged, 2, 1).is_file()

    def test_fresh_sharded_run_is_fingerprint_identical(self, tmp_path):
        plan = plan_pipelines(["bspg+clairvoyant"], _dags(2), CFG)
        reference = Session(workers=1).run(plan)
        results = run_sharded(plan, 2)
        assert [r.fingerprint() for r in results] == [
            r.fingerprint() for r in reference
        ]

    def test_sharded_without_results_path_writes_nothing(self, tmp_path):
        plan = plan_pipelines(["bspg+clairvoyant"], _dags(1), CFG)
        results = run_sharded(plan, 2, cache_dir=tmp_path / "cache")
        assert len(results) == 1
        assert list(tmp_path.glob("*.jsonl*")) == []

    def test_sharded_resume_skips_recorded_jobs(self, tmp_path):
        plan = plan_pipelines(["bspg+clairvoyant"], _dags(2), CFG)
        base = tmp_path / "results.jsonl"
        session = Session(workers=1, results_path=base)
        session.run_sharded(plan, 2)
        again = Session(workers=1, results_path=base, resume=True)
        again.run_sharded(plan, 2)
        assert again.stats.resumed == len(plan)
        assert again.stats.executed == 0

    def test_merge_validates_against_the_wrong_shard_count(self, tmp_path):
        plan = plan_pipelines(["bspg+clairvoyant"], _dags(2), CFG)
        base = tmp_path / "results.jsonl"
        run_sharded(plan, 2, results_path=base)
        with pytest.raises(ConfigurationError, match="re-run shard"):
            merge_shard_logs(plan, base, 3)
