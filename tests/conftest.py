"""Shared fixtures for the test suite.

Tests default to a 1-second ILP time limit (``REPRO_ILP_TIME_LIMIT=1``):
the suite exercises the harness end to end, not solution quality.  Export
the variable yourself to override.  Long solver tests carry the ``slow``
marker and are excluded from the default run (see ``pytest.ini``).
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_ILP_TIME_LIMIT", "1")

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import (
    chain_dag,
    fork_join_dag,
    iterated_spmv,
    kmeans,
    knn_iteration,
    random_layered_dag,
    spmv,
)
from repro.dag.graph import ComputationalDag
from repro.ilp import SolverOptions
from repro.model.instance import MbspInstance, make_instance


@pytest.fixture
def diamond_dag() -> ComputationalDag:
    """The smallest interesting DAG: a diamond a -> {b, c} -> d."""
    dag = ComputationalDag(name="diamond")
    dag.add_node("a", omega=1, mu=1)
    dag.add_node("b", omega=2, mu=1)
    dag.add_node("c", omega=3, mu=2)
    dag.add_node("d", omega=1, mu=1)
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


@pytest.fixture
def small_spmv() -> ComputationalDag:
    """A small SpMV DAG with random memory weights (deterministic seed)."""
    dag = spmv(4, seed=1)
    assign_random_memory_weights(dag, seed=7)
    return dag


@pytest.fixture
def medium_dag() -> ComputationalDag:
    """A medium layered random DAG for scheduler integration tests."""
    return random_layered_dag(num_layers=5, width=4, edge_probability=0.5, seed=3)


@pytest.fixture
def small_instance(small_spmv) -> MbspInstance:
    """Default instance: P=2, r=3*r0, g=1, L=10 on the small SpMV DAG."""
    return make_instance(small_spmv, num_processors=2, cache_factor=3.0, g=1.0, L=10.0)


@pytest.fixture
def four_proc_instance(medium_dag) -> MbspInstance:
    return make_instance(medium_dag, num_processors=4, cache_factor=3.0, g=1.0, L=10.0)


@pytest.fixture
def fast_solver_options() -> SolverOptions:
    """Solver options with a short time limit for unit tests."""
    return SolverOptions(time_limit=5.0)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running solver tests")
