"""Mining and byte-stability tests for the learned history (repro.learn)."""

from __future__ import annotations

import json

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentConfig
from repro.learn import (
    HISTORY_SCHEMA_VERSION,
    LearnedHistory,
    MemberObservation,
    instance_features,
    mine_history,
)


CONFIG = ExperimentConfig(name="history-test", num_processors=4)


def make_dags(count=2):
    dags = []
    for i in range(count):
        dag = spmv(3 + i, seed=i)
        assign_random_memory_weights(dag, seed=i)
        dags.append(dag)
    return dags


def result_payload(cost, solver_calls=0.0):
    return {
        "instance_name": "x",
        "num_nodes": 5,
        "baseline_cost": cost + 1,
        "ilp_cost": cost,
        "solver_status": "optimal",
        "solve_time": 0.1,
        "extra_costs": {"member_cost": cost},
        "solver_stats": {"solver_calls": solver_calls},
    }


def write_results(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def sample_records(dags):
    records = []
    for i, dag in enumerate(dags):
        for j, (spec, cost) in enumerate(
            [("bspg+clairvoyant", 10.0 + i), ("cilk+lru", 14.0 + i)]
        ):
            records.append({
                "key": f"k{i}-{j}",
                "kind": "portfolio",
                "instance": dag.name,
                "member": spec,
                "result": result_payload(cost, solver_calls=float(j)),
            })
    return records


class TestMining:
    def test_mines_member_records(self, tmp_path):
        dags = make_dags()
        path = tmp_path / "results.jsonl"
        write_results(path, sample_records(dags))
        history, stats = mine_history([path], dags, CONFIG)
        assert stats.observations == 4
        assert history.num_observations == 4
        assert history.specs() == ["bspg+clairvoyant", "cilk+lru"]
        assert history.best_cost(dags[0].name) == 10.0

    def test_skips_memberless_unknown_and_nonfinite(self, tmp_path):
        dags = make_dags(1)
        records = sample_records(dags)
        records.append({  # no member spec (pre-PR-10 record)
            "key": "k-old", "kind": "pipeline", "instance": dags[0].name,
            "result": result_payload(5.0),
        })
        records.append({  # unknown instance: no DAG to feature
            "key": "k-ghost", "kind": "portfolio", "instance": "ghost",
            "member": "ilp", "result": result_payload(5.0),
        })
        records.append({  # non-finite cost
            "key": "k-inf", "kind": "portfolio", "instance": dags[0].name,
            "member": "ilp",
            "result": dict(result_payload(1.0), ilp_cost=float("inf"),
                           extra_costs={}),
        })
        path = tmp_path / "results.jsonl"
        write_results(path, records)
        history, stats = mine_history([path], dags, CONFIG)
        assert stats.skipped_no_member == 1
        assert stats.skipped_unknown_instance == 1
        assert stats.skipped_nonfinite == 1
        assert history.num_observations == 2
        assert "observation(s)" in stats.describe()

    def test_malformed_lines_are_skipped(self, tmp_path):
        dags = make_dags(1)
        path = tmp_path / "results.jsonl"
        good = json.dumps(sample_records(dags)[0], sort_keys=True)
        path.write_text("not json\n" + good + "\n{\"truncated\": \n")
        history, stats = mine_history([path], dags, CONFIG)
        assert history.num_observations == 1


class TestByteStability:
    def test_remining_is_idempotent(self, tmp_path):
        dags = make_dags()
        path = tmp_path / "results.jsonl"
        write_results(path, sample_records(dags))
        once, _ = mine_history([path], dags, CONFIG)
        twice, _ = mine_history([path, path], dags, CONFIG)
        assert once.to_json() == twice.to_json()
        assert once.digest() == twice.digest()

    def test_record_order_does_not_matter(self, tmp_path):
        dags = make_dags()
        forward = tmp_path / "fwd.jsonl"
        backward = tmp_path / "bwd.jsonl"
        records = sample_records(dags)
        write_results(forward, records)
        write_results(backward, list(reversed(records)))
        a, _ = mine_history([forward], dags, CONFIG)
        b, _ = mine_history([backward], dags, CONFIG)
        assert a.to_json() == b.to_json()

    def test_no_wall_clock_in_serialization(self, tmp_path):
        dags = make_dags(1)
        path = tmp_path / "results.jsonl"
        write_results(path, sample_records(dags))
        history, _ = mine_history([path], dags, CONFIG)
        text = history.to_json()
        assert "solve_time" not in text
        assert "solver_time" not in text

    def test_observation_merge_is_order_free(self):
        a = MemberObservation(cost=10.0, solver_calls=1.0)
        a.merge(8.0, 3.0)
        a.merge(9.0, 2.0)
        b = MemberObservation(cost=9.0, solver_calls=2.0)
        b.merge(8.0, 3.0)
        b.merge(10.0, 1.0)
        assert (a.cost, a.solver_calls) == (b.cost, b.solver_calls) == (8.0, 3.0)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        dags = make_dags()
        results = tmp_path / "results.jsonl"
        write_results(results, sample_records(dags))
        history, _ = mine_history([results], dags, CONFIG)
        target = tmp_path / "history.json"
        history.save(target)
        loaded = LearnedHistory.load(target)
        assert loaded.to_json() == history.to_json()
        assert loaded.digest() == history.digest()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            LearnedHistory.load(tmp_path / "nope.json")

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("definitely not json")
        with pytest.raises(ConfigurationError, match="malformed"):
            LearnedHistory.load(path)

    def test_load_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "schema_version": HISTORY_SCHEMA_VERSION + 1, "instances": {}
        }))
        with pytest.raises(ConfigurationError, match="schema version"):
            LearnedHistory.load(path)

    def test_observe_directly(self):
        dag = make_dags(1)[0]
        features = instance_features(dag, CONFIG)
        history = LearnedHistory(processors=4)
        history.observe(dag.name, features, dag.num_nodes, "ilp", 5.0, 1.0)
        history.observe(dag.name, features, dag.num_nodes, "ilp", 7.0, 2.0)
        observation = history.instances[dag.name].members["ilp"]
        assert observation.cost == 5.0
        assert observation.solver_calls == 2.0
        assert history.best_cost(dag.name) == 5.0
