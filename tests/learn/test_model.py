"""Selector (greedy / knn) ranking tests for repro.learn.model."""

from __future__ import annotations

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentConfig
from repro.learn import (
    LearnedHistory,
    instance_features,
    rank_greedy,
    rank_knn,
    rank_members,
)


CONFIG = ExperimentConfig(name="model-test", num_processors=4)


def make_instance(seed=1):
    dag = spmv(4, seed=seed)
    assign_random_memory_weights(dag, seed=seed)
    return dag, instance_features(dag, CONFIG)


def history_with(observations, dag=None, features=None):
    """A history with the given ``spec -> (cost, solver_calls)`` table."""
    if dag is None:
        dag, features = make_instance()
    history = LearnedHistory(processors=4)
    for spec, (cost, calls) in observations.items():
        history.observe(dag.name, features, dag.num_nodes, spec, cost, calls)
    return history


class TestGreedy:
    def test_orders_by_mean_relative_cost(self):
        dag, features = make_instance()
        history = history_with(
            {"fast": (10.0, 0.0), "slow": (15.0, 0.0), "ilp": (10.0, 5.0)},
            dag=dag, features=features,
        )
        ranked = rank_greedy(history, features, ["slow", "ilp", "fast"])
        # fast and ilp tie on cost; fewer solver calls breaks the tie
        assert ranked == ["fast", "ilp", "slow"]

    def test_unobserved_candidates_rank_last_in_order(self):
        dag, features = make_instance()
        history = history_with(
            {"fast": (10.0, 0.0), "slow": (15.0, 0.0)},
            dag=dag, features=features,
        )
        ranked = rank_greedy(
            history, features, ["mystery-b", "slow", "mystery-a", "fast"]
        )
        assert ranked == ["fast", "slow", "mystery-b", "mystery-a"]

    def test_empty_history_preserves_candidate_order(self):
        _, features = make_instance()
        candidates = ["c", "a", "b"]
        assert rank_greedy(LearnedHistory(), features, candidates) == candidates

    def test_seed_rotates_only_exact_ties(self):
        dag, features = make_instance()
        history = history_with(
            {"x": (10.0, 1.0), "y": (10.0, 1.0), "worse": (20.0, 0.0)},
            dag=dag, features=features,
        )
        candidates = ["worse", "y", "x"]
        seed0 = rank_greedy(history, features, candidates, seed=0)
        seed1 = rank_greedy(history, features, candidates, seed=1)
        assert seed0 == ["x", "y", "worse"]
        assert seed1 == ["y", "x", "worse"]
        # cuts at tie-group boundaries select the same set regardless of
        # seed; a cut *inside* the group picks equivalent (exactly tied)
        # members, so selection quality never depends on the seed
        assert set(seed0[:2]) == set(seed1[:2])
        assert set(seed0[:3]) == set(seed1[:3])
        assert seed0[0] in ("x", "y") and seed1[0] in ("x", "y")

    def test_unseen_bucket_falls_back_to_global_table(self):
        mined_dag, mined_features = make_instance(seed=1)
        history = history_with(
            {"fast": (10.0, 0.0), "slow": (30.0, 0.0)},
            dag=mined_dag, features=mined_features,
        )
        # a much larger instance lands in a bucket the history never saw
        other = spmv(40, seed=9)
        assign_random_memory_weights(other, seed=9)
        other_features = instance_features(other, CONFIG)
        assert (
            rank_greedy(history, other_features, ["slow", "fast"])
            == ["fast", "slow"]
        )

    def test_ranking_is_pure(self):
        dag, features = make_instance()
        history = history_with(
            {"fast": (10.0, 0.0), "slow": (15.0, 0.0)},
            dag=dag, features=features,
        )
        before = history.digest()
        rank_greedy(history, features, ["slow", "fast"])
        rank_knn(history, features, ["slow", "fast"])
        assert history.digest() == before


class TestKnn:
    def test_empty_history_preserves_candidate_order(self):
        _, features = make_instance()
        candidates = ["b", "a"]
        assert rank_knn(LearnedHistory(), features, candidates) == candidates

    def test_neighbours_vote_with_relative_costs(self):
        history = LearnedHistory(processors=4)
        for seed in (1, 2, 3):
            dag, features = make_instance(seed=seed)
            history.observe(
                dag.name, features, dag.num_nodes, "fast", 10.0, 0.0
            )
            history.observe(
                dag.name, features, dag.num_nodes, "slow", 14.0, 0.0
            )
        _, query = make_instance(seed=4)
        assert rank_knn(history, query, ["slow", "fast"]) == ["fast", "slow"]


class TestRankMembers:
    def test_dispatches_both_selectors(self):
        dag, features = make_instance()
        history = history_with(
            {"fast": (10.0, 0.0), "slow": (15.0, 0.0)},
            dag=dag, features=features,
        )
        for selector in ("greedy", "knn"):
            ranked = rank_members(
                history, features, ["slow", "fast"], selector=selector
            )
            assert ranked == ["fast", "slow"]

    def test_unknown_selector_raises(self):
        _, features = make_instance()
        with pytest.raises(ConfigurationError, match="unknown selector"):
            rank_members(LearnedHistory(), features, ["a"], selector="bogus")
