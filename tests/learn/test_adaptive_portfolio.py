"""Golden guarantees of the adaptive portfolio (repro.learn x portfolio).

The load-bearing test is :func:`TestGolden.test_topk_all_equals_exhaustive`:
``select="adaptive"`` with ``top_k >= len(members)`` must reproduce the
exhaustive run **byte for byte** (same rows, same table body) — adaptive
mode is a strict subset of exhaustive work, never different work.
"""

from __future__ import annotations

import warnings

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exceptions import ConfigurationError
from repro.experiments.parallel import ExperimentEngine
from repro.experiments.runner import ExperimentConfig
from repro.learn import mine_history
from repro.portfolio import Portfolio, format_portfolio_table


CONFIG = ExperimentConfig(name="portfolio", num_processors=4)
#: heuristic-only members: the whole module runs without an ILP dispatch
MEMBERS = ["bspg+clairvoyant", "cilk+lru", "etf+clairvoyant"]


@pytest.fixture(scope="module")
def dags():
    # sizes spread far enough apart that every instance lands in its own
    # feature bucket: per-bucket greedy then equals the per-instance winner,
    # which is what makes the top-1 regret assertions exact
    out = []
    for i, size in enumerate((3, 8, 20)):
        dag = spmv(size, seed=i)
        assign_random_memory_weights(dag, seed=i)
        out.append(dag)
    return out


@pytest.fixture(scope="module")
def ground_truth(dags, tmp_path_factory):
    """(exhaustive rows, mined history) shared by the whole module."""
    results = tmp_path_factory.mktemp("adaptive-golden") / "results.jsonl"
    engine = ExperimentEngine(workers=1, results_path=results)
    rows = Portfolio(config=CONFIG).run(MEMBERS, dags, engine=engine)
    engine.session.log.close()
    history, stats = mine_history([results], dags, CONFIG)
    assert stats.observations == len(MEMBERS) * len(dags)
    return rows, history


class TestGolden:
    def test_topk_all_equals_exhaustive(self, dags, ground_truth):
        exhaustive_rows, history = ground_truth
        portfolio = Portfolio(
            config=CONFIG,
            select="adaptive",
            top_k=len(MEMBERS),
            history=history,
        )
        rows = portfolio.run(MEMBERS, dags)
        assert rows == exhaustive_rows  # dataclass equality: every field
        assert (
            format_portfolio_table(rows)
            == format_portfolio_table(exhaustive_rows)
        )
        selection = portfolio.last_selection
        assert selection is not None
        assert selection.jobs_run == selection.jobs_total

    def test_top_k_none_means_all(self, dags, ground_truth):
        exhaustive_rows, history = ground_truth
        portfolio = Portfolio(
            config=CONFIG, select="adaptive", top_k=None, history=history
        )
        assert portfolio.run(MEMBERS, dags) == exhaustive_rows


class TestSubset:
    def test_top_1_runs_strictly_fewer_jobs(self, dags, ground_truth):
        exhaustive_rows, history = ground_truth
        portfolio = Portfolio(
            config=CONFIG, select="adaptive", top_k=1, history=history
        )
        rows = portfolio.run(MEMBERS, dags)
        selection = portfolio.last_selection
        assert selection.jobs_run == len(dags)
        assert selection.jobs_total == len(MEMBERS) * len(dags)
        for row, truth in zip(rows, exhaustive_rows):
            assert len(row.member_costs) == 1
            # every cost that was run matches its exhaustive counterpart
            for member, cost in row.member_costs.items():
                assert cost == truth.member_costs[member]

    def test_zero_regret_on_mined_instances(self, dags, ground_truth):
        _, history = ground_truth
        portfolio = Portfolio(
            config=CONFIG, select="adaptive", top_k=1, history=history
        )
        portfolio.run(MEMBERS, dags)
        aggregate = portfolio.last_selection.aggregate_regret()
        assert aggregate["regret"] == 0.0
        assert aggregate["instances_known"] == float(len(dags))
        assert aggregate["instances_unknown"] == 0.0

    def test_footer_renders_selection_and_regret(self, dags, ground_truth):
        exhaustive_rows, history = ground_truth
        portfolio = Portfolio(
            config=CONFIG, select="adaptive", top_k=1, history=history
        )
        rows = portfolio.run(MEMBERS, dags)
        table = format_portfolio_table(
            rows, reuse=portfolio.last_reuse, selection=portfolio.last_selection
        )
        assert "~ adaptive selection (greedy, top-1): ran 3/9" in table
        assert "~ aggregate regret: 0 (+0.00% vs true best)" in table
        # skipped members render as '-' placeholders, not as zero costs
        assert " - " in table

    def test_history_accepted_as_path(self, dags, ground_truth, tmp_path):
        _, history = ground_truth
        path = tmp_path / "history.json"
        history.save(path)
        by_object = Portfolio(
            config=CONFIG, select="adaptive", top_k=1, history=history
        )
        by_path = Portfolio(
            config=CONFIG, select="adaptive", top_k=1, history=str(path)
        )
        assert by_path.run(MEMBERS, dags) == by_object.run(MEMBERS, dags)


class TestFallbackAndErrors:
    def test_missing_history_warns_and_runs_exhaustively(
        self, dags, ground_truth
    ):
        exhaustive_rows, _ = ground_truth
        portfolio = Portfolio(config=CONFIG, select="adaptive", top_k=1)
        with pytest.warns(UserWarning, match="without a mined history"):
            rows = portfolio.run(MEMBERS, dags)
        assert rows == exhaustive_rows
        assert portfolio.last_selection is None

    def test_exhaustive_mode_never_warns(self, dags):
        portfolio = Portfolio(config=CONFIG)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            portfolio.run(MEMBERS, dags[:1])
        assert portfolio.last_selection is None

    def test_unknown_select_mode_raises(self):
        with pytest.raises(ConfigurationError, match="unknown selection mode"):
            Portfolio(config=CONFIG, select="bogus")

    def test_top_k_below_one_raises(self, dags, ground_truth):
        _, history = ground_truth
        portfolio = Portfolio(
            config=CONFIG, select="adaptive", top_k=0, history=history
        )
        with pytest.raises(ConfigurationError, match="top_k"):
            portfolio.run(MEMBERS, dags)

    def test_unknown_selector_raises(self, dags, ground_truth):
        _, history = ground_truth
        portfolio = Portfolio(
            config=CONFIG, select="adaptive", top_k=1, history=history,
            selector="bogus",
        )
        with pytest.raises(ConfigurationError, match="unknown selector"):
            portfolio.run(MEMBERS, dags)
