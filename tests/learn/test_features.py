"""Determinism and schema tests for the instance features (repro.learn)."""

from __future__ import annotations

import os
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.dag.generators import random_layered_dag
from repro.experiments.runner import ExperimentConfig
from repro.learn import FEATURE_NAMES, feature_bucket, instance_features


CONFIG = ExperimentConfig(name="features-test", num_processors=4)


class TestSchema:
    def test_vector_matches_schema(self, small_spmv):
        vector = instance_features(small_spmv, CONFIG)
        assert len(vector.values) == len(FEATURE_NAMES)
        assert vector.names == FEATURE_NAMES
        assert vector.to_dict() == dict(zip(FEATURE_NAMES, vector.values))

    def test_getitem_by_name(self, small_spmv):
        vector = instance_features(small_spmv, CONFIG)
        assert vector["nodes"] == float(small_spmv.num_nodes)
        assert vector["processors"] == 4.0

    def test_bucket_is_coarse_and_stable(self, small_spmv):
        vector = instance_features(small_spmv, CONFIG)
        bucket = feature_bucket(vector)
        assert bucket.startswith("n") and "|P4" in bucket
        assert bucket == feature_bucket(vector)

    def test_config_enters_the_vector(self, small_spmv):
        base = instance_features(small_spmv, CONFIG)
        other = instance_features(
            small_spmv, ExperimentConfig(name="x", num_processors=8)
        )
        assert base["processors"] != other["processors"]
        assert base.fingerprint() != other.fingerprint()


class TestDeterminism:
    def test_repeated_calls_identical(self, medium_dag):
        first = instance_features(medium_dag, CONFIG)
        second = instance_features(medium_dag, CONFIG)
        assert first.values == second.values
        assert first.fingerprint() == second.fingerprint()

    @settings(max_examples=25, deadline=None)
    @given(
        layers=st.integers(min_value=2, max_value=5),
        width=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_dags_feature_purely(self, layers, width, seed):
        dag = random_layered_dag(
            num_layers=layers, width=width, edge_probability=0.5, seed=seed
        )
        first = instance_features(dag, CONFIG)
        second = instance_features(dag, CONFIG)
        assert first.values == second.values
        assert feature_bucket(first) == feature_bucket(second)

    def test_fingerprint_stable_across_hash_seeds(self):
        """The vector must not depend on PYTHONHASHSEED (set iteration)."""
        script = (
            "from repro.dag.generators import spmv\n"
            "from repro.dag.analysis import assign_random_memory_weights\n"
            "from repro.experiments.runner import ExperimentConfig\n"
            "from repro.learn import instance_features\n"
            "dag = spmv(5, seed=2)\n"
            "assign_random_memory_weights(dag, seed=3)\n"
            "config = ExperimentConfig(name='hashseed', num_processors=4)\n"
            "print(instance_features(dag, config).fingerprint())\n"
        )
        prints = []
        for hash_seed in ("0", "1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", script],
                env=env, capture_output=True, text=True, check=True,
            )
            prints.append(out.stdout.strip())
        assert len(set(prints)) == 1, prints
