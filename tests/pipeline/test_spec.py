"""Unit tests for the pipeline spec mini-language (repro.pipeline.spec)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline import (
    LEGACY_MEMBER_SPECS,
    PipelineSpec,
    canonicalize,
    is_pipeline_spec,
    legacy_member_names,
    parse,
)


class TestLegacyMemberAliases:
    """Every legacy member name maps to the pipeline that reproduces it."""

    EXPECTED = {
        "bspg+clairvoyant": "bspg+clairvoyant",
        "cilk+lru": "cilk+lru",
        "dfs+clairvoyant": "dfs+clairvoyant",
        "bsp-ilp+fifo": "bsp-ilp+fifo",
        "ilp": "baseline|ilp(warm=objective)",
        "dac": "dac",
        "divide-and-conquer": "dac",
        "bspg+clairvoyant+refine": "bspg+clairvoyant|refine",
        "ilp+refine": "baseline|refine|ilp(warm=objective)|refine",
        "dac+refine": "dac|refine",
    }

    @pytest.mark.parametrize("member,spec", sorted(EXPECTED.items()))
    def test_member_canonical_spec(self, member, spec):
        assert canonicalize(member) == spec

    def test_table_covers_every_member(self):
        assert set(LEGACY_MEMBER_SPECS) == set(legacy_member_names())
        for member, spec in LEGACY_MEMBER_SPECS.items():
            assert canonicalize(member) == spec

    def test_legacy_ilp_members_use_the_objective_warm_start(self):
        """Historical behaviour is pinned: legacy names never get the new
        warm-start-*solution* default silently."""
        for member in ("ilp", "ilp+refine"):
            assert "ilp(warm=objective)" in LEGACY_MEMBER_SPECS[member]


class TestParsing:
    def test_multi_stage_spec(self):
        spec = parse("bspg+clairvoyant|refine|ilp")
        assert spec.canonical() == "bspg+clairvoyant|refine|ilp"
        assert [s.name for s in spec.stages] == ["bspg", "refine", "ilp"]

    def test_whitespace_and_case_insensitive(self):
        assert (
            canonicalize("  CILK+LRU |  Refine( Budget=500 ) | ILP ")
            == "cilk+lru|refine(budget=500)|ilp"
        )

    def test_options_are_sorted_in_canonical_form(self):
        assert (
            canonicalize("refine(strategy=anneal,budget=10)|ilp")
            == "baseline|refine(budget=10,strategy=anneal)|ilp"
        )

    def test_default_options_are_omitted(self):
        assert canonicalize("baseline|ilp(warm=solution)") == "baseline|ilp"
        assert canonicalize("bspg(policy=clairvoyant)") == "bspg+clairvoyant"

    def test_baseline_auto_prepended_for_incumbent_stages(self):
        assert canonicalize("refine") == "baseline|refine"
        assert canonicalize("ilp|refine") == "baseline|ilp|refine"

    def test_dac_aliases(self):
        assert canonicalize("divide-and-conquer|refine") == "dac|refine"
        assert canonicalize("dac(max_part_size=10)") == "dac(max_part_size=10)"

    def test_round_trip_is_a_fixed_point(self):
        for text in (
            "bspg+clairvoyant|refine|ilp",
            "ilp+refine",
            "dac(max_part_size=8,partition_time_limit=2)|refine(seed=3)",
            "etf+fifo",
        ):
            canonical = canonicalize(text)
            assert canonicalize(canonical) == canonical
            assert parse(canonical) == parse(canonical)

    def test_is_pipeline_spec(self):
        assert is_pipeline_spec("bspg+clairvoyant|refine")
        assert is_pipeline_spec("ilp")
        assert not is_pipeline_spec("quantum")
        assert not is_pipeline_spec("")


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "quantum",
            "bspg+warp",                   # unknown policy
            "bspg+clairvoyant|",           # empty trailing stage
            "refine(budget)",              # malformed option
            "refine(budget=-1)",           # invalid value
            "refine(warp=1)",              # unknown option
            "ilp(warm=maybe)",             # invalid enum value
            "bspg+clairvoyant(policy=lru)",  # policy named twice
            "refine(budget=xyz)",          # non-integer
            "ilp(warm=objective",          # unbalanced parenthesis
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse(text)

    def test_error_names_the_unknown_stage(self):
        with pytest.raises(ConfigurationError, match="quantum"):
            parse("bspg+clairvoyant|quantum")


def test_pipeline_spec_is_hashable_and_comparable():
    left = parse("bspg+clairvoyant|refine")
    right = parse("bspg+clairvoyant | refine")
    assert left == right
    assert hash(left) == hash(right)
    assert isinstance(left, PipelineSpec)
