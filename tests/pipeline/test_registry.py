"""Unit tests for the pipeline stage registry (repro.pipeline.registry)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline import (
    StageFactory,
    available_stages,
    get_stage_factory,
    make_stage,
    register_stage,
    stage_descriptions,
)
from repro.pipeline.registry import _ALIASES, _REGISTRY


BUILTIN_STAGES = {"baseline", "bspg", "cilk", "etf", "dfs", "bsp-ilp", "ilp",
                  "refine", "dac"}


class TestBuiltins:
    def test_builtin_stages_registered(self):
        assert BUILTIN_STAGES <= set(available_stages())

    def test_every_stage_has_a_description(self):
        names = dict(stage_descriptions())
        for stage in BUILTIN_STAGES:
            assert names[stage]

    def test_aliases_resolve(self):
        assert get_stage_factory("divide-and-conquer").name == "dac"
        assert get_stage_factory("divide_and_conquer").name == "dac"
        assert get_stage_factory("bsp_ilp").name == "bsp-ilp"
        assert get_stage_factory("DAC").name == "dac"

    def test_unknown_stage_raises_with_listing(self):
        with pytest.raises(ConfigurationError, match="unknown pipeline stage"):
            get_stage_factory("quantum")

    def test_make_stage_rejects_unknown_options(self):
        with pytest.raises(ConfigurationError, match="does not understand"):
            make_stage("ilp", {"turbo": "on"})


class _DummyStage:
    name = "dummy"
    requires_incumbent = False
    prunable = False
    prune_label = ("cost", "pruned")

    def spec_token(self):
        return self.name

    def run(self, instance, incumbent, ctx):  # pragma: no cover - unused
        raise NotImplementedError


def _factory(name):
    return StageFactory(name=name, description="test", build=lambda o: _DummyStage())


class TestRegistration:
    def _cleanup(self, *names):
        for name in names:
            _REGISTRY.pop(name, None)
        for alias in [a for a, target in list(_ALIASES.items()) if target in names]:
            _ALIASES.pop(alias, None)

    def test_register_and_build(self):
        try:
            register_stage(_factory("dummy"), aliases=("dummy-alias",))
            assert "dummy" in available_stages()
            assert get_stage_factory("dummy-alias").name == "dummy"
            assert make_stage("dummy").spec_token() == "dummy"
        finally:
            self._cleanup("dummy")

    def test_alias_may_not_shadow_other_stage(self):
        with pytest.raises(ConfigurationError, match="shadow"):
            register_stage(_factory("dummy2"), aliases=("ilp",))
        # the rejected registration left no trace behind
        assert "dummy2" not in available_stages()
        assert get_stage_factory("ilp").name == "ilp"

    def test_name_may_not_reuse_existing_alias(self):
        with pytest.raises(ConfigurationError, match="alias"):
            register_stage(_factory("divide-and-conquer"))

    def test_reregistering_replaces(self):
        try:
            register_stage(_factory("dummy3"))
            replacement = _factory("dummy3")
            register_stage(replacement)
            assert get_stage_factory("dummy3") is replacement
        finally:
            self._cleanup("dummy3")
