"""Behavioral tests for the generic pipeline runner (repro.pipeline.Pipeline)."""

import math

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, spmv
from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentConfig
from repro.pipeline import (
    Pipeline,
    run_pipeline,
    stage_reuse_scope,
)
from repro.refine import RefineConfig


def _dag(size=3, seed=1, name="spmv_t"):
    dag = spmv(size, seed=seed)
    assign_random_memory_weights(dag, seed=11)
    dag.name = name
    return dag


CFG = ExperimentConfig(name="pipeline-test", num_processors=2, ilp_time_limit=1.0,
                       refine=RefineConfig(budget=300))


class TestBasicExecution:
    def test_single_stage_matches_two_stage_runner(self):
        from repro.core.two_stage import run_two_stage

        dag = _dag()
        result = run_pipeline("bspg+clairvoyant", dag, CFG)
        reference = run_two_stage(
            CFG.instance_for(dag), scheduler="bspg", policy="clairvoyant", seed=0
        )
        assert result.cost == reference.cost
        assert result.baseline_cost == reference.cost
        assert result.status().startswith("schedule:")

    def test_incumbent_threads_between_stages(self):
        dag = _dag()
        base = run_pipeline("bspg+clairvoyant", dag, CFG)
        refined = run_pipeline("bspg+clairvoyant|refine", dag, CFG)
        assert refined.cost <= base.cost
        assert [s.stage for s in refined.stages] == ["bspg+clairvoyant", "refine"]
        # the refine stage saw the two-stage schedule as its incumbent
        assert refined.stages[1].telemetry["cost_in"] == base.cost
        assert refined.stages[1].telemetry["cost_out"] == refined.cost

    def test_per_stage_telemetry_recorded(self):
        result = run_pipeline("bspg+clairvoyant|refine", _dag(), CFG)
        for stage in result.stages:
            assert "wall_time" in stage.telemetry
            assert "solver_calls" in stage.telemetry
        assert "refine" in result.describe()

    def test_inapplicable_pipeline_reports_infinite_cost(self):
        result = run_pipeline("dfs+clairvoyant", _dag(), CFG)  # dfs needs P=1
        assert not result.applicable
        assert math.isinf(result.cost)
        instance_result = result.to_instance_result()
        assert instance_result.solver_status.startswith("inapplicable")
        assert math.isinf(instance_result.extra_costs["member_cost"])

    def test_incumbent_required_without_producer(self):
        pipeline = Pipeline("baseline|refine")
        # bypass the spec-level auto-prepend by cutting the stages directly
        pipeline.stages = pipeline.stages[1:]
        pipeline._tokens = pipeline._tokens[1:]
        with pytest.raises(ConfigurationError, match="incumbent"):
            pipeline.run(_dag(), CFG)

    def test_dag_or_instance_required(self):
        with pytest.raises(ConfigurationError, match="dag or an instance"):
            Pipeline("baseline").run()

    def test_misconfiguration_propagates_instead_of_inapplicable(self):
        """Only two-stage heuristics may declare themselves inapplicable; a
        genuinely broken configuration (here: an invalid ILP step cap) must
        fail loudly, not become an infinitely expensive member."""
        from repro.portfolio import run_member

        with pytest.raises(ConfigurationError, match="max_steps"):
            run_member(_dag(), CFG.variant(step_cap=0), "ilp")


class TestPruning:
    P1 = ExperimentConfig(name="pipeline-prune", num_processors=1,
                          ilp_time_limit=5.0, ilp_node_limit=40, step_cap=4)

    def test_bound_tight_instance_skips_prunable_stages(self):
        result = run_pipeline("baseline|refine|ilp(warm=objective)|refine",
                              chain_dag(5), self.P1, prune_gap=0.0)
        skipped = [s for s in result.stages if s.skipped]
        assert len(skipped) == 3  # refine, ilp, refine — all pruned
        assert result.pruned
        status = result.status()
        assert status.startswith("skipped:")
        assert status.count("skipped:") == 1  # one skip message, not three
        assert "refinement pruned" in status  # the first skipped stage names it
        instance_result = result.to_instance_result()
        assert instance_result.extra_costs["pruned"] == 1.0
        assert instance_result.extra_costs["lower_bound"] == pytest.approx(result.cost)

    def test_loose_instance_runs_all_stages(self):
        result = run_pipeline("bspg+clairvoyant|refine", _dag(), CFG, prune_gap=0.0)
        assert not result.pruned

    def test_prune_disabled_by_default(self):
        result = run_pipeline("baseline|refine", chain_dag(5), self.P1)
        assert not result.pruned


class TestSharedPrefixReuse:
    def test_prefix_reused_within_scope(self):
        dag = _dag()
        with stage_reuse_scope() as cache:
            first = run_pipeline("bspg+clairvoyant", dag, CFG)
            second = run_pipeline("bspg+clairvoyant|refine", dag, CFG)
        assert cache.stats.stages_reused == 1
        assert cache.stats.prefix_hits == 1
        assert second.stages_reused == 1
        assert second.stages[0].cost == first.cost

    def test_reuse_does_not_change_results(self):
        dag = _dag()
        plain = run_pipeline("bspg+clairvoyant|refine", dag, CFG)
        with stage_reuse_scope():
            run_pipeline("bspg+clairvoyant", dag, CFG)
            reused = run_pipeline("bspg+clairvoyant|refine", dag, CFG)
        plain_result = plain.to_instance_result()
        reused_result = reused.to_instance_result()
        assert plain_result.fingerprint() == reused_result.fingerprint()

    def test_different_configs_do_not_share(self):
        dag = _dag()
        with stage_reuse_scope() as cache:
            run_pipeline("bspg+clairvoyant", dag, CFG)
            run_pipeline("bspg+clairvoyant", dag, CFG.variant(num_processors=4))
        assert cache.stats.stages_reused == 0

    def test_no_reuse_outside_scope(self):
        dag = _dag()
        result = run_pipeline("bspg+clairvoyant", dag, CFG)
        assert result.stages_reused == 0
        assert "pipeline_stages_reused" not in result.to_instance_result().solver_stats


class TestWarmStartSolutionChaining:
    """The tentpole acceptance: a three-stage spec feeds the refined schedule
    to the holistic ILP as a full warm-start *solution*."""

    SPEC = "bspg+clairvoyant|refine|ilp"

    def _config(self, backend):
        return ExperimentConfig(
            name="warm-start-chain",
            num_processors=2,
            ilp_time_limit=30.0,
            ilp_node_limit=10,
            ilp_backend=backend,
            refine=RefineConfig(budget=300),
        )

    def test_bnb_installs_the_chained_incumbent(self):
        result = run_pipeline(self.SPEC, _dag(), self._config("bnb"))
        ilp_stage = result.stages[-1]
        # the encoder produced a full assignment and the solver accepted it
        assert ilp_stage.extras["warm_started"] == 1.0
        assert ilp_stage.telemetry["warm_start"] == "solution"
        assert "warm-start solution" in ilp_stage.telemetry["solver_message"]
        # a true solution warm start: even a node-limited bnb run *has* a
        # solution (the installed incumbent), instead of NO_SOLUTION
        assert ilp_stage.status in ("optimal", "feasible")
        # the chained incumbent is the refined schedule's cost, and the ILP
        # can only keep or improve it
        refined_cost = result.stages[1].cost
        assert result.cost <= refined_cost

    def test_scipy_derives_the_cutoff_row(self):
        result = run_pipeline(self.SPEC, _dag(), self._config("scipy"))
        ilp_stage = result.stages[-1]
        assert ilp_stage.extras["warm_started"] == 1.0
        assert ilp_stage.telemetry["warm_start"] == "solution"
        refined_cost = result.stages[1].cost
        assert result.cost <= refined_cost

    def test_legacy_objective_mode_sets_no_warm_flag(self):
        result = run_pipeline("ilp", _dag(), self._config("bnb"))
        ilp_stage = result.stages[-1]
        assert "warm_started" not in ilp_stage.extras
        assert ilp_stage.telemetry["warm_start"] == "objective"
