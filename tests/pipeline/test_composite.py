"""Unit tests for the composite pipeline stages: race(...) and budget=<s>s.

Solver-backed runs are node-limited and step-capped, so every comparison
here is exact and reproducible under load (the same convention as the
golden equivalence suite).
"""

import math

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, spmv
from repro.exceptions import ConfigurationError
from repro.exec import slot_scope
from repro.experiments.parallel import ExperimentJob
from repro.experiments.runner import ExperimentConfig
from repro.pipeline import (
    EXAMPLE_RACE_SPECS,
    Pipeline,
    canonicalize,
    expand_spec,
    parse,
    with_default_budget,
)
from repro.pipeline.composite import splice_option
from repro.portfolio import is_prunable_member, run_member


def _dag():
    dag = spmv(3, seed=1)
    assign_random_memory_weights(dag, seed=11)
    dag.name = "spmv_race"
    return dag


CFG = ExperimentConfig(
    name="composite-test",
    num_processors=2,
    ilp_time_limit=30.0,
    ilp_node_limit=20,
    step_cap=4,
)


class TestRaceSpec:
    def test_branches_canonicalize_sorted(self):
        a = canonicalize("baseline|race(ilp@scipy,ilp@bnb)")
        b = canonicalize("baseline|race(ilp@bnb,ilp@scipy)")
        assert a == b == "baseline|race(ilp@bnb,ilp@scipy)"

    def test_canonical_is_fixed_point(self):
        for spec in EXAMPLE_RACE_SPECS.values():
            canonical = canonicalize(spec)
            assert canonicalize(canonical) == canonical

    def test_baseline_auto_prepended_for_incumbent_branches(self):
        spec = parse("race(ilp@bnb,ilp@scipy)")
        assert spec.stages[0].name == "baseline"

    def test_multi_stage_branches_parse(self):
        canonical = canonicalize("baseline|race(refine|ilp, ilp@bnb)")
        assert canonical == "baseline|race(ilp@bnb,refine|ilp)"

    def test_too_few_branches_rejected(self):
        with pytest.raises(ConfigurationError, match="two branches"):
            parse("baseline|race(ilp@bnb)")
        with pytest.raises(ConfigurationError, match="two branches"):
            parse("baseline|race()")

    def test_unknown_branch_stage_rejected_at_parse_time(self):
        with pytest.raises(ConfigurationError, match="unknown pipeline stage"):
            parse("baseline|race(ilp@bnb,quantum)")

    def test_unknown_backend_rejected_at_parse_time(self):
        with pytest.raises(ConfigurationError, match="backend"):
            parse("baseline|race(ilp@bnb,ilp@copt)")

    def test_positional_args_only_for_composites(self):
        with pytest.raises(ConfigurationError, match="positional"):
            parse("refine(hill)")

    def test_race_of_prunable_stages_is_prunable(self):
        assert is_prunable_member("baseline|race(ilp@bnb,ilp@scipy)")
        assert not is_prunable_member("baseline|race(ilp@bnb,dac)")


class TestRaceExecution:
    def test_winner_deterministic_across_branch_order_and_slots(self):
        dag = _dag()
        results = []
        for spec in ("baseline|race(ilp@scipy,ilp@bnb)",
                     "baseline|race(ilp@bnb,ilp@scipy)"):
            results.append(run_member(dag, CFG, spec))
            with slot_scope(4):
                results.append(run_member(dag, CFG, spec))
        fingerprints = [r.fingerprint() for r in results]
        assert all(fp == fingerprints[0] for fp in fingerprints[1:])
        assert results[0].solver_status.startswith("race[")

    def test_winner_cost_never_worse_than_either_branch(self):
        dag = _dag()
        race = run_member(dag, CFG, "baseline|race(ilp@bnb,ilp@scipy)")
        scipy_only = run_member(dag, CFG, "baseline|ilp@scipy")
        bnb_only = run_member(dag, CFG, "baseline|ilp@bnb")
        assert race.ilp_cost <= min(scipy_only.ilp_cost, bnb_only.ilp_cost) + 1e-9

    def test_anneal_seed_race_runs(self):
        dag = _dag()
        result = run_member(dag, CFG, EXAMPLE_RACE_SPECS["anneal-seed race"])
        assert math.isfinite(result.ilp_cost)
        assert result.solver_status.startswith("race[refine(")

    def test_inapplicable_branch_competes_with_infinite_cost(self):
        # dfs requires P = 1; on a P = 2 instance that branch is out and the
        # two-stage branch must win
        dag = _dag()
        result = run_member(
            dag, CFG, "race(dfs+clairvoyant,bspg+clairvoyant)"
        )
        reference = run_member(dag, CFG, "bspg+clairvoyant")
        assert result.ilp_cost == reference.ilp_cost

    def test_all_branches_inapplicable_reports_infinite_cost(self):
        dag = _dag()  # P = 2: every dfs branch is inapplicable
        result = run_member(
            dag, CFG, "race(dfs+clairvoyant,dfs+lru)"
        )
        assert math.isinf(result.ilp_cost)
        assert "no branch applicable" in result.solver_status

    def test_sequential_race_skips_all_losers_once_decided(self):
        # on a P = 1 chain the baseline matches the theory lower bound, so
        # after the first branch the winner is provably decided and *every*
        # remaining branch is cancelled before it starts (no extra solves —
        # a skipped loser must not un-decide the race for the next one)
        from repro.ilp.backends import reset_solver_call_stats, solver_call_stats

        dag = chain_dag(5)
        config = CFG.variant(num_processors=1)
        branches = ",".join(
            f"refine(seed={seed})|ilp(warm=objective)" for seed in (1, 2, 3)
        )
        reset_solver_call_stats()
        result = run_member(dag, config, f"baseline|race({branches})")
        assert math.isfinite(result.ilp_cost)
        # only the first branch dispatched solver calls
        assert solver_call_stats().total <= 1


class TestBudgets:
    def test_budget_token_canonical_and_hash_relevant(self):
        token = canonicalize("ilp(budget=2s,warm=objective)")
        assert token == "baseline|ilp(budget=2s,warm=objective)"
        assert canonicalize(token) == token
        # different budgets are different jobs (and cache keys)
        dag = _dag()
        key_a = ExperimentJob.make(
            "portfolio", dag, CFG, member=canonicalize("ilp(budget=2s)")
        ).key()
        key_b = ExperimentJob.make(
            "portfolio", dag, CFG, member=canonicalize("ilp(budget=3s)")
        ).key()
        assert key_a != key_b

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="microsecond"):
            parse("ilp(budget=0s)")

    def test_generous_budgets_never_render_scientific(self):
        # "%g" would emit '1e+06s', which the grammar cannot re-parse
        spec = canonicalize("ilp(budget=1000000s,warm=objective)")
        assert spec == "baseline|ilp(budget=1000000s,warm=objective)"
        assert canonicalize(spec) == spec
        precise = canonicalize("refine(budget=500)|ilp(budget=123456.789s)")
        assert "budget=123456.789s" in precise
        assert canonicalize(precise) == precise

    def test_plain_integer_budget_still_means_proposals_for_refine(self):
        spec = canonicalize("refine(budget=500)")
        assert spec == "baseline|refine(budget=500)"

    def test_budget_on_stage_without_that_option_needs_the_suffix(self):
        with pytest.raises(ConfigurationError, match="budget=2s"):
            parse("ilp(budget=2)")

    def test_generous_budget_preserves_results(self):
        dag = _dag()
        plain = run_member(dag, CFG, "baseline|ilp(warm=objective)")
        budgeted = run_member(dag, CFG, "baseline|ilp(budget=60s,warm=objective)")
        # a budget that does not bind changes nothing but the spec token
        assert budgeted.ilp_cost == plain.ilp_cost
        assert budgeted.solver_status == plain.solver_status

    def test_budget_telemetry_recorded(self):
        dag = _dag()
        result = Pipeline("baseline|ilp(budget=60s,warm=objective)").run(dag, CFG)
        stage = result.stages[-1]
        assert stage.telemetry["budget"] == 60.0
        assert stage.telemetry["budget_expired"] is False

    def test_cache_hit_replays_budgeted_outcome(self, tmp_path):
        from repro.exec import Session, plan_pipelines

        dag = _dag()
        spec = "baseline|ilp(budget=60s,warm=objective)"
        plan = plan_pipelines([spec], [dag], CFG)
        first = Session(cache_dir=tmp_path).run(plan)
        warm_session = Session(cache_dir=tmp_path)
        second = warm_session.run(plan_pipelines([spec], [dag], CFG))
        assert warm_session.stats.cache_hits == 1
        assert second[0].fingerprint() == first[0].fingerprint()

    def test_with_default_budget_respects_explicit_budgets(self):
        spec = with_default_budget("baseline|ilp(budget=9s,warm=objective)", 2.0)
        assert spec == "baseline(budget=2s)|ilp(budget=9s,warm=objective)"
        with pytest.raises(ConfigurationError, match="positive"):
            with_default_budget("baseline", 0.0)


class TestSweepExpansion:
    def test_single_sweep_expands(self):
        assert expand_spec("dac(max_part_size={2,4,8})") == [
            "dac(max_part_size=2)",
            "dac(max_part_size=4)",
            "dac(max_part_size=8)",
        ]

    def test_cartesian_product(self):
        specs = expand_spec("refine(seed={1,2},strategy={hill,anneal})")
        assert len(specs) == 4
        assert "baseline|refine(seed=1,strategy=anneal)" in specs

    def test_sweep_free_spec_canonicalizes(self):
        assert expand_spec("ilp") == ["baseline|ilp(warm=objective)"]

    def test_duplicate_expansions_deduplicated(self):
        assert expand_spec("refine(seed={1,1})") == ["baseline|refine(seed=1)"]

    def test_malformed_sweeps_rejected(self):
        with pytest.raises(ConfigurationError, match="unbalanced"):
            expand_spec("dac(max_part_size={2,4)")
        with pytest.raises(ConfigurationError, match="empty sweep"):
            expand_spec("dac(max_part_size={})")

    def test_parse_rejects_unexpanded_sweeps(self):
        with pytest.raises(ConfigurationError, match="expand"):
            parse("dac(max_part_size={2,4})")


class TestSpliceOption:
    def test_without_parens(self):
        assert splice_option("refine", "budget", "2s") == "refine(budget=2s)"

    def test_options_stay_sorted(self):
        assert splice_option(
            "ilp(warm=objective)", "budget", "2s"
        ) == "ilp(budget=2s,warm=objective)"

    def test_args_keep_their_order(self):
        assert splice_option(
            "race(ilp@bnb,ilp@scipy)", "budget", "1s"
        ) == "race(ilp@bnb,ilp@scipy,budget=1s)"
