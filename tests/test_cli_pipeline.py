"""CLI tests for the pipeline sub-command and the portfolio spec plumbing."""

import pytest

from repro import cli


class TestPipelineList:
    def test_lists_stages_and_member_specs(self, capsys):
        assert cli.main(["pipeline", "list"]) == 0
        out = capsys.readouterr().out
        for stage in ("baseline", "bspg", "ilp", "refine", "dac"):
            assert stage in out
        assert "ilp(warm=objective)" in out     # the legacy 'ilp' member spec
        assert "spec grammar" in out


class TestPipelineRun:
    def test_runs_a_three_stage_spec(self, capsys):
        exit_code = cli.main([
            "pipeline", "run", "--spec", "bspg+clairvoyant|refine|ilp",
            "--generator", "spmv", "--size", "3", "--processors", "2",
            "--time-limit", "1",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "canonical spec: bspg+clairvoyant|refine|ilp" in out
        for token in ("bspg+clairvoyant", "refine", "ilp", "final cost:"):
            assert token in out
        assert "solve(s)" in out  # per-stage telemetry column

    def test_accepts_legacy_member_names(self, capsys):
        exit_code = cli.main([
            "pipeline", "run", "--spec", "cilk+lru",
            "--generator", "spmv", "--size", "3", "--time-limit", "1",
        ])
        assert exit_code == 0
        assert "canonical spec: cilk+lru" in capsys.readouterr().out

    def test_inapplicable_spec_exits_nonzero(self, capsys):
        exit_code = cli.main([
            "pipeline", "run", "--spec", "dfs+clairvoyant",
            "--generator", "spmv", "--size", "3", "--processors", "2",
            "--time-limit", "1",
        ])
        assert exit_code == 1
        assert "inapplicable" in capsys.readouterr().out

    def test_unknown_spec_raises(self):
        with pytest.raises(Exception):
            cli.main([
                "pipeline", "run", "--spec", "quantum",
                "--generator", "spmv", "--size", "3",
            ])


class TestPortfolioSpecPlumbing:
    def test_pipeline_flag_adds_spec_members(self, capsys):
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant",
            "--pipeline", "bspg+clairvoyant|refine",
            "--limit", "1", "--time-limit", "0.5",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bspg+clairvoyant|refine" in out
        assert "winner" in out

    def test_list_members_prints_spec_table(self, capsys):
        assert cli.main(["portfolio", "--list-members"]) == 0
        out = capsys.readouterr().out
        assert "baseline|ilp(warm=objective)" in out
        assert "dac|refine" in out

    def test_unknown_member_warns_and_is_skipped(self, capsys):
        with pytest.warns(UserWarning, match="ignoring unknown portfolio member"):
            exit_code = cli.main([
                "portfolio", "--members", "bspg+clairvoyant,quantum",
                "--limit", "1", "--time-limit", "0.5",
            ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "quantum" not in out.split("wins per member")[1]

    def test_all_unknown_members_still_fail(self):
        with pytest.warns(UserWarning):
            with pytest.raises(Exception, match="no valid portfolio members"):
                cli.main([
                    "portfolio", "--members", "quantum,warp-drive",
                    "--limit", "1",
                ])

    def test_refine_flag_extends_specs_with_a_refine_stage(self, capsys):
        exit_code = cli.main([
            "portfolio", "--pipeline", "baseline",
            "--members", "cilk+lru", "--refine",
            "--limit", "1", "--time-limit", "0.5",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        # the legacy name got "+refine", the raw spec an explicit "|refine"
        assert "cilk+lru+refine" in out
        assert "baseline|refine" in out

    def test_refine_flag_skips_specs_already_ending_in_refine(self, capsys):
        exit_code = cli.main([
            "portfolio", "--pipeline", "bspg+clairvoyant|refine",
            "--refine", "--limit", "1", "--time-limit", "0.5",
        ])
        assert exit_code == 0
        assert "refine|refine" not in capsys.readouterr().out

    def test_shared_prefix_reuse_reported_in_footer(self, capsys):
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant,bspg+clairvoyant+refine",
            "--limit", "2", "--time-limit", "0.5",
        ])
        assert exit_code == 0
        assert "shared-prefix reuse" in capsys.readouterr().out
