"""Tests for the two-stage BSP -> MBSP conversion."""

import pytest

from repro.bsp.greedy import greedy_bsp_schedule
from repro.bsp.dfs import dfs_bsp_schedule
from repro.bsp.schedule import BspSchedule
from repro.cache.conversion import TwoStageConverter, two_stage_schedule
from repro.cache.policies import ClairvoyantPolicy, FifoPolicy, LruPolicy
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, iterated_spmv, random_layered_dag, spmv
from repro.exceptions import InfeasibleInstanceError, ScheduleError
from repro.model.cost import synchronous_cost
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule


DAGS = [
    ("spmv", lambda: spmv(5, seed=3)),
    ("exp", lambda: iterated_spmv(4, 2, seed=1)),
    ("layered", lambda: random_layered_dag(4, 4, seed=7)),
    ("chain", lambda: chain_dag(10)),
]
POLICIES = [ClairvoyantPolicy, LruPolicy, FifoPolicy]


@pytest.mark.parametrize("name,builder", DAGS)
@pytest.mark.parametrize("policy_cls", POLICIES)
@pytest.mark.parametrize("procs,factor", [(1, 3.0), (2, 3.0), (4, 3.0), (2, 1.0)])
def test_conversion_produces_valid_schedules(name, builder, policy_cls, procs, factor):
    """The central integration test: every combination yields a valid schedule."""
    dag = builder()
    assign_random_memory_weights(dag, seed=13)
    instance = make_instance(dag, num_processors=procs, cache_factor=factor, g=1, L=10)
    bsp = greedy_bsp_schedule(dag, procs)
    schedule = two_stage_schedule(bsp, instance, policy_cls())
    report = validate_schedule(schedule)
    # the baseline never recomputes and computes every node exactly once
    computable = sum(1 for v in dag.nodes if not dag.is_source(v))
    assert report.num_computes == computable
    assert report.recomputed_nodes == 0


class TestConversionBasics:
    def test_minimal_cache_still_feasible(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=2, cache_factor=1.0, g=1, L=10)
        bsp = greedy_bsp_schedule(small_spmv, 2)
        schedule = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
        validate_schedule(schedule)

    def test_infeasible_cache_rejected(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=2, cache_factor=0.4, g=1, L=10)
        bsp = greedy_bsp_schedule(small_spmv, 2)
        with pytest.raises(InfeasibleInstanceError):
            two_stage_schedule(bsp, instance, ClairvoyantPolicy())

    def test_processor_count_mismatch_rejected(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=4, cache_factor=3.0)
        bsp = greedy_bsp_schedule(small_spmv, 2)
        with pytest.raises(ScheduleError):
            two_stage_schedule(bsp, instance)

    def test_single_processor_dfs_pipeline(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=1, cache_factor=3.0, g=1, L=10)
        schedule = two_stage_schedule(dfs_bsp_schedule(small_spmv), instance)
        validate_schedule(schedule)

    def test_default_policy_is_clairvoyant(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=2, cache_factor=3.0)
        bsp = greedy_bsp_schedule(small_spmv, 2)
        converter = TwoStageConverter()
        schedule = converter.convert(bsp, instance)
        validate_schedule(schedule)


class TestCachePressureBehaviour:
    def test_larger_cache_never_more_io(self):
        """With the clairvoyant policy, more cache means at most as much I/O."""
        dag = iterated_spmv(4, 3, seed=5)
        assign_random_memory_weights(dag, seed=5)
        bsp = greedy_bsp_schedule(dag, 2)
        volumes = []
        for factor in (1.0, 3.0, 10.0):
            instance = make_instance(dag, num_processors=2, cache_factor=factor, g=1, L=10)
            schedule = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
            validate_schedule(schedule)
            volumes.append(schedule.total_io_volume())
        assert volumes[0] >= volumes[1] >= volumes[2]

    def test_clairvoyant_not_worse_than_lru_on_average(self):
        """Clairvoyant is the offline-optimal eviction rule for unit weights."""
        wins = 0
        total = 0
        for seed in range(4):
            dag = random_layered_dag(4, 4, seed=seed)
            instance = make_instance(dag, num_processors=2, cache_factor=1.5, g=1, L=0)
            bsp = greedy_bsp_schedule(dag, 2)
            clair = synchronous_cost(two_stage_schedule(bsp, instance, ClairvoyantPolicy()))
            lru = synchronous_cost(two_stage_schedule(bsp, instance, LruPolicy()))
            total += 1
            if clair <= lru + 1e-9:
                wins += 1
        assert wins >= total - 1

    def test_sink_values_are_saved(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=2, cache_factor=3.0)
        bsp = greedy_bsp_schedule(small_spmv, 2)
        schedule = two_stage_schedule(bsp, instance)
        saved = set()
        for step in schedule.supersteps:
            for ps in step.processor_steps:
                saved.update(ps.save_phase)
        assert set(small_spmv.sinks()) <= saved

    def test_required_in_slow_memory_extension(self, diamond_dag):
        instance = make_instance(diamond_dag, num_processors=1, cache_factor=3.0)
        bsp = BspSchedule(diamond_dag, 1)
        bsp.assign("b", 0, 0)
        bsp.assign("c", 0, 0)
        bsp.assign("d", 0, 0)
        schedule = two_stage_schedule(
            bsp, instance, ClairvoyantPolicy(), required_in_slow_memory={"b"}
        )
        validate_schedule(schedule)
        saved = set()
        for step in schedule.supersteps:
            for ps in step.processor_steps:
                saved.update(ps.save_phase)
        assert "b" in saved and "d" in saved
