"""Tests for the standalone single-processor cache simulator."""

import pytest

from repro.cache.policies import ClairvoyantPolicy, LruPolicy
from repro.cache.simulator import CacheSimulator, simulate_cache
from repro.dag.analysis import assign_random_memory_weights, minimum_cache_size
from repro.dag.generators import chain_dag, iterated_spmv, spmv
from repro.dag.graph import ComputationalDag
from repro.exceptions import InfeasibleInstanceError
from repro.theory.constructions import partition_reduction_dag


def topo_computables(dag):
    return [v for v in dag.topological_order() if not dag.is_source(v)]


class TestBasicSimulation:
    def test_chain_with_large_cache_loads_only_the_source(self):
        dag = chain_dag(6, mu=1.0)
        result = simulate_cache(dag, topo_computables(dag), cache_size=100.0)
        assert result.num_loads == 1            # only the source value
        assert result.load_volume == 1.0
        assert result.num_saves == 1            # the sink
        assert result.num_evictions == 0
        assert result.io_cost == pytest.approx(2.0)

    def test_peak_usage_respects_cache_size(self):
        dag = iterated_spmv(4, 2, seed=3)
        assign_random_memory_weights(dag, seed=3)
        r = 2.0 * minimum_cache_size(dag)
        result = simulate_cache(dag, topo_computables(dag), cache_size=r)
        assert result.peak_usage <= r + 1e-9

    def test_g_scales_io_cost(self):
        dag = spmv(4, seed=1)
        order = topo_computables(dag)
        r = 1.5 * minimum_cache_size(dag)
        cost1 = simulate_cache(dag, order, r, g=1.0).io_cost
        cost3 = simulate_cache(dag, order, r, g=3.0).io_cost
        assert cost3 == pytest.approx(3.0 * cost1)

    def test_infeasible_cache_rejected(self):
        dag = spmv(4, seed=1)
        with pytest.raises(InfeasibleInstanceError):
            simulate_cache(dag, topo_computables(dag), cache_size=0.5)

    def test_non_topological_order_rejected(self):
        dag = chain_dag(4)
        with pytest.raises(InfeasibleInstanceError):
            simulate_cache(dag, [3, 1, 2], cache_size=10.0)

    def test_source_in_order_rejected(self):
        dag = chain_dag(4)
        with pytest.raises(InfeasibleInstanceError):
            simulate_cache(dag, [0, 1, 2, 3], cache_size=10.0)


class TestPolicyComparison:
    def test_clairvoyant_never_loads_more_than_lru_on_spmv(self):
        dag = spmv(6, seed=5)
        assign_random_memory_weights(dag, seed=5)
        order = topo_computables(dag)
        r = 1.2 * minimum_cache_size(dag)
        clair = simulate_cache(dag, order, r, policy=ClairvoyantPolicy())
        lru = simulate_cache(dag, order, r, policy=LruPolicy())
        assert clair.load_volume <= lru.load_volume + 1e-9

    def test_more_cache_means_fewer_loads(self):
        dag = iterated_spmv(4, 3, seed=7)
        assign_random_memory_weights(dag, seed=7)
        order = topo_computables(dag)
        r0 = minimum_cache_size(dag)
        small = simulate_cache(dag, order, r0)
        large = simulate_cache(dag, order, 10 * r0)
        assert large.num_loads <= small.num_loads
        assert large.num_evictions <= small.num_evictions


class TestLemma51Reduction:
    """The memory-management problem encodes number partitioning (Lemma 5.1)."""

    def test_partitionable_weights_allow_cheap_schedule(self):
        # {2, 2, 3, 3} can be split into two halves of weight 5, so keeping one
        # half in cache while v' is processed saves half of the reloads
        dag, alpha = partition_reduction_dag([2, 2, 3, 3])
        order = ["c1", "c2", "c3"]
        result = simulate_cache(dag, order, cache_size=alpha, policy=ClairvoyantPolicy())
        # total loads: all of v_i (alpha) + v' (alpha/2) + reloading roughly one
        # half (alpha/2, up to one extra item of slack from greedy eviction)
        assert result.load_volume <= 2 * alpha + max([2, 2, 3, 3]) + 1e-9

    def test_reload_cost_bounded_below(self):
        dag, alpha = partition_reduction_dag([4, 3, 2, 1])
        order = ["c1", "c2", "c3"]
        result = simulate_cache(dag, order, cache_size=alpha, policy=ClairvoyantPolicy())
        # the first computation alone needs to load all of v_1..v_m
        assert result.load_volume >= alpha
