"""Unit tests for the cache eviction policies."""

import pytest

from repro.cache.policies import (
    CacheEntryInfo,
    ClairvoyantPolicy,
    FifoPolicy,
    LargestFirstPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)

INF = float("inf")


def entry(node, mu=1.0, next_use=INF, last_use=0.0, insertion=0.0):
    return CacheEntryInfo(node=node, mu=mu, next_use=next_use, last_use=last_use, insertion=insertion)


class TestClairvoyant:
    def test_evicts_furthest_next_use(self):
        policy = ClairvoyantPolicy()
        candidates = [entry("a", next_use=3), entry("b", next_use=10), entry("c", next_use=5)]
        assert policy.choose_victim(candidates) == "b"

    def test_prefers_dead_values(self):
        policy = ClairvoyantPolicy()
        candidates = [entry("a", next_use=2), entry("dead", next_use=INF)]
        assert policy.choose_victim(candidates) == "dead"

    def test_tie_break_on_memory_weight(self):
        policy = ClairvoyantPolicy()
        candidates = [entry("small", mu=1, next_use=4), entry("big", mu=5, next_use=4)]
        assert policy.choose_victim(candidates) == "big"

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ClairvoyantPolicy().choose_victim([])


class TestLru:
    def test_evicts_least_recently_used(self):
        policy = LruPolicy()
        candidates = [entry("a", last_use=5), entry("b", last_use=1), entry("c", last_use=9)]
        assert policy.choose_victim(candidates) == "b"

    def test_ignores_future_information(self):
        policy = LruPolicy()
        candidates = [entry("soon", next_use=1, last_use=0), entry("later", next_use=99, last_use=5)]
        # LRU evicts 'soon' (oldest last use) even though it is needed next
        assert policy.choose_victim(candidates) == "soon"

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            LruPolicy().choose_victim([])


class TestOtherPolicies:
    def test_fifo(self):
        policy = FifoPolicy()
        candidates = [entry("a", insertion=3), entry("b", insertion=1)]
        assert policy.choose_victim(candidates) == "b"

    def test_largest_first(self):
        policy = LargestFirstPolicy()
        candidates = [entry("a", mu=2), entry("b", mu=7)]
        assert policy.choose_victim(candidates) == "b"

    def test_random_is_deterministic_with_seed(self):
        candidates = [entry(f"n{i}") for i in range(5)]
        picks1 = [RandomPolicy(seed=3).choose_victim(candidates) for _ in range(3)]
        picks2 = [RandomPolicy(seed=3).choose_victim(candidates) for _ in range(3)]
        assert picks1 == picks2

    def test_random_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomPolicy().choose_victim([])


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("clairvoyant", ClairvoyantPolicy),
            ("belady", ClairvoyantPolicy),
            ("LRU", LruPolicy),
            ("fifo", FifoPolicy),
            ("largest_first", LargestFirstPolicy),
            ("random", RandomPolicy),
        ],
    )
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("magic")
