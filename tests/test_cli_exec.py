"""CLI tests for the exec sub-command (the Session-backed execution core),
the --budget flag, and the sweep syntax in --pipeline flags."""

import pytest

from repro import cli


class TestExecRun:
    def test_streams_and_reduces_a_race_pipeline(self, capsys):
        exit_code = cli.main([
            "exec", "run",
            "--pipeline", "baseline|race(ilp@scipy,ilp@bnb)",
            "--limit", "2", "--node-limit", "5", "--time-limit", "1",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        # streaming lines, the canonical (sorted) race spec, and the table
        assert "[  1/2]" in out
        assert "race(ilp@bnb,ilp@scipy)" in out
        assert "winner" in out
        assert "session: 2 jobs: 2 executed" in out

    def test_race_winner_identical_under_both_backend_orderings(self, capsys):
        outputs = []
        for spec in ("baseline|race(ilp@scipy,ilp@bnb)",
                     "baseline|race(ilp@bnb,ilp@scipy)"):
            assert cli.main([
                "exec", "run", "--pipeline", spec,
                "--limit", "2", "--node-limit", "5", "--time-limit", "1",
            ]) == 0
            out = capsys.readouterr().out
            outputs.append([
                line for line in out.splitlines()
                if "cost=" in line or "race[" in line
            ])
        assert outputs[0] == outputs[1]

    def test_budget_threads_into_every_stage_and_the_spec(self, capsys):
        exit_code = cli.main([
            "exec", "run", "--pipeline", "bspg+clairvoyant|refine(budget=50)",
            "--limit", "1", "--time-limit", "1", "--budget", "30",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bspg+clairvoyant(budget=30s)|refine(budget=30s,budget=50)" in out
        assert "stage budget: 30s" in out

    def test_sweep_syntax_expands_to_member_families(self, capsys):
        exit_code = cli.main([
            "exec", "run", "--pipeline", "refine(seed={1,2,3})",
            "--members", "bspg+clairvoyant",
            "--limit", "1", "--time-limit", "1",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        for seed in (1, 2, 3):
            assert f"refine(seed={seed})" in out
        assert "4 pipelines" in out

    def test_cache_makes_second_run_free(self, tmp_path, capsys):
        argv = [
            "exec", "run", "--members", "bspg+clairvoyant,cilk+lru",
            "--limit", "2", "--time-limit", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert cli.main(argv) == 0
        capsys.readouterr()
        assert cli.main(argv) == 0
        out = capsys.readouterr().out
        assert "4 cache hits" in out
        assert "(cache)" in out

    def test_unknown_members_warn_and_are_skipped(self, capsys):
        with pytest.warns(UserWarning, match="quantum"):
            exit_code = cli.main([
                "exec", "run", "--members", "bspg+clairvoyant,quantum",
                "--limit", "1", "--time-limit", "1",
            ])
        assert exit_code == 0
        assert "1 pipelines" in capsys.readouterr().out

    def test_malformed_sweep_warns_and_is_skipped(self, capsys):
        with pytest.warns(UserWarning, match="malformed"):
            exit_code = cli.main([
                "exec", "run", "--pipeline", "dac(max_part_size={2,4",
                "--members", "bspg+clairvoyant",
                "--limit", "1", "--time-limit", "1",
            ])
        assert exit_code == 0

    def test_all_requested_specs_malformed_errors_instead_of_defaulting(self):
        # an explicitly requested (but entirely malformed) spec list must
        # not silently fall back to the default portfolio
        from repro.exceptions import ConfigurationError

        with pytest.warns(UserWarning, match="malformed"):
            with pytest.raises(ConfigurationError, match="no valid pipeline"):
                cli.main([
                    "exec", "run", "--pipeline", "dac(max_part_size={})",
                    "--limit", "1", "--time-limit", "1",
                ])


class TestExecSharded:
    ARGS = [
        "--members", "bspg+clairvoyant,cilk+lru",
        "--limit", "2", "--time-limit", "1",
    ]

    def test_spawn_shards_merges_byte_identically(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        single = tmp_path / "single.jsonl"
        merged = tmp_path / "merged.jsonl"
        assert cli.main(["exec", "run", *self.ARGS,
                         "--cache-dir", cache, "--results", str(single)]) == 0
        capsys.readouterr()
        assert cli.main(["exec", "run", *self.ARGS,
                         "--cache-dir", cache, "--results", str(merged),
                         "--spawn-shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 shard process(es)" in out
        assert "(shard 0)" in out and "(shard 1)" in out
        assert "winner" in out  # the portfolio reduction still prints
        assert merged.read_bytes() == single.read_bytes()

    def test_manual_shards_plus_merge_match_single_process(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        single = tmp_path / "single.jsonl"
        manual = tmp_path / "manual.jsonl"
        assert cli.main(["exec", "run", *self.ARGS,
                         "--cache-dir", cache, "--results", str(single)]) == 0
        for shard_id in ("0", "1"):
            assert cli.main(["exec", "run", *self.ARGS,
                             "--cache-dir", cache, "--results", str(manual),
                             "--shards", "2", "--shard-id", shard_id]) == 0
        out = capsys.readouterr().out
        assert "shard 0 of 2" in out and "shard 1 of 2" in out
        assert "repro exec merge" in out
        assert (tmp_path / "manual.jsonl.shard0of2").is_file()
        assert cli.main(["exec", "merge", *self.ARGS,
                         "--results", str(manual), "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard file(s)" in out
        assert "winner" in out
        assert manual.read_bytes() == single.read_bytes()

    def test_shard_flag_validation(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--shard-id requires"):
            cli.main(["exec", "run", *self.ARGS, "--shard-id", "0"])
        with pytest.raises(ConfigurationError, match="--shards needs --shard-id"):
            cli.main(["exec", "run", *self.ARGS, "--shards", "2"])
        with pytest.raises(ConfigurationError, match="requires --results"):
            cli.main(["exec", "run", *self.ARGS,
                      "--shards", "2", "--shard-id", "0"])
        with pytest.raises(ConfigurationError, match="excludes the"):
            cli.main(["exec", "run", *self.ARGS, "--spawn-shards", "2",
                      "--shards", "2", "--shard-id", "0",
                      "--results", str(tmp_path / "r.jsonl")])
        with pytest.raises(ConfigurationError, match="--results"):
            cli.main(["exec", "merge", *self.ARGS, "--shards", "2"])


class TestPortfolioSweeps:
    def test_pipeline_flag_expands_sweeps(self, capsys):
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant",
            "--pipeline", "refine(seed={1,2})",
            "--limit", "1", "--time-limit", "1",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "refine(seed=1)" in out
        assert "refine(seed=2)" in out


class TestPipelineRunSession:
    def test_workers_and_budget_flags(self, capsys):
        exit_code = cli.main([
            "pipeline", "run", "--spec", "baseline|race(ilp@bnb,ilp@scipy)",
            "--generator", "spmv", "--size", "3", "--processors", "2",
            "--time-limit", "1", "--workers", "2", "--budget", "30",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "canonical spec: baseline(budget=30s)|race(ilp@bnb,ilp@scipy,budget=30s)" in out
        assert "race[" in out

    def test_list_documents_race_budget_and_sweeps(self, capsys):
        assert cli.main(["pipeline", "list"]) == 0
        out = capsys.readouterr().out
        assert "race(a,b,...)" in out
        assert "budget=<s>s" in out
        assert "key={a,b,c}" in out
        assert "baseline|race(ilp@bnb,ilp@scipy)" in out
