"""Unit tests for DAG analysis helpers."""

import pytest

from repro.dag.analysis import (
    assign_random_memory_weights,
    critical_path_length,
    dag_statistics,
    edge_cut,
    io_lower_bound,
    longest_chain,
    minimum_cache_size,
    node_levels,
    weighted_edge_cut,
    work_lower_bound,
)
from repro.dag.generators import chain_dag, fork_join_dag, random_layered_dag, spmv
from repro.dag.graph import ComputationalDag


class TestMinimumCacheSize:
    def test_diamond(self, diamond_dag):
        # node d needs b (1) + c (2) + its own output (1) = 4
        assert minimum_cache_size(diamond_dag) == 4

    def test_chain_uniform(self):
        dag = chain_dag(5, mu=2.0)
        # each node needs its parent (2) plus itself (2)
        assert minimum_cache_size(dag) == 4.0

    def test_single_source_node(self):
        dag = ComputationalDag()
        dag.add_node(0, mu=7)
        assert minimum_cache_size(dag) == 7

    def test_monotone_in_fanin(self):
        small = fork_join_dag(width=2)
        large = fork_join_dag(width=5)
        assert minimum_cache_size(large) >= minimum_cache_size(small)


class TestLevelsAndPaths:
    def test_node_levels_diamond(self, diamond_dag):
        levels = node_levels(diamond_dag)
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_critical_path_diamond(self, diamond_dag):
        # longest weighted path skips the source weight: c (3) + d (1)
        assert critical_path_length(diamond_dag) == 4

    def test_critical_path_chain(self):
        dag = chain_dag(6, omega=2.0)
        # 5 computed nodes (the source is loaded, not computed)
        assert critical_path_length(dag) == 10.0

    def test_longest_chain_is_a_path(self, medium_dag):
        chain = longest_chain(medium_dag)
        for u, v in zip(chain, chain[1:]):
            assert v in medium_dag.children(u)

    def test_work_lower_bound(self, diamond_dag):
        assert work_lower_bound(diamond_dag, 1) == diamond_dag.total_work()
        assert work_lower_bound(diamond_dag, 2) >= critical_path_length(diamond_dag)
        with pytest.raises(ValueError):
            work_lower_bound(diamond_dag, 0)


class TestBoundsAndCuts:
    def test_io_lower_bound(self, diamond_dag):
        # load the source (mu 1) and save the sink (mu 1), g = 2
        assert io_lower_bound(diamond_dag, g=2.0) == 4.0

    def test_edge_cut_counts(self, diamond_dag):
        parts = {"a": 0, "b": 0, "c": 1, "d": 1}
        assert edge_cut(diamond_dag, parts) == 2  # a->c and b->d
        assert weighted_edge_cut(diamond_dag, parts) == diamond_dag.mu("a") + diamond_dag.mu("b")


class TestRandomMemoryWeights:
    def test_weights_in_range_and_deterministic(self, small_spmv):
        dag = spmv(5, seed=3)
        assign_random_memory_weights(dag, low=1, high=5, seed=11)
        values = [dag.mu(v) for v in dag.nodes]
        assert all(1 <= v <= 5 for v in values)
        dag2 = spmv(5, seed=3)
        assign_random_memory_weights(dag2, low=1, high=5, seed=11)
        assert [dag2.mu(v) for v in dag2.nodes] == values

    def test_different_seeds_differ(self):
        dag1 = spmv(6, seed=3)
        dag2 = spmv(6, seed=3)
        assign_random_memory_weights(dag1, seed=1)
        assign_random_memory_weights(dag2, seed=2)
        assert [dag1.mu(v) for v in dag1.nodes] != [dag2.mu(v) for v in dag2.nodes]


class TestStatistics:
    def test_dag_statistics_keys(self, medium_dag):
        stats = dag_statistics(medium_dag)
        for key in ("nodes", "edges", "sources", "sinks", "depth", "total_work", "r0"):
            assert key in stats
        assert stats["nodes"] == medium_dag.num_nodes
        assert stats["edges"] == medium_dag.num_edges
        assert stats["r0"] == minimum_cache_size(medium_dag)
