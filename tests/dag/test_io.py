"""Unit tests for DAG serialization."""

import pytest

from repro.dag import io as dag_io
from repro.dag.generators import random_layered_dag, spmv
from repro.exceptions import GraphError


class TestJsonRoundtrip:
    def test_roundtrip_preserves_structure(self, tmp_path, small_spmv):
        path = tmp_path / "dag.json"
        dag_io.save_json(small_spmv, path)
        loaded = dag_io.load_json(path)
        assert set(loaded.nodes) == set(small_spmv.nodes)
        assert set(loaded.edges()) == set(small_spmv.edges())
        for v in small_spmv.nodes:
            assert loaded.omega(v) == small_spmv.omega(v)
            assert loaded.mu(v) == small_spmv.mu(v)

    def test_dict_roundtrip(self, diamond_dag):
        data = dag_io.dag_to_dict(diamond_dag)
        back = dag_io.dag_from_dict(data)
        assert set(back.edges()) == set(diamond_dag.edges())
        assert back.name == diamond_dag.name


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path):
        dag = random_layered_dag(3, 3, seed=5)
        path = tmp_path / "dag.dag"
        dag_io.save_text(dag, path)
        loaded = dag_io.load_text(path)
        assert loaded.num_nodes == dag.num_nodes
        assert loaded.num_edges == dag.num_edges
        # node ids are remapped to 0..n-1 in insertion order, weights preserved
        for original, restored in zip(dag.nodes, loaded.nodes):
            assert loaded.omega(restored) == dag.omega(original)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        content = "% comment\n\n2 1\n0 1 2\n1 3 4\n0 1\n"
        path = tmp_path / "with_comments.dag"
        path.write_text(content)
        dag = dag_io.load_text(path)
        assert dag.num_nodes == 2
        assert dag.num_edges == 1
        assert dag.mu(1) == 4

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "bad.dag"
        path.write_text("notanumber\n")
        with pytest.raises(GraphError):
            dag_io.load_text(path)

    def test_wrong_line_count_raises(self, tmp_path):
        path = tmp_path / "bad2.dag"
        path.write_text("2 1\n0 1 1\n")
        with pytest.raises(GraphError):
            dag_io.load_text(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.dag"
        path.write_text("")
        with pytest.raises(GraphError):
            dag_io.load_text(path)


class TestDispatch:
    def test_save_load_dispatch_json(self, tmp_path, diamond_dag):
        path = tmp_path / "d.json"
        dag_io.save(diamond_dag, path)
        assert dag_io.load(path).num_nodes == 4

    def test_save_load_dispatch_text(self, tmp_path):
        dag = spmv(3, seed=0)
        path = tmp_path / "d.dag"
        dag_io.save(dag, path)
        assert dag_io.load(path).num_edges == dag.num_edges
