"""Unit tests for the computational DAG data structure."""

import pytest

from repro.dag.graph import ComputationalDag, NodeData
from repro.exceptions import CycleError, GraphError


class TestNodeData:
    def test_defaults(self):
        data = NodeData()
        assert data.omega == 1.0
        assert data.mu == 1.0

    def test_negative_compute_weight_rejected(self):
        with pytest.raises(GraphError):
            NodeData(omega=-1.0)

    def test_negative_memory_weight_rejected(self):
        with pytest.raises(GraphError):
            NodeData(mu=-0.5)


class TestConstruction:
    def test_add_node_and_weights(self):
        dag = ComputationalDag()
        dag.add_node("x", omega=3.5, mu=2.0)
        assert dag.omega("x") == 3.5
        assert dag.mu("x") == 2.0
        assert "x" in dag
        assert len(dag) == 1

    def test_re_adding_node_updates_weights(self):
        dag = ComputationalDag()
        dag.add_node(0, omega=1, mu=1)
        dag.add_node(0, omega=5, mu=2)
        assert dag.omega(0) == 5
        assert dag.num_nodes == 1

    def test_add_edge_unknown_node_raises(self):
        dag = ComputationalDag()
        dag.add_node(0)
        with pytest.raises(GraphError):
            dag.add_edge(0, 1)
        with pytest.raises(GraphError):
            dag.add_edge(1, 0)

    def test_self_loop_rejected(self):
        dag = ComputationalDag()
        dag.add_node(0)
        with pytest.raises(GraphError):
            dag.add_edge(0, 0)

    def test_duplicate_edge_ignored(self):
        dag = ComputationalDag()
        dag.add_node(0)
        dag.add_node(1)
        dag.add_edge(0, 1)
        dag.add_edge(0, 1)
        assert dag.num_edges == 1

    def test_remove_edge(self):
        dag = ComputationalDag()
        dag.add_node(0)
        dag.add_node(1)
        dag.add_edge(0, 1)
        dag.remove_edge(0, 1)
        assert dag.num_edges == 0
        assert dag.children(0) == []

    def test_set_weights(self):
        dag = ComputationalDag()
        dag.add_node("v", omega=1, mu=1)
        dag.set_omega("v", 9)
        dag.set_mu("v", 4)
        assert dag.omega("v") == 9
        assert dag.mu("v") == 4

    def test_unknown_node_queries_raise(self):
        dag = ComputationalDag()
        with pytest.raises(GraphError):
            dag.parents("missing")
        with pytest.raises(GraphError):
            dag.omega("missing")


class TestStructure:
    def test_sources_and_sinks(self, diamond_dag):
        assert diamond_dag.sources() == ["a"]
        assert diamond_dag.sinks() == ["d"]
        assert diamond_dag.is_source("a")
        assert diamond_dag.is_sink("d")
        assert not diamond_dag.is_sink("a")

    def test_parents_children(self, diamond_dag):
        assert set(diamond_dag.parents("d")) == {"b", "c"}
        assert set(diamond_dag.children("a")) == {"b", "c"}
        assert diamond_dag.in_degree("d") == 2
        assert diamond_dag.out_degree("a") == 2

    def test_topological_order_respects_edges(self, diamond_dag):
        order = diamond_dag.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for u, v in diamond_dag.edges():
            assert position[u] < position[v]

    def test_topological_order_cached_and_copied(self, diamond_dag):
        order1 = diamond_dag.topological_order()
        order1.append("junk")
        order2 = diamond_dag.topological_order()
        assert "junk" not in order2

    def test_cycle_detection(self):
        dag = ComputationalDag()
        for i in range(3):
            dag.add_node(i)
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        dag.add_edge(2, 0)
        assert not dag.is_acyclic()
        with pytest.raises(CycleError):
            dag.topological_order()

    def test_total_work_excludes_sources(self, diamond_dag):
        # a is a source (omega 1) and therefore not computed
        assert diamond_dag.total_work() == 2 + 3 + 1

    def test_total_memory(self, diamond_dag):
        assert diamond_dag.total_memory() == 1 + 1 + 2 + 1

    def test_ancestors_descendants(self, diamond_dag):
        assert diamond_dag.ancestors("d") == {"a", "b", "c"}
        assert diamond_dag.descendants("a") == {"b", "c", "d"}
        assert diamond_dag.ancestors("a") == set()
        assert diamond_dag.descendants("d") == set()

    def test_edges_iteration(self, diamond_dag):
        assert set(diamond_dag.edges()) == {("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")}


class TestDerivedGraphs:
    def test_induced_subgraph(self, diamond_dag):
        sub = diamond_dag.induced_subgraph(["a", "b", "d"])
        assert set(sub.nodes) == {"a", "b", "d"}
        assert set(sub.edges()) == {("a", "b"), ("b", "d")}
        assert sub.omega("b") == 2

    def test_copy_is_independent(self, diamond_dag):
        clone = diamond_dag.copy()
        clone.add_node("extra")
        assert "extra" not in diamond_dag

    def test_relabeled(self, diamond_dag):
        mapping = {"a": 0, "b": 1, "c": 2, "d": 3}
        relabeled = diamond_dag.relabeled(mapping)
        assert set(relabeled.nodes) == {0, 1, 2, 3}
        assert (0, 1) in set(relabeled.edges())
        assert relabeled.mu(2) == diamond_dag.mu("c")

    def test_networkx_roundtrip(self, diamond_dag):
        g = diamond_dag.to_networkx()
        back = ComputationalDag.from_networkx(g)
        assert set(back.nodes) == set(diamond_dag.nodes)
        assert set(back.edges()) == set(diamond_dag.edges())
        assert back.omega("c") == diamond_dag.omega("c")

    def test_from_networkx_rejects_cycles(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edges_from([(0, 1), (1, 0)])
        with pytest.raises(CycleError):
            ComputationalDag.from_networkx(g)
