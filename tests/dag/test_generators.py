"""Unit tests for the benchmark DAG generators."""

import pytest

from repro.dag.analysis import minimum_cache_size, node_levels
from repro.dag.generators import (
    bicgstab,
    chain_dag,
    conjugate_gradient,
    fork_join_dag,
    iterated_spmv,
    kmeans,
    knn_iteration,
    pregel,
    random_dag,
    random_layered_dag,
    random_tree,
    simple_pagerank,
    snni_graphchallenge,
    spmv,
)

ALL_GENERATORS = [
    ("spmv", lambda: spmv(5, seed=1)),
    ("iterated_spmv", lambda: iterated_spmv(4, 2, seed=1)),
    ("cg", lambda: conjugate_gradient(2, 1, seed=1)),
    ("knn", lambda: knn_iteration(4, 2, seed=1)),
    ("bicgstab", lambda: bicgstab(2)),
    ("kmeans", lambda: kmeans(2, 2, 2)),
    ("pregel", lambda: pregel(3, 3)),
    ("pagerank", lambda: simple_pagerank(4, 3, seed=1)),
    ("snni", lambda: snni_graphchallenge(3, 4, seed=1)),
    ("random_layered", lambda: random_layered_dag(4, 3, seed=1)),
    ("random", lambda: random_dag(20, seed=1)),
    ("tree", lambda: random_tree(15, seed=1)),
    ("chain", lambda: chain_dag(8)),
    ("fork_join", lambda: fork_join_dag(3, 2)),
]


@pytest.mark.parametrize("name,builder", ALL_GENERATORS)
class TestGeneratorInvariants:
    def test_acyclic(self, name, builder):
        dag = builder()
        assert dag.is_acyclic()

    def test_nonempty_with_positive_weights(self, name, builder):
        dag = builder()
        assert dag.num_nodes > 0
        for v in dag.nodes:
            assert dag.omega(v) >= 0
            assert dag.mu(v) >= 0

    def test_has_sources_and_sinks(self, name, builder):
        dag = builder()
        assert dag.sources()
        assert dag.sinks()

    def test_feasible_minimum_cache(self, name, builder):
        dag = builder()
        assert minimum_cache_size(dag) > 0


@pytest.mark.parametrize(
    "name,builder",
    [(n, b) for n, b in ALL_GENERATORS if n not in ("bicgstab", "kmeans", "pregel", "chain", "fork_join")],
)
def test_generators_are_deterministic(name, builder):
    dag1, dag2 = builder(), builder()
    assert set(dag1.edges()) == set(dag2.edges())
    assert [dag1.omega(v) for v in dag1.nodes] == [dag2.omega(v) for v in dag2.nodes]


class TestSpmv:
    def test_node_count_scales_with_dimension(self):
        assert spmv(8, seed=0).num_nodes > spmv(4, seed=0).num_nodes

    def test_vector_entries_are_sources(self):
        dag = spmv(5, seed=2)
        sources = dag.sources()
        assert len(sources) == 5

    def test_one_sink_per_row(self):
        dag = spmv(5, seed=2)
        assert len(dag.sinks()) == 5


class TestIteratedSpmv:
    def test_depth_grows_with_iterations(self):
        depth1 = max(node_levels(iterated_spmv(4, 1, seed=0)).values())
        depth3 = max(node_levels(iterated_spmv(4, 3, seed=0)).values())
        assert depth3 > depth1

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            iterated_spmv(4, 0)


class TestConjugateGradient:
    def test_sources_are_rhs_entries(self):
        dag = conjugate_gradient(2, 1)
        assert len(dag.sources()) == 4

    def test_size_grows_with_iterations(self):
        assert conjugate_gradient(2, 2).num_nodes > conjugate_gradient(2, 1).num_nodes

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            conjugate_gradient(0, 1)


class TestKnn:
    def test_points_are_sources(self):
        dag = knn_iteration(5, 2, k=2, seed=0)
        assert len(dag.sources()) == 5

    def test_k_clamped_to_points(self):
        dag = knn_iteration(3, 1, k=10, seed=0)
        assert dag.is_acyclic()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            knn_iteration(1, 1)


class TestCoarseGrained:
    def test_bicgstab_grows_with_iterations(self):
        assert bicgstab(4).num_nodes > bicgstab(2).num_nodes

    def test_kmeans_structure(self):
        dag = kmeans(num_blocks=3, num_clusters=2, iterations=2)
        # blocks + initial centroids are sources
        assert len(dag.sources()) == 5

    def test_pregel_heavy_vertex_compute(self):
        dag = pregel(2, 2)
        weights = {dag.omega(v) for v in dag.nodes}
        assert len(weights) > 1  # heterogeneous compute weights


class TestGraphWorkloads:
    def test_pagerank_iteration_structure(self):
        dag = simple_pagerank(num_blocks=4, iterations=2, seed=0)
        assert len(dag.sources()) == 4
        assert len(dag.sinks()) == 4

    def test_snni_layer_structure(self):
        dag = snni_graphchallenge(num_blocks=3, num_layers=3, seed=0)
        assert len(dag.sources()) == 3
        assert len(dag.sinks()) == 3


class TestRandomGenerators:
    def test_layered_sources_only_in_first_layer(self):
        dag = random_layered_dag(4, 3, seed=2)
        assert len(dag.sources()) == 3

    def test_random_tree_single_sink(self):
        dag = random_tree(20, seed=4)
        assert len(dag.sinks()) == 1

    def test_chain_shape(self):
        dag = chain_dag(5)
        assert dag.num_edges == 4
        assert len(dag.sources()) == 1
        assert len(dag.sinks()) == 1

    def test_fork_join_shape(self):
        dag = fork_join_dag(width=4, stages=2)
        assert len(dag.sinks()) == 1
        assert dag.num_nodes == 1 + 2 * (4 + 1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_layered_dag(0, 3)
        with pytest.raises(ValueError):
            random_dag(0)
        with pytest.raises(ValueError):
            chain_dag(0)
        with pytest.raises(ValueError):
            fork_join_dag(0)
