"""Arrival-process tests: seeded traces are pure functions of the config."""

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import ArrivalConfig, generate_requests, request_pool


class TestGenerateRequests:
    def test_same_seed_same_trace(self):
        config = ArrivalConfig(seed=11, requests=50, rate=3.0)
        assert generate_requests(config, 5) == generate_requests(config, 5)

    def test_different_seeds_differ(self):
        a = generate_requests(ArrivalConfig(seed=1, requests=50), 5)
        b = generate_requests(ArrivalConfig(seed=2, requests=50), 5)
        assert a != b

    def test_trace_shape(self):
        config = ArrivalConfig(
            seed=4, requests=200, rate=5.0, deadline_min=0.5, deadline_max=2.0
        )
        trace = generate_requests(config, 3)
        assert len(trace) == 200
        assert [r.index for r in trace] == list(range(200))
        # arrivals are strictly increasing (exponential gaps are positive)
        assert all(b.arrival > a.arrival for a, b in zip(trace, trace[1:]))
        assert all(0.5 <= r.deadline <= 2.0 for r in trace)
        assert all(0 <= r.template < 3 for r in trace)
        # with 200 draws over 3 templates, every template appears
        assert {r.template for r in trace} == {0, 1, 2}

    def test_mean_rate_is_roughly_honoured(self):
        config = ArrivalConfig(seed=9, requests=2000, rate=4.0)
        trace = generate_requests(config, 2)
        mean_gap = trace[-1].arrival / len(trace)
        assert mean_gap == pytest.approx(1 / 4.0, rel=0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests": 0},
            {"rate": 0.0},
            {"rate": -1.0},
            {"deadline_min": 0.0},
            {"deadline_min": 3.0, "deadline_max": 2.0},
            {"dataset": "huge"},
            {"limit": 0},
        ],
    )
    def test_invalid_configs_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            generate_requests(ArrivalConfig(**kwargs), 4)

    def test_empty_pool_is_rejected(self):
        with pytest.raises(ConfigurationError, match="pool is empty"):
            generate_requests(ArrivalConfig(), 0)


class TestRequestPool:
    def test_pool_is_a_dataset_prefix(self):
        pool = request_pool(ArrivalConfig(dataset="tiny", limit=4))
        assert len(pool) == 4
        # seeded dataset builds: the same config yields the same DAGs
        again = request_pool(ArrivalConfig(dataset="tiny", limit=4))
        assert [d.name for d in pool] == [d.name for d in again]
