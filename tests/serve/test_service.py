"""Service-loop tests, including the serve golden gates:

* every schedule the service emits is valid and costs no more than the
  ``baseline`` member's cost on the same instance;
* a fixed-seed run replays bit-identically (same spec choices, same
  winners, same SLO summary) across ``workers=1`` and ``workers=4``.
"""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.exec import Session
from repro.model import validate_schedule
from repro.portfolio.members import run_member
from repro.serve import (
    ArrivalConfig,
    PolicyConfig,
    ScheduleService,
    ServiceConfig,
    spec_weight,
)


def _member_cost(result):
    return result.extra_costs.get("member_cost", result.ilp_cost)


def _service_config(seed=3, requests=40, rate=8.0, limit=3, **kwargs):
    return ServiceConfig(
        arrivals=ArrivalConfig(seed=seed, requests=requests, rate=rate, limit=limit),
        **kwargs,
    )


class TestSpecWeight:
    def test_tiers_are_ordered_by_cost(self):
        assert spec_weight("baseline") == 1.0
        assert (
            spec_weight("baseline")
            < spec_weight("bspg+clairvoyant|refine")
            < spec_weight("baseline|ilp(warm=objective)")
        )

    def test_race_branches_each_count(self):
        assert spec_weight("baseline|race(ilp@bnb,ilp@scipy)") > spec_weight(
            "baseline|ilp(warm=objective)"
        )


class TestWorkerEquivalence:
    def test_fixed_seed_replays_bit_identically(self, tmp_path):
        config = _service_config()
        reports = {}
        for workers in (1, 4):
            session = Session(
                workers=workers, cache_dir=tmp_path / f"cache-w{workers}"
            )
            reports[workers] = ScheduleService(config, session=session).run()
        one, four = reports[1], reports[4]
        assert one.trace_digest() == four.trace_digest()
        assert one.slo_summary() == four.slo_summary()
        # the full per-request telemetry (costs included) matches
        assert [r.to_dict() for r in one.records] == [
            r.to_dict() for r in four.records
        ]
        # same winners: every distinct job's deterministic result matches
        assert one.results.keys() == four.results.keys()
        for key in one.results:
            assert one.results[key].fingerprint() == four.results[key].fingerprint()


class TestGoldenSchedules:
    def test_costs_never_exceed_baseline_and_schedules_validate(self):
        config = _service_config(requests=30)
        report = ScheduleService(config).run()
        session = Session()
        assert report.results  # the trace produced real work
        for key, result in report.results.items():
            job = report.jobs[key]
            spec = str(dict(job.params)["member"])
            dag = job.dag()
            cost = _member_cost(result)
            baseline = _member_cost(run_member(dag, config.experiment, "baseline"))
            assert cost <= baseline + 1e-9, (job.instance_name, spec)
            # the reported cost is a real, valid schedule's cost
            pipeline_result = session.run_pipeline(spec, dag, config.experiment)
            assert pipeline_result.schedule is not None
            validate_schedule(pipeline_result.schedule, require_all_computed=False)
            assert _member_cost(pipeline_result.to_instance_result()) == \
                pytest.approx(cost)


class TestCacheBehaviour:
    def test_repeats_are_cache_hot(self, tmp_path):
        config = _service_config(requests=200, limit=2)
        session = Session(cache_dir=tmp_path / "cache")
        report = ScheduleService(config, session=session).run()
        summary = report.slo_summary()
        assert summary["distinct_jobs"] <= 6  # 2 templates x 3 policy tiers
        assert summary["cache_hit_rate"] >= 0.9
        # the first occurrence of every key is a miss on a cold cache
        first_seen = set()
        for record in report.records:
            if record.key not in first_seen:
                assert not record.cache_hit
                first_seen.add(record.key)
            else:
                assert record.cache_hit
        assert session.stats.executed == summary["distinct_jobs"]

    def test_warm_disk_cache_replays_identically_without_solving(self, tmp_path):
        config = _service_config(requests=60)
        first = ScheduleService(
            config, session=Session(cache_dir=tmp_path / "cache")
        ).run()
        warm_session = Session(cache_dir=tmp_path / "cache")
        second = ScheduleService(config, session=warm_session).run()
        # the virtual timeline never consults the disk cache: a warm rerun
        # is byte-identical telemetry, it just skips every solver call
        assert second.slo_summary() == first.slo_summary()
        assert second.trace_digest() == first.trace_digest()
        assert warm_session.stats.executed == 0
        assert warm_session.stats.cache_hits == len(first.results)
        for key, result in first.results.items():
            assert second.results[key].fingerprint() == result.fingerprint()


class TestAdaptivity:
    def test_idle_service_runs_rich_pipelines(self):
        config = ServiceConfig(
            arrivals=ArrivalConfig(
                seed=5, requests=50, rate=0.2, limit=3, deadline_min=2.0
            )
        )
        report = ScheduleService(config).run()
        specs = report.slo_summary()["spec_requests"]
        policy = ScheduleService(config).policy
        assert policy.cheap not in specs
        assert specs.get(policy.rich, 0) > 0

    def test_overloaded_service_falls_back_to_cheap_pipelines(self):
        config = _service_config(seed=5, requests=200, rate=50.0)
        report = ScheduleService(config).run()
        specs = report.slo_summary()["spec_requests"]
        policy = ScheduleService(config).policy
        assert specs.get(policy.cheap, 0) / len(report.records) > 0.5


class TestTelemetry:
    def test_request_log_is_replayable_jsonl(self, tmp_path):
        config = _service_config(requests=25)
        report = ScheduleService(config).run()
        path = tmp_path / "requests.jsonl"
        report.write_requests_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 25
        rows = [json.loads(line) for line in lines]
        assert [row["index"] for row in rows] == list(range(25))
        for row in rows:
            assert row["arrival"] <= row["start"] <= row["finish"]
            assert row["latency"] >= 0
            assert row["cost"] > 0

    def test_distinct_jobs_stream_to_the_plan_ordered_log(self, tmp_path):
        from repro.experiments.reporting import iter_jsonl_records

        config = _service_config(requests=30)
        session = Session(
            cache_dir=tmp_path / "cache", results_path=tmp_path / "results.jsonl"
        )
        report = ScheduleService(config, session=session).run()
        logged = [
            r["key"] for r in iter_jsonl_records(tmp_path / "results.jsonl")
        ]
        # one record per distinct job, in first-appearance (plan) order
        assert logged == list(report.jobs.keys())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"servers": 0},
            {"cache_hit_time": 0.0},
            {"service_time_scale": -1.0},
        ],
    )
    def test_invalid_service_configs_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScheduleService(_service_config(**kwargs))

    def test_policy_config_is_validated_through_the_service(self):
        config = _service_config(policy=PolicyConfig(pressure_depth=0))
        with pytest.raises(ConfigurationError):
            ScheduleService(config)
