"""LearnedPolicy tests: the mined history may promote a tier, never break
the determinism or the pressure guarantees of the serve loop."""

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentConfig
from repro.learn import LearnedHistory, instance_features
from repro.serve import (
    AdaptivePolicy,
    ArrivalConfig,
    LearnedPolicy,
    PolicyConfig,
    ScheduleService,
    ServiceConfig,
)


POLICY_CONFIG = PolicyConfig(pressure_depth=4, tight_slack=1.0, idle_depth=0)
LOAD_GRID = [(depth, slack) for depth in range(6) for slack in (0.5, 1.5, 4.0)]


def make_features(seed=1):
    dag = spmv(4, seed=seed)
    assign_random_memory_weights(dag, seed=seed)
    config = ExperimentConfig(name="learned-policy", num_processors=4)
    return dag, instance_features(dag, config)


def history_preferring(spec_costs, dag, features):
    history = LearnedHistory(processors=4)
    for spec, cost in spec_costs.items():
        history.observe(dag.name, features, dag.num_nodes, spec, cost, 0.0)
    return history


class TestChooseFor:
    def test_empty_history_reproduces_adaptive_policy(self):
        _, features = make_features()
        base = AdaptivePolicy(POLICY_CONFIG)
        learned = LearnedPolicy(LearnedHistory(), config=POLICY_CONFIG)
        for depth, slack in LOAD_GRID:
            assert (
                learned.choose_for(features, depth, slack)
                == base.choose(depth, slack)
            )

    def test_pressure_beats_any_learned_preference(self):
        dag, features = make_features()
        learned = LearnedPolicy(
            history_preferring(
                {"bspg+clairvoyant|refine": 1.0, "baseline": 99.0},
                dag, features,
            ),
            config=POLICY_CONFIG,
        )
        assert learned.choose_for(features, 4, 5.0) == learned.cheap
        assert learned.choose_for(features, 0, 0.5) == learned.cheap

    def test_history_promotes_rich_in_steady_zone(self):
        dag, features = make_features()
        learned = LearnedPolicy(
            history_preferring(
                {"bspg+clairvoyant|refine": 5.0, "bspg+clairvoyant": 10.0},
                dag, features,
            ),
            config=POLICY_CONFIG,
        )
        # depths 1..3 are the steady zone; the history says rich wins here
        for depth in (1, 2, 3):
            assert learned.choose_for(features, depth, 5.0) == learned.rich

    def test_history_demotes_rich_in_idle_zone(self):
        dag, features = make_features()
        learned = LearnedPolicy(
            history_preferring(
                {"bspg+clairvoyant": 5.0, "bspg+clairvoyant|refine": 10.0},
                dag, features,
            ),
            config=POLICY_CONFIG,
        )
        assert learned.choose_for(features, 0, 5.0) == learned.steady

    def test_choose_without_features_matches_base(self):
        learned = LearnedPolicy(LearnedHistory(), config=POLICY_CONFIG)
        base = AdaptivePolicy(POLICY_CONFIG)
        for depth, slack in LOAD_GRID:
            assert learned.choose(depth, slack) == base.choose(depth, slack)

    def test_unknown_selector_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown selector"):
            LearnedPolicy(LearnedHistory(), selector="bogus")


class TestServiceIntegration:
    def _config(self):
        return ServiceConfig(
            arrivals=ArrivalConfig(seed=3, requests=20, rate=8.0, limit=3)
        )

    def test_empty_history_service_is_bit_identical_to_base(self):
        config = self._config()
        base = ScheduleService(config).run()
        learned = ScheduleService(
            self._config(),
            policy=LearnedPolicy(LearnedHistory(), config=config.policy),
        ).run()
        assert learned.trace_digest() == base.trace_digest()
        assert learned.slo_summary() == base.slo_summary()

    def test_learned_service_replays_deterministically(self):
        history = LearnedHistory()
        digests = set()
        for _ in range(2):
            report = ScheduleService(
                self._config(),
                policy=LearnedPolicy(history, config=PolicyConfig()),
            ).run()
            digests.add(report.trace_digest())
        assert len(digests) == 1
