"""Bench + CLI tests: the JSON SLO summary is byte-identical per seed."""

import json

import pytest

from repro.cli import main
from repro.experiments.reporting import format_slo_table
from repro.serve import run_serve_bench

BENCH_ARGS = dict(seed=7, requests=500, rate=6.0, limit=2)


class TestRunServeBench:
    def test_summary_is_deterministic_and_wall_clock_free(self):
        one = run_serve_bench(**BENCH_ARGS)
        two = run_serve_bench(**BENCH_ARGS, workers=4)
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
        assert one["slo"]["requests"] == 500
        assert one["trace_digest"]
        # nothing in the summary may be wall clock: it must survive a
        # round-trip through JSON bit-exactly on any machine
        assert json.loads(json.dumps(one)) == one

    def test_different_seeds_produce_different_traces(self):
        one = run_serve_bench(**{**BENCH_ARGS, "seed": 1})
        two = run_serve_bench(**{**BENCH_ARGS, "seed": 2})
        assert one["trace_digest"] != two["trace_digest"]

    def test_cache_hot_trace_solves_few_distinct_jobs(self):
        summary = run_serve_bench(**BENCH_ARGS)
        assert summary["slo"]["distinct_jobs"] <= 6
        assert summary["slo"]["cache_hit_rate"] > 0.95


class TestServeBenchCli:
    def _run(self, tmp_path, name, *extra):
        out = tmp_path / name
        code = main([
            "serve", "bench", "--seed", "7", "--requests", "500",
            "--rate", "6", "--limit", "2", "--output", str(out), *extra,
        ])
        assert code == 0
        return out.read_bytes()

    def test_two_runs_diff_byte_for_byte_clean(self, tmp_path, capsys):
        first = self._run(tmp_path, "one.json")
        second = self._run(tmp_path, "two.json", "--workers", "4")
        assert first == second
        out = capsys.readouterr().out
        assert "trace digest:" in out
        assert "requests per pipeline spec:" in out

    def test_json_mode_prints_the_summary(self, tmp_path, capsys):
        self._run(tmp_path, "one.json", "--json")
        out = capsys.readouterr().out
        summary = json.loads(out[: out.rindex("}") + 1])
        assert summary["bench"] == "serve"
        assert summary["slo"]["requests"] == 500


class TestFormatSloTable:
    def test_renders_metrics_and_spec_breakdown(self):
        summary = run_serve_bench(**BENCH_ARGS)["slo"]
        table = format_slo_table(summary, title="serve")
        assert "latency_p99" in table
        assert "deadline_miss_rate" in table
        for spec in summary["spec_requests"]:
            assert spec in table

    def test_title_and_empty_breakdown_are_optional(self):
        table = format_slo_table({"requests": 3, "latency_p50": 0.5})
        assert "requests" in table and "serve" not in table
