"""Policy tests: spec tiers are a pure function of the load observables."""

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import AdaptivePolicy, PolicyConfig


class TestAdaptivePolicy:
    def test_default_tiers_are_canonical_specs(self):
        policy = AdaptivePolicy()
        assert policy.specs == (
            "baseline", "bspg+clairvoyant", "bspg+clairvoyant|refine"
        )

    def test_legacy_names_canonicalize_at_construction(self):
        policy = AdaptivePolicy(PolicyConfig(rich_spec="ilp"))
        assert policy.rich == "baseline|ilp(warm=objective)"

    def test_pressure_gets_the_cheap_tier(self):
        policy = AdaptivePolicy(
            PolicyConfig(pressure_depth=4, tight_slack=1.0, idle_depth=0)
        )
        assert policy.choose(queue_depth=4, slack=5.0) == policy.cheap
        assert policy.choose(queue_depth=9, slack=5.0) == policy.cheap
        # a tight deadline is pressure even on an empty queue
        assert policy.choose(queue_depth=0, slack=1.0) == policy.cheap

    def test_idleness_gets_the_rich_tier(self):
        policy = AdaptivePolicy()
        assert policy.choose(queue_depth=0, slack=5.0) == policy.rich

    def test_intermediate_load_gets_the_steady_tier(self):
        policy = AdaptivePolicy(
            PolicyConfig(pressure_depth=4, tight_slack=1.0, idle_depth=0)
        )
        for depth in (1, 2, 3):
            assert policy.choose(queue_depth=depth, slack=5.0) == policy.steady

    def test_choice_is_deterministic(self):
        policy = AdaptivePolicy()
        cases = [(d, s) for d in range(6) for s in (0.5, 1.5, 4.0)]
        first = [policy.choose(d, s) for d, s in cases]
        assert first == [policy.choose(d, s) for d, s in cases]

    def test_unknown_spec_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown portfolio member"):
            AdaptivePolicy(PolicyConfig(cheap_spec="warp-drive"))

    def test_inverted_thresholds_are_rejected(self):
        with pytest.raises(ConfigurationError, match="idle_depth < pressure_depth"):
            AdaptivePolicy(PolicyConfig(pressure_depth=1, idle_depth=2))

    def test_negative_slack_threshold_is_rejected(self):
        with pytest.raises(ConfigurationError, match="tight_slack"):
            AdaptivePolicy(PolicyConfig(tight_slack=-0.5))
