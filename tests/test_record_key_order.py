"""On-disk records must serialize with sorted keys (PR 9 satellite).

Key order is the last piece of byte-stability: every record writer pins
``sort_keys=True`` so identical payloads produce identical bytes across
processes and Python versions — sharded runs can be merged and diffed
byte-for-byte.  ``json.loads`` preserves document order, so asserting the
parsed dicts iterate in sorted order pins the on-disk order exactly.
(The REP-D07 lint rule guards new writers; these tests guard the shipped
ones behaviorally.)
"""

import json
from types import SimpleNamespace

from repro.exec import ResultLog
from repro.experiments.reporting import InstanceResult, write_jsonl


def assert_sorted_keys(doc):
    if isinstance(doc, dict):
        assert list(doc.keys()) == sorted(doc.keys()), list(doc.keys())
        for value in doc.values():
            assert_sorted_keys(value)
    elif isinstance(doc, list):
        for item in doc:
            assert_sorted_keys(item)


def make_result():
    return InstanceResult(
        instance_name="inst",
        num_nodes=4,
        baseline_cost=10.0,
        ilp_cost=5.0,
        solver_status="optimal",
        solve_time=0.25,
        extra_costs={"zeta": 1.0, "alpha": 2.0},
    )


def jsonl_docs(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestJsonlWriters:
    def test_reporting_write_jsonl(self, tmp_path):
        target = tmp_path / "results.jsonl"
        write_jsonl([make_result()], target)
        docs = jsonl_docs(target)
        assert len(docs) == 1
        assert_sorted_keys(docs[0])

    def test_result_log_records(self, tmp_path):
        target = tmp_path / "log.jsonl"
        job = SimpleNamespace(kind="pipeline", instance_name="inst")
        with ResultLog(target) as log:
            log.append("k1", job, make_result())
        docs = jsonl_docs(target)
        assert len(docs) == 1
        assert_sorted_keys(docs[0])

    def test_result_log_records_member_spec(self, tmp_path):
        # the learned-history miner keys on this field: a portfolio job's
        # canonical member spec must survive into the on-disk record
        target = tmp_path / "log.jsonl"
        job = SimpleNamespace(
            kind="portfolio",
            instance_name="inst",
            params=(("member", "bspg+clairvoyant"),),
        )
        with ResultLog(target) as log:
            log.append("k1", job, make_result())
        docs = jsonl_docs(target)
        assert docs[0]["member"] == "bspg+clairvoyant"
        assert_sorted_keys(docs[0])

    def test_serve_request_telemetry(self, tmp_path):
        from repro.serve.service import (
            ArrivalConfig,
            ScheduleService,
            ServiceConfig,
        )

        config = ServiceConfig(
            arrivals=ArrivalConfig(seed=3, requests=5, rate=8.0, limit=2)
        )
        report = ScheduleService(config).run()
        target = tmp_path / "requests.jsonl"
        report.write_requests_jsonl(target)
        docs = jsonl_docs(target)
        assert len(docs) == 5
        for doc in docs:
            assert_sorted_keys(doc)


class TestJsonDocuments:
    def test_dag_save_json(self, tmp_path):
        from repro.dag import io as dag_io
        from repro.dag.generators import spmv

        target = tmp_path / "dag.json"
        dag_io.save_json(spmv(n=4, seed=0), target)
        assert_sorted_keys(json.loads(target.read_text()))

    def test_schedule_save(self, tmp_path):
        from repro.core.two_stage import baseline_schedule
        from repro.dag.analysis import assign_random_memory_weights
        from repro.dag.generators import spmv
        from repro.model.instance import make_instance
        from repro.model.serialization import save_schedule

        dag = spmv(4, seed=1)
        assign_random_memory_weights(dag, seed=7)
        instance = make_instance(
            dag, num_processors=2, cache_factor=3.0, g=1.0, L=10.0
        )
        schedule = baseline_schedule(instance, seed=0).mbsp_schedule
        target = tmp_path / "schedule.json"
        save_schedule(schedule, target)
        assert_sorted_keys(json.loads(target.read_text()))
