"""Property tests: ``race(...)`` is deterministic under any execution shape.

The race contract (the acceptance bar of the ``repro.exec`` redesign): the
winner, the reported costs and the full ``InstanceResult`` fingerprints are
identical

* across ``workers=1`` and ``workers=4`` sessions (process fan-out),
* across sequential and thread-fanned branch execution (slot scope),
* across *shuffled branch order* in the spec (branches canonicalize
  sorted; ties break by canonical order, not spelling order),

and the JSONL result logs of serial and parallel sessions match key for
key.  Branches here are deterministic stages (seeded refine variants and
node-limited ILP solves), so any fingerprint difference is an execution
core bug, never solver noise.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import random_layered_dag, spmv
from repro.exec import Session, plan_pipelines, slot_scope
from repro.experiments.runner import ExperimentConfig
from repro.pipeline import canonicalize
from repro.portfolio import run_member

CFG = ExperimentConfig(
    name="race-prop",
    num_processors=2,
    ilp_time_limit=30.0,
    ilp_node_limit=10,
    step_cap=4,
)

#: Deterministic branch pool: seeded refinements and node-limited ILPs.
BRANCHES = (
    "refine(seed=1)",
    "refine(seed=2,strategy=anneal)",
    "refine(budget=200,seed=3)",
    "ilp@bnb",
    "ilp@scipy",
)


def _race_spec(branch_indices) -> str:
    branches = ",".join(BRANCHES[i] for i in branch_indices)
    return f"baseline|race({branches})"


@st.composite
def _race_cases(draw):
    count = draw(st.integers(min_value=2, max_value=3))
    indices = draw(
        st.lists(
            st.sampled_from(range(len(BRANCHES))),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    shuffle_seed = draw(st.integers(min_value=0, max_value=999))
    dag_seed = draw(st.integers(min_value=1, max_value=50))
    return indices, shuffle_seed, dag_seed


@settings(max_examples=12, deadline=None)
@given(_race_cases())
def test_race_fingerprints_invariant_to_branch_order_and_slots(case):
    indices, shuffle_seed, dag_seed = case
    dag = spmv(3, seed=dag_seed)
    assign_random_memory_weights(dag, seed=dag_seed)
    dag.name = f"spmv_{dag_seed}"

    spec = _race_spec(indices)
    shuffled = list(indices)
    random.Random(shuffle_seed).shuffle(shuffled)
    shuffled_spec = _race_spec(shuffled)
    # shuffling the branches does not even change the canonical spec ...
    assert canonicalize(spec) == canonicalize(shuffled_spec)

    # ... nor the outcome, sequentially or thread-fanned
    baseline = run_member(dag, CFG, spec)
    assert baseline.solver_status.startswith(("race[", "skipped:"))
    for candidate_spec in (spec, shuffled_spec):
        with slot_scope(4):
            fanned = run_member(dag, CFG, candidate_spec)
        assert fanned.fingerprint() == baseline.fingerprint()


def test_race_results_and_jsonl_identical_across_worker_counts(tmp_path):
    """workers=1 vs workers=4: same fingerprints, same JSONL keys."""
    from repro.experiments.reporting import iter_jsonl_records

    dags = []
    for seed in (1, 2):
        dag = random_layered_dag(3, 3, edge_probability=0.5, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"layered_{seed}"
        dags.append(dag)
    specs = [
        "baseline|race(ilp@bnb,ilp@scipy)",
        "baseline|race(refine(seed=1),refine(seed=2,strategy=anneal))",
    ]
    runs = {}
    for workers in (1, 4):
        path = tmp_path / f"results_w{workers}.jsonl"
        session = Session(workers=workers, results_path=path)
        results = session.run(plan_pipelines(specs, dags, CFG))
        runs[workers] = (
            [r.fingerprint() for r in results],
            [record["key"] for record in iter_jsonl_records(path)],
        )
    assert runs[1] == runs[4]
    winners = [fp["solver_status"] for fp in runs[1][0]]
    assert all(status.startswith("race[") for status in winners)
