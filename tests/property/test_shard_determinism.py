"""Property tests: sharded execution is invariant in shard and worker count.

The sharding contract (the acceptance bar of the coordinator/worker mode):
for any plan of deterministic jobs,

* the results' fingerprints are identical across shard counts {1, 2, 3}
  and worker counts {1, 4} — with no cache in play, so the invariance is
  the execution core's, not the store's;
* the merged JSONL file is *byte-identical* to the single-process results
  file when the shards share the content-hash cache directory (the
  deployment layout: shards replay the recorded results, so even the
  wall-clock telemetry fields match byte for byte).

Jobs are seeded two-stage/refine pipelines and a refine race, so any
divergence is a sharding bug, never solver noise.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exec import Session, plan_pipelines, run_sharded
from repro.experiments.runner import ExperimentConfig

CFG = ExperimentConfig(
    name="shard-prop",
    num_processors=2,
    ilp_time_limit=30.0,
    ilp_node_limit=10,
    step_cap=4,
)

#: Deterministic member pool: seeded heuristics, refinements and a race.
SPECS = (
    "bspg+clairvoyant",
    "cilk+lru",
    "bspg+clairvoyant|refine(seed=1)",
    "baseline|race(refine(seed=1),refine(seed=2,strategy=anneal))",
)


def _plan(dag_seeds, spec_indices):
    dags = []
    for seed in dag_seeds:
        dag = spmv(3, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"spmv_{seed}"
        dags.append(dag)
    return plan_pipelines([SPECS[i] for i in spec_indices], dags, CFG)


def test_shard_worker_matrix_matches_single_process_run():
    """The acceptance matrix: workers {1,4} x shards {1,2,3} -> identical
    fingerprints and byte-identical merged JSONL (shared cache)."""
    plan = _plan((1, 2), (0, 3))
    with tempfile.TemporaryDirectory() as td:
        td = Path(td)
        cache = td / "cache"
        single = td / "single.jsonl"
        reference = Session(
            workers=1, cache_dir=cache, results_path=single
        ).run(plan)
        ref_fps = [r.fingerprint() for r in reference]
        ref_bytes = single.read_bytes()
        for workers in (1, 4):
            for shards in (1, 2, 3):
                merged = td / f"merged_w{workers}_s{shards}.jsonl"
                results = run_sharded(
                    plan,
                    shards,
                    workers=workers,
                    cache_dir=cache,
                    results_path=merged,
                )
                assert [r.fingerprint() for r in results] == ref_fps, (
                    f"fingerprints diverged at workers={workers}, "
                    f"shards={shards}"
                )
                assert merged.read_bytes() == ref_bytes, (
                    f"merged JSONL diverged at workers={workers}, "
                    f"shards={shards}"
                )


@st.composite
def _shard_cases(draw):
    dag_seeds = draw(
        st.lists(
            st.integers(min_value=1, max_value=50),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    spec_indices = draw(
        st.lists(
            st.sampled_from(range(len(SPECS))),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    shards = draw(st.integers(min_value=2, max_value=3))
    workers = draw(st.sampled_from((1, 4)))
    return tuple(dag_seeds), tuple(spec_indices), shards, workers


@settings(max_examples=6, deadline=None)
@given(_shard_cases())
def test_sharded_fingerprints_invariant_without_any_cache(case):
    """Fresh (uncached) sharded runs reproduce the single-process
    fingerprints for arbitrary small plans: the execution core alone
    guarantees the invariance, the store only extends it to bytes."""
    dag_seeds, spec_indices, shards, workers = case
    plan = _plan(dag_seeds, spec_indices)
    reference = [r.fingerprint() for r in Session(workers=1).run(plan)]
    sharded = run_sharded(plan, shards, workers=workers)
    assert [r.fingerprint() for r in sharded] == reference


@settings(max_examples=4, deadline=None)
@given(_shard_cases())
def test_merged_bytes_invariant_with_a_shared_cache(case):
    """With a shared cache directory (the deployment layout), the merged
    shard JSONL is byte-identical to the single-process results file."""
    dag_seeds, spec_indices, shards, workers = case
    plan = _plan(dag_seeds, spec_indices)
    with tempfile.TemporaryDirectory() as td:
        td = Path(td)
        cache = td / "cache"
        single = td / "single.jsonl"
        Session(workers=1, cache_dir=cache, results_path=single).run(plan)
        merged = td / "merged.jsonl"
        run_sharded(
            plan, shards, workers=workers, cache_dir=cache, results_path=merged
        )
        assert merged.read_bytes() == single.read_bytes()
