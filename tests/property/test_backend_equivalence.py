"""Property-based backend-equivalence matrix for the ILP solver registry.

For hypothesis-generated models and tiny DAG scheduling problems, every
registered backend (scipy/HiGHS, the pure-Python branch and bound, and the
``auto`` dispatcher) must agree:

* on feasibility — either all backends report a solution or none does;
* on the optimal objective value (the solutions themselves may differ when
  the optimum is degenerate, the *value* may not);
* every reported solution must actually be feasible: all constraints hold
  and all integer variables take integral values.

The model-level matrix runs in tier 1; the scheduler-level equivalence
(driving the full MBSP and BSP ILPs through each backend) is solver-heavy
and carries the ``slow`` marker.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag.generators import chain_dag, fork_join_dag, random_layered_dag
from repro.ilp import (
    INF,
    IlpModel,
    SolutionStatus,
    SolverOptions,
    available_backends,
    lin_sum,
    solve,
)

ALL_BACKENDS = tuple(available_backends())  # ("auto", "bnb", "scipy")

#: Exact solves: no early gap-based stops, generous wall clock.
EXACT = SolverOptions(time_limit=60.0, mip_rel_gap=0.0)


def assert_solution_is_feasible(model: IlpModel, solution, tolerance: float = 1e-5):
    """Replay all constraints, bounds and integrality against ``solution``."""
    for constraint in model.constraints:
        value = solution.value(constraint.expr)
        if constraint.lower != -INF:
            assert value >= constraint.lower - tolerance
        if constraint.upper != INF:
            assert value <= constraint.upper + tolerance
    for variable in model.variables:
        value = solution.value(variable)
        assert value >= variable.lower - tolerance
        assert value <= variable.upper + tolerance
        if variable.is_integer:
            assert abs(value - round(value)) <= tolerance


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def small_milp_models(draw):
    """A random small MILP over binaries: knapsack-like rows, random senses."""
    n = draw(st.integers(min_value=2, max_value=6))
    model = IlpModel("prop_milp")
    xs = [model.add_binary(f"x{i}") for i in range(n)]

    num_rows = draw(st.integers(min_value=1, max_value=3))
    for _ in range(num_rows):
        coeffs = draw(
            st.lists(st.integers(min_value=-4, max_value=6), min_size=n, max_size=n)
        )
        rhs = draw(st.integers(min_value=-3, max_value=12))
        model.add_constraint(lin_sum(c * x for c, x in zip(xs, coeffs)) <= rhs)

    objective_coeffs = draw(
        st.lists(st.integers(min_value=-8, max_value=8), min_size=n, max_size=n)
    )
    objective = lin_sum(c * x for c, x in zip(xs, objective_coeffs))
    if draw(st.booleans()):
        model.maximize(objective)
    else:
        model.minimize(objective)
    return model


@st.composite
def small_mixed_models(draw):
    """A random model mixing bounded integers and continuous variables."""
    model = IlpModel("prop_mixed")
    num_int = draw(st.integers(min_value=1, max_value=3))
    num_cont = draw(st.integers(min_value=1, max_value=2))
    ints = [model.add_integer(f"i{k}", 0, draw(st.integers(2, 6))) for k in range(num_int)]
    conts = [model.add_continuous(f"c{k}", 0, 10) for k in range(num_cont)]
    xs = ints + conts

    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        coeffs = draw(
            st.lists(st.integers(min_value=-3, max_value=5), min_size=len(xs), max_size=len(xs))
        )
        rhs = draw(st.integers(min_value=0, max_value=20))
        model.add_constraint(lin_sum(c * x for c, x in zip(xs, coeffs)) <= rhs)

    coeffs = draw(
        st.lists(st.integers(min_value=-5, max_value=5), min_size=len(xs), max_size=len(xs))
    )
    constant = draw(st.integers(min_value=-5, max_value=5))
    model.maximize(lin_sum(c * x for c, x in zip(xs, coeffs)) + constant)
    return model


def solve_with_all_backends(model: IlpModel):
    return {backend: solve(model, EXACT, backend=backend) for backend in ALL_BACKENDS}


def assert_backends_agree(model: IlpModel, solutions):
    solvable = {name: sol.has_solution for name, sol in solutions.items()}
    assert len(set(solvable.values())) == 1, f"feasibility disagreement: {solvable}"
    if not any(solvable.values()):
        return
    objectives = {name: sol.objective for name, sol in solutions.items()}
    reference = objectives[ALL_BACKENDS[0]]
    for name, objective in objectives.items():
        assert objective == pytest.approx(reference, abs=1e-5), (
            f"objective disagreement: {objectives}"
        )
    for name, solution in solutions.items():
        assert_solution_is_feasible(model, solution)


# ----------------------------------------------------------------------
# model-level equivalence (tier 1)
# ----------------------------------------------------------------------
class TestModelLevelEquivalence:
    @given(small_milp_models())
    @settings(max_examples=25, deadline=None)
    def test_binary_models_agree_across_backends(self, model):
        assert_backends_agree(model, solve_with_all_backends(model))

    @given(small_mixed_models())
    @settings(max_examples=20, deadline=None)
    def test_mixed_integer_models_agree_across_backends(self, model):
        assert_backends_agree(model, solve_with_all_backends(model))

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_infeasible_models_rejected_by_all_backends(self, lower, width):
        model = IlpModel("prop_infeasible")
        xs = [model.add_binary(f"x{i}") for i in range(width)]
        total = lin_sum(xs)
        model.add_constraint(total >= width + lower)  # impossible for binaries
        model.minimize(total)
        for backend in ALL_BACKENDS:
            solution = solve(model, EXACT, backend=backend)
            assert not solution.has_solution
            assert solution.status in (
                SolutionStatus.INFEASIBLE,
                SolutionStatus.NO_SOLUTION,
            )


# ----------------------------------------------------------------------
# scheduler-level equivalence (solver-heavy -> slow marker)
# ----------------------------------------------------------------------
@st.composite
def tiny_scheduling_dags(draw):
    """A tiny DAG whose full MBSP ILP stays tractable for pure-Python B&B."""
    kind = draw(st.sampled_from(["chain", "forkjoin", "layered"]))
    if kind == "chain":
        return chain_dag(draw(st.integers(min_value=3, max_value=4)))
    if kind == "forkjoin":
        return fork_join_dag(width=2, stages=1)
    return random_layered_dag(
        2, 2, edge_probability=0.8, seed=draw(st.integers(min_value=0, max_value=50))
    )


@pytest.mark.slow
class TestSchedulerLevelEquivalence:
    @given(tiny_scheduling_dags())
    @settings(max_examples=4, deadline=None)
    def test_bsp_ilp_scheduler_costs_agree_across_backends(self, dag):
        from repro.bsp.cost import bsp_cost
        from repro.bsp.ilp import BspIlpConfig, IlpBspScheduler

        costs = {}
        for backend in ALL_BACKENDS:
            scheduler = IlpBspScheduler(
                BspIlpConfig(solver_options=EXACT, backend=backend)
            )
            schedule = scheduler.schedule(dag, num_processors=2, g=1.0, L=2.0)
            schedule.validate()
            costs[backend] = bsp_cost(schedule, g=1.0, L=2.0)
        reference = costs[ALL_BACKENDS[0]]
        assert all(
            cost == pytest.approx(reference, abs=1e-6) for cost in costs.values()
        ), f"BSP ILP cost disagreement: {costs}"

    @given(tiny_scheduling_dags())
    @settings(max_examples=3, deadline=None)
    def test_full_mbsp_scheduler_costs_agree_across_backends(self, dag):
        from repro.core.full_ilp import MbspIlpConfig
        from repro.core.scheduler import MbspIlpScheduler
        from repro.model.instance import make_instance
        from repro.model.validation import validate_schedule

        instance = make_instance(dag, num_processors=1, cache_factor=4.0, g=1.0, L=5.0)
        costs = {}
        for backend in ALL_BACKENDS:
            config = MbspIlpConfig(
                synchronous=True,
                max_steps=4,
                solver_options=EXACT,
                backend=backend,
            )
            result = MbspIlpScheduler(config).schedule(instance)
            validate_schedule(result.best_schedule, require_all_computed=False)
            costs[backend] = result.best_cost
        reference = costs[ALL_BACKENDS[0]]
        assert all(
            cost == pytest.approx(reference, abs=1e-6) for cost in costs.values()
        ), f"full MBSP ILP cost disagreement: {costs}"
