"""Property-based tests of the refinement invariants (hypothesis).

For random instances and any baseline pipeline the refinement engine must:

* never increase :func:`~repro.model.cost.schedule_cost`,
* always return a schedule passing the strict model validator,
* be deterministic for a fixed seed (identical schedules, not just costs),
* keep its incremental cost bookkeeping consistent with the exact evaluator.

The fast variants run small budgets in tier 1; the large-budget variants are
marked ``slow`` and run nightly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.two_stage import baseline_schedule
from repro.dag.generators import random_layered_dag
from repro.model.cost import synchronous_cost
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule
from repro.portfolio.members import schedule_digest
from repro.refine import RefineConfig, Refiner, refine_schedule


@st.composite
def refinable_instances(draw):
    """A feasible instance plus its two-stage baseline schedule."""
    layers = draw(st.integers(min_value=2, max_value=4))
    width = draw(st.integers(min_value=1, max_value=4))
    prob = draw(st.floats(min_value=0.2, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    dag = random_layered_dag(layers, width, edge_probability=prob, seed=seed)
    procs = draw(st.integers(min_value=1, max_value=4))
    factor = draw(st.floats(min_value=1.5, max_value=4.0))
    instance = make_instance(dag, num_processors=procs, cache_factor=factor,
                             g=1.0, L=10.0)
    return instance, baseline_schedule(instance, synchronous=True, seed=0)


class TestRefinementInvariants:
    @given(refinable_instances(), st.integers(min_value=0, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_never_increases_cost_and_stays_valid(self, pair, budget):
        _instance, base = pair
        result = refine_schedule(base.mbsp_schedule, budget=budget, seed=0)
        # never worse than the input under the exact evaluator
        assert result.final_cost <= base.cost + 1e-9
        assert result.final_cost == pytest.approx(
            synchronous_cost(result.schedule), abs=1e-6
        )
        # always passes the strict model validation
        validate_schedule(result.schedule)

    @given(refinable_instances(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_for_fixed_seed(self, pair, seed):
        _instance, base = pair
        first = refine_schedule(base.mbsp_schedule, budget=300, seed=seed)
        second = refine_schedule(base.mbsp_schedule, budget=300, seed=seed)
        assert first.final_cost == second.final_cost
        assert schedule_digest(first.schedule) == schedule_digest(second.schedule)

    @given(refinable_instances())
    @settings(max_examples=15, deadline=None)
    def test_annealing_contract_matches_hill_climbing_contract(self, pair):
        _instance, base = pair
        config = RefineConfig(strategy="anneal", budget=300, seed=5)
        result = Refiner(config).refine(base.mbsp_schedule)
        assert result.final_cost <= base.cost + 1e-9
        validate_schedule(result.schedule)
        assert result.final_cost == pytest.approx(
            synchronous_cost(result.schedule), abs=1e-6
        )


@pytest.mark.slow
class TestRefinementInvariantsLargeBudget:
    """Nightly variants with production-sized budgets."""

    @given(refinable_instances())
    @settings(max_examples=20, deadline=None)
    def test_large_budget_never_increases_cost_and_stays_valid(self, pair):
        _instance, base = pair
        result = refine_schedule(base.mbsp_schedule, budget=5000, seed=0)
        assert result.final_cost <= base.cost + 1e-9
        validate_schedule(result.schedule)

    @given(refinable_instances())
    @settings(max_examples=10, deadline=None)
    def test_large_budget_deterministic(self, pair):
        _instance, base = pair
        first = refine_schedule(base.mbsp_schedule, budget=5000, seed=42)
        second = refine_schedule(base.mbsp_schedule, budget=5000, seed=42)
        assert schedule_digest(first.schedule) == schedule_digest(second.schedule)

    @given(refinable_instances())
    @settings(max_examples=10, deadline=None)
    def test_large_budget_annealing(self, pair):
        _instance, base = pair
        config = RefineConfig(strategy="anneal", budget=5000, seed=7)
        result = Refiner(config).refine(base.mbsp_schedule)
        assert result.final_cost <= base.cost + 1e-9
        validate_schedule(result.schedule)
