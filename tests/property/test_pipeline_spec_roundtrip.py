"""Property tests: the pipeline spec parse -> canonicalize round trip.

For every well-formed spec (random stages, options, spellings, whitespace
and case), canonicalization must be a *fixed point* of parsing: parsing the
canonical string yields the same pipeline, and canonicalizing it again
changes nothing.  This is what makes canonical specs safe to use as engine
job-hash components and result-cache keys.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline import canonicalize, legacy_member_names, parse
from repro.pipeline.stages import TWO_STAGE_POLICIES, TWO_STAGE_SCHEDULERS


def _two_stage_tokens():
    return st.builds(
        lambda s, p: f"{s}+{p}",
        st.sampled_from(TWO_STAGE_SCHEDULERS),
        st.sampled_from(TWO_STAGE_POLICIES),
    )


def _refine_tokens():
    budgets = st.one_of(st.none(), st.integers(min_value=0, max_value=10_000))
    strategies = st.one_of(st.none(), st.sampled_from(["hill", "anneal"]))
    seeds = st.one_of(st.none(), st.integers(min_value=0, max_value=99))

    def build(budget, strategy, seed):
        options = []
        if budget is not None:
            options.append(f"budget={budget}")
        if strategy is not None:
            options.append(f"strategy={strategy}")
        if seed is not None:
            options.append(f"seed={seed}")
        return "refine" + (f"({','.join(options)})" if options else "")

    return st.builds(build, budgets, strategies, seeds)


def _ilp_tokens():
    return st.sampled_from(["ilp", "ilp(warm=solution)", "ilp(warm=objective)"])


def _dac_tokens():
    return st.builds(
        lambda alias, size: alias + (f"(max_part_size={size})" if size else ""),
        st.sampled_from(["dac", "divide-and-conquer"]),
        st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
    )


def _stage_tokens():
    return st.one_of(
        _two_stage_tokens(),
        st.just("baseline"),
        _refine_tokens(),
        _ilp_tokens(),
        _dac_tokens(),
    )


def _spec_strings():
    def join(tokens, spaces, upper):
        sep = " " * spaces + "|" + " " * spaces
        text = sep.join(tokens)
        return text.upper() if upper else text

    return st.builds(
        join,
        st.lists(_stage_tokens(), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=2),
        st.booleans(),
    )


@settings(max_examples=150, deadline=None)
@given(_spec_strings())
def test_canonicalize_is_a_fixed_point(text):
    canonical = canonicalize(text)
    assert canonicalize(canonical) == canonical


@settings(max_examples=150, deadline=None)
@given(_spec_strings())
def test_parse_canonicalize_parse_round_trip(text):
    spec = parse(text)
    reparsed = parse(spec.canonical())
    assert reparsed.canonical() == spec.canonical()
    # same stages, same options — not merely the same string
    assert [s.name for s in reparsed.stages] == [s.name for s in spec.stages]


@settings(max_examples=150, deadline=None)
@given(_spec_strings())
def test_canonical_specs_build_runnable_stage_lists(text):
    stages = parse(text).build_stages()
    assert stages
    # auto-prepended baselines guarantee the first stage needs no incumbent
    assert not stages[0].requires_incumbent


@pytest.mark.parametrize("member", legacy_member_names())
def test_legacy_member_names_round_trip(member):
    canonical = canonicalize(member)
    assert canonicalize(canonical) == canonical
