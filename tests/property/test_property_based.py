"""Property-based tests (hypothesis) for the core data structures and invariants.

These tests generate random DAGs, instances and expressions and check the
library's fundamental invariants:

* topological orders respect every edge and contain every node,
* the two-stage converter always produces schedules that pass the strict
  validator, for every eviction policy and cache factor >= 1,
* the asynchronous cost never exceeds the synchronous cost when ``L = 0``,
* schedule costs scale monotonically with the communication parameter ``g``,
* the ILP expression algebra matches a reference evaluation with floats.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.bsp.greedy import greedy_bsp_schedule
from repro.cache.conversion import two_stage_schedule
from repro.cache.policies import ClairvoyantPolicy, FifoPolicy, LruPolicy
from repro.dag.analysis import critical_path_length, minimum_cache_size, node_levels
from repro.dag.generators import random_layered_dag
from repro.dag.graph import ComputationalDag
from repro.ilp.expr import LinExpr, Variable, lin_sum
from repro.model.cost import asynchronous_cost, synchronous_cost, synchronous_cost_breakdown
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def random_dags(draw, max_layers=4, max_width=4):
    """A random layered DAG with random weights (via the library generator)."""
    layers = draw(st.integers(min_value=2, max_value=max_layers))
    width = draw(st.integers(min_value=1, max_value=max_width))
    prob = draw(st.floats(min_value=0.2, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_layered_dag(layers, width, edge_probability=prob, seed=seed)


@st.composite
def weighted_instances(draw):
    """A feasible MBSP instance on a random DAG."""
    dag = draw(random_dags())
    procs = draw(st.integers(min_value=1, max_value=4))
    factor = draw(st.floats(min_value=1.0, max_value=4.0))
    g = draw(st.floats(min_value=0.0, max_value=3.0))
    L = draw(st.sampled_from([0.0, 1.0, 10.0]))
    return make_instance(dag, num_processors=procs, cache_factor=factor, g=g, L=L)


# ----------------------------------------------------------------------
# DAG invariants
# ----------------------------------------------------------------------
class TestDagProperties:
    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_is_complete_and_consistent(self, dag):
        order = dag.topological_order()
        assert len(order) == dag.num_nodes
        position = {v: i for i, v in enumerate(order)}
        for u, v in dag.edges():
            assert position[u] < position[v]

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_levels_increase_along_edges(self, dag):
        levels = node_levels(dag)
        for u, v in dag.edges():
            assert levels[u] < levels[v]

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_minimum_cache_size_dominates_single_nodes(self, dag):
        r0 = minimum_cache_size(dag)
        assert r0 >= max(dag.mu(v) for v in dag.nodes)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_critical_path_bounded_by_total_work(self, dag):
        assert critical_path_length(dag) <= dag.total_work() + 1e-9

    @given(random_dags())
    @settings(max_examples=30, deadline=None)
    def test_subgraph_of_all_nodes_is_identity(self, dag):
        clone = dag.induced_subgraph(dag.nodes)
        assert set(clone.edges()) == set(dag.edges())
        assert clone.total_memory() == dag.total_memory()


# ----------------------------------------------------------------------
# two-stage conversion invariants
# ----------------------------------------------------------------------
class TestConversionProperties:
    @given(weighted_instances(), st.sampled_from(["clairvoyant", "lru", "fifo"]))
    @settings(max_examples=25, deadline=None)
    def test_two_stage_schedules_are_always_valid(self, instance, policy_name):
        policy = {"clairvoyant": ClairvoyantPolicy, "lru": LruPolicy, "fifo": FifoPolicy}[policy_name]()
        bsp = greedy_bsp_schedule(instance.dag, instance.num_processors)
        schedule = two_stage_schedule(bsp, instance, policy)
        report = validate_schedule(schedule)
        assert report.max_cache_used <= instance.cache_size + 1e-9

    @given(weighted_instances())
    @settings(max_examples=20, deadline=None)
    def test_async_cost_at_most_sync_cost_without_latency(self, instance):
        instance = instance.with_architecture(instance.architecture.with_bsp_parameters(L=0.0))
        bsp = greedy_bsp_schedule(instance.dag, instance.num_processors)
        schedule = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
        assert asynchronous_cost(schedule) <= synchronous_cost(schedule) + 1e-6

    @given(weighted_instances())
    @settings(max_examples=20, deadline=None)
    def test_cost_breakdown_adds_up(self, instance):
        bsp = greedy_bsp_schedule(instance.dag, instance.num_processors)
        schedule = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
        breakdown = synchronous_cost_breakdown(schedule)
        assert breakdown.total == pytest.approx(synchronous_cost(schedule))
        assert breakdown.compute >= 0 and breakdown.io >= 0

    @given(random_dags(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_io_volume_decreases_with_bigger_cache(self, dag, procs):
        bsp = greedy_bsp_schedule(dag, procs)
        small = make_instance(dag, num_processors=procs, cache_factor=1.0, g=1, L=0)
        large = make_instance(dag, num_processors=procs, cache_factor=20.0, g=1, L=0)
        schedule_small = two_stage_schedule(bsp, small, ClairvoyantPolicy())
        schedule_large = two_stage_schedule(bsp, large, ClairvoyantPolicy())
        assert schedule_large.total_io_volume() <= schedule_small.total_io_volume() + 1e-9

    @given(random_dags(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_every_node_computed_exactly_once_by_baseline(self, dag, procs):
        instance = make_instance(dag, num_processors=procs, cache_factor=2.0, g=1, L=5)
        bsp = greedy_bsp_schedule(dag, procs)
        schedule = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
        computable = {v for v in dag.nodes if not dag.is_source(v)}
        assignment = schedule.compute_assignment()
        assert set(assignment) == computable
        assert all(len(events) == 1 for events in assignment.values())


# ----------------------------------------------------------------------
# ILP expression algebra
# ----------------------------------------------------------------------
class TestExpressionProperties:
    @given(
        st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=6),
        st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=6),
        st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_linear_combination_evaluates_correctly(self, coeffs, values, constant):
        n = min(len(coeffs), len(values))
        coeffs, values = coeffs[:n], values[:n]
        variables = [Variable(i, f"x{i}") for i in range(n)]
        expr = LinExpr({}, constant)
        for var, coeff in zip(variables, coeffs):
            expr = expr + coeff * var
        expected = constant + sum(c * v for c, v in zip(coeffs, values))
        assert expr.value(values) == pytest.approx(expected, abs=1e-6)

    @given(st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_pairwise_addition(self, coeffs):
        variables = [Variable(i, f"x{i}") for i in range(len(coeffs))]
        summed = lin_sum(c * v for c, v in zip(coeffs, variables))
        manual = LinExpr()
        for c, v in zip(coeffs, variables):
            manual = manual + c * v
        values = [1.0] * len(coeffs)
        assert summed.value(values) == pytest.approx(manual.value(values))

    @given(st.floats(min_value=-4, max_value=4), st.floats(min_value=-4, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_scaling_distributes(self, a, b):
        x, y = Variable(0, "x"), Variable(1, "y")
        left = a * (x + y) + b
        right = a * x + a * y + b
        for values in ([0.0, 1.0], [2.0, -1.5], [0.5, 0.5]):
            assert left.value(values) == pytest.approx(right.value(values), abs=1e-9)
