"""Property-based tests (hypothesis) for the parallel experiment engine.

For random seeded DAGs the engine must be a pure function of its job list:

* ``workers > 1`` returns bit-identical costs *and schedules* (compared via
  schedule digests carried in the result fingerprints) to serial execution;
* re-running against a warm disk cache returns identical results while
  executing zero jobs;
* job keys are deterministic across job-object rebuilds.

The members exercised here are the deterministic two-stage pipelines, so
any fingerprint difference is an engine bug, never solver noise.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dag.generators import random_layered_dag
from repro.experiments.parallel import ExperimentEngine, ExperimentJob
from repro.experiments.runner import ExperimentConfig

MEMBERS = ("bspg+clairvoyant", "cilk+lru", "etf+clairvoyant")


@st.composite
def job_batches(draw):
    """A batch of portfolio jobs over random seeded DAGs."""
    num_dags = draw(st.integers(min_value=1, max_value=3))
    procs = draw(st.integers(min_value=1, max_value=3))
    factor = draw(st.floats(min_value=1.0, max_value=4.0))
    config = ExperimentConfig(
        name="prop", num_processors=procs, cache_factor=factor, ilp_time_limit=1.0
    )
    jobs = []
    for i in range(num_dags):
        layers = draw(st.integers(min_value=2, max_value=4))
        width = draw(st.integers(min_value=1, max_value=4))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        dag = random_layered_dag(layers, width, edge_probability=0.5, seed=seed)
        dag.name = f"prop_{i}_{seed}"
        members = draw(
            st.lists(st.sampled_from(MEMBERS), min_size=1, max_size=3, unique=True)
        )
        jobs.extend(
            ExperimentJob.make("portfolio", dag, config, member=member)
            for member in members
        )
    return jobs


@given(job_batches())
@settings(max_examples=6, deadline=None)
def test_parallel_engine_matches_serial_bit_for_bit(jobs):
    serial = ExperimentEngine(workers=1).run(jobs)
    parallel = ExperimentEngine(workers=2).run(jobs)
    # fingerprints include the member cost and the schedule digest, so this
    # asserts bit-identical costs AND schedules, in identical order
    assert [r.fingerprint() for r in serial] == [r.fingerprint() for r in parallel]


@given(job_batches())
@settings(max_examples=6, deadline=None)
def test_cached_rerun_is_identical_and_free(tmp_path_factory, jobs):
    cache_dir = tmp_path_factory.mktemp("engine-cache")
    warm = ExperimentEngine(workers=1, cache_dir=cache_dir)
    first = warm.run(jobs)
    cached = ExperimentEngine(workers=1, cache_dir=cache_dir)
    second = cached.run(jobs)
    assert cached.stats.executed == 0
    assert cached.stats.cache_hits == len(jobs)
    assert [r.fingerprint() for r in first] == [r.fingerprint() for r in second]


@given(job_batches())
@settings(max_examples=10, deadline=None)
def test_job_keys_are_deterministic_and_unique_per_job(jobs):
    keys = [job.key() for job in jobs]
    rebuilt = [
        ExperimentJob(kind=j.kind, dag_data=j.dag_data, config=j.config, params=j.params)
        for j in jobs
    ]
    assert [job.key() for job in rebuilt] == keys
    # distinct (dag, member) pairs must never collide
    assert len(set(keys)) == len(keys)
