"""Property tests: observability never changes results.

The zero-interference contract of :mod:`repro.obs` (the acceptance bar of
the tracing layer): for any plan of deterministic jobs, a traced run —
spans, metrics, spill files and all — produces

* ``InstanceResult`` fingerprints identical to the untraced run, across
  worker counts {1, 4} and shard counts {1, 2};
* a JSONL results file *byte-identical* to the untraced one when both
  replay a shared content-hash cache (the CI obs-smoke layout: the traced
  run populates the cache, the untraced run replays it).

Jobs are seeded two-stage/refine pipelines and a refine race, so any
divergence is an instrumentation bug, never solver noise.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.exec import Session, plan_pipelines, run_sharded
from repro.experiments.runner import ExperimentConfig

CFG = ExperimentConfig(
    name="obs-prop",
    num_processors=2,
    ilp_time_limit=30.0,
    ilp_node_limit=10,
    step_cap=4,
)

#: Deterministic member pool: seeded heuristics, a refinement and a race.
SPECS = (
    "bspg+clairvoyant",
    "cilk+lru",
    "bspg+clairvoyant|refine(seed=1)",
    "baseline|race(refine(seed=1),refine(seed=2,strategy=anneal))",
)


@pytest.fixture(autouse=True)
def clean_observability():
    obs.configure_tracing(False, spill_dir=None)
    obs.get_tracer().reset()
    obs.metrics().reset()
    yield
    obs.configure_tracing(False, spill_dir=None)
    obs.get_tracer().reset()
    obs.metrics().reset()


def _plan(dag_seeds, spec_indices):
    dags = []
    for seed in dag_seeds:
        dag = spmv(3, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"spmv_{seed}"
        dags.append(dag)
    return plan_pipelines([SPECS[i] for i in spec_indices], dags, CFG)


@settings(max_examples=4, deadline=None)
@given(
    dag_seeds=st.lists(
        st.integers(min_value=1, max_value=50), min_size=1, max_size=2,
        unique=True,
    ),
    spec_indices=st.lists(
        st.integers(min_value=0, max_value=len(SPECS) - 1),
        min_size=1, max_size=2, unique=True,
    ),
    workers=st.sampled_from([1, 4]),
)
def test_traced_run_fingerprints_match_untraced(
    dag_seeds, spec_indices, workers
):
    """No cache in play: the invariance is the instrumentation's."""
    plan = _plan(dag_seeds, spec_indices)
    untraced = Session(workers=workers).run(plan)
    with tempfile.TemporaryDirectory() as td:
        with obs.trace_scope(spill_dir=str(Path(td) / "spill")):
            traced = Session(workers=workers).run(plan)
    assert [r.fingerprint() for r in traced] == [
        r.fingerprint() for r in untraced
    ]


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("shards", [1, 2])
def test_traced_jsonl_byte_identical_against_shared_cache(workers, shards):
    """The CI obs-smoke layout: traced first (fresh, populates the cache),
    untraced second (replays) — byte-identical JSONL either way round the
    matrix of worker and shard counts."""
    plan = _plan((1, 2), (0, 3))
    with tempfile.TemporaryDirectory() as td:
        td = Path(td)
        cache = td / "cache"
        traced_path = td / "traced.jsonl"
        untraced_path = td / "untraced.jsonl"
        with obs.trace_scope(spill_dir=str(td / "spill")):
            traced = run_sharded(
                plan, shards, workers=workers, cache_dir=cache,
                results_path=traced_path,
            )
        untraced = run_sharded(
            plan, shards, workers=workers, cache_dir=cache,
            results_path=untraced_path,
        )
        assert [r.fingerprint() for r in traced] == [
            r.fingerprint() for r in untraced
        ]
        assert traced_path.read_bytes() == untraced_path.read_bytes()
        # the trace actually observed the traced run
        spans = obs.read_spill_spans(str(td / "spill"))
        assert any(span.name == "shard.run" for span in spans)
        assert any(span.name == "session.job" for span in spans)
