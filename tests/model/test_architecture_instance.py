"""Unit tests for the machine model and problem instances."""

import pytest

from repro.dag.generators import chain_dag, spmv
from repro.exceptions import ConfigurationError, InfeasibleInstanceError
from repro.model.architecture import MbspArchitecture
from repro.model.instance import MbspInstance, make_instance


class TestArchitecture:
    def test_valid_construction(self):
        arch = MbspArchitecture(num_processors=4, cache_size=10, g=1, L=5)
        assert list(arch.processors) == [0, 1, 2, 3]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_processors=0, cache_size=1),
            dict(num_processors=2, cache_size=-1),
            dict(num_processors=2, cache_size=1, g=-1),
            dict(num_processors=2, cache_size=1, L=-1),
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            MbspArchitecture(**kwargs)

    def test_with_helpers_return_copies(self):
        arch = MbspArchitecture(2, 10, g=1, L=5)
        assert arch.with_processors(8).num_processors == 8
        assert arch.with_cache_size(20).cache_size == 20
        assert arch.with_bsp_parameters(L=0).L == 0
        assert arch.with_bsp_parameters(g=3).g == 3
        # original unchanged (frozen dataclass)
        assert arch.num_processors == 2 and arch.cache_size == 10

    def test_infinite_cache_allowed(self):
        arch = MbspArchitecture(1, float("inf"))
        assert arch.cache_size == float("inf")


class TestInstance:
    def test_pass_throughs(self, small_spmv):
        inst = make_instance(small_spmv, num_processors=3, cache_factor=2, g=2, L=7)
        assert inst.num_processors == 3
        assert inst.g == 2
        assert inst.L == 7
        assert inst.name == small_spmv.name

    def test_cache_factor_scaling(self, small_spmv):
        inst = make_instance(small_spmv, cache_factor=3.0)
        assert inst.cache_size == pytest.approx(3.0 * inst.minimum_cache_size())

    def test_explicit_cache_size_overrides_factor(self, small_spmv):
        inst = make_instance(small_spmv, cache_factor=3.0, cache_size=42.0)
        assert inst.cache_size == 42.0

    def test_feasibility_check(self, small_spmv):
        feasible = make_instance(small_spmv, cache_factor=1.0)
        assert feasible.is_feasible()
        feasible.require_feasible()

        infeasible = make_instance(small_spmv, cache_factor=0.5)
        assert not infeasible.is_feasible()
        with pytest.raises(InfeasibleInstanceError):
            infeasible.require_feasible()

    def test_scaled_cache_instance(self, small_spmv):
        inst = make_instance(small_spmv, cache_factor=1.0)
        scaled = inst.scaled_cache_instance(5.0)
        assert scaled.cache_size == pytest.approx(5.0 * inst.minimum_cache_size())
        assert scaled.dag is inst.dag

    def test_with_architecture(self, small_spmv):
        inst = make_instance(small_spmv, num_processors=2)
        new = inst.with_architecture(inst.architecture.with_processors(6))
        assert new.num_processors == 6
        assert inst.num_processors == 2

    def test_chain_minimum_cache(self):
        dag = chain_dag(4, mu=3.0)
        inst = make_instance(dag, cache_factor=1.0)
        assert inst.cache_size == pytest.approx(6.0)
