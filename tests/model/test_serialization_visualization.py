"""Tests for schedule serialization and text visualization."""

import pytest

from repro.bsp import greedy_bsp_schedule
from repro.cache import two_stage_schedule
from repro.exceptions import ScheduleError
from repro.model import (
    make_instance,
    render_gantt,
    render_superstep_table,
    save_schedule,
    load_schedule,
    schedule_from_dict,
    schedule_to_dict,
    synchronous_cost,
    asynchronous_cost,
    validate_schedule,
)


@pytest.fixture
def sample_schedule(small_spmv):
    instance = make_instance(small_spmv, num_processors=2, cache_factor=3.0, g=1, L=10)
    bsp = greedy_bsp_schedule(small_spmv, 2)
    return two_stage_schedule(bsp, instance)


class TestScheduleSerialization:
    def test_dict_roundtrip_preserves_costs(self, sample_schedule):
        data = schedule_to_dict(sample_schedule)
        restored = schedule_from_dict(data, sample_schedule.instance)
        validate_schedule(restored)
        assert restored.num_supersteps == sample_schedule.num_supersteps
        assert synchronous_cost(restored) == pytest.approx(synchronous_cost(sample_schedule))
        assert asynchronous_cost(restored) == pytest.approx(asynchronous_cost(sample_schedule))
        assert restored.operation_counts() == sample_schedule.operation_counts()

    def test_file_roundtrip(self, tmp_path, sample_schedule):
        path = tmp_path / "schedule.json"
        save_schedule(sample_schedule, path)
        restored = load_schedule(path, sample_schedule.instance)
        validate_schedule(restored)
        assert synchronous_cost(restored) == pytest.approx(synchronous_cost(sample_schedule))

    def test_dict_contains_instance_metadata(self, sample_schedule):
        data = schedule_to_dict(sample_schedule)
        assert data["instance"]["num_processors"] == 2
        assert data["instance"]["g"] == 1.0
        assert len(data["supersteps"]) == sample_schedule.num_supersteps

    def test_processor_count_mismatch_rejected(self, sample_schedule, small_spmv):
        data = schedule_to_dict(sample_schedule)
        other = make_instance(small_spmv, num_processors=4, cache_factor=3.0)
        with pytest.raises(ScheduleError):
            schedule_from_dict(data, other)

    def test_malformed_superstep_rejected(self, sample_schedule):
        data = schedule_to_dict(sample_schedule)
        data["supersteps"][0]["processors"] = data["supersteps"][0]["processors"][:1]
        with pytest.raises(ScheduleError):
            schedule_from_dict(data, sample_schedule.instance)


class TestVisualization:
    def test_superstep_table_mentions_all_supersteps(self, sample_schedule):
        text = render_superstep_table(sample_schedule)
        lines = text.splitlines()
        assert len(lines) == 2 + sample_schedule.num_supersteps
        assert "p0" in lines[0] and "p1" in lines[0]

    def test_gantt_contains_all_lanes(self, sample_schedule):
        text = render_gantt(sample_schedule, width=50)
        assert "makespan" in text
        assert text.count("|") == 2 * sample_schedule.instance.num_processors
        assert "#" in text  # some compute happened

    def test_gantt_empty_schedule(self, small_spmv):
        from repro.model.schedule import MbspSchedule

        instance = make_instance(small_spmv, num_processors=2, cache_factor=3.0)
        empty = MbspSchedule(instance)
        assert render_gantt(empty) == "(empty schedule)"
