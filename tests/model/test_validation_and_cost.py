"""Unit tests for schedule validation and the cost functions."""

import pytest

from repro.exceptions import InvalidScheduleError
from repro.model.cost import (
    asynchronous_cost,
    schedule_cost,
    synchronous_cost,
    synchronous_cost_breakdown,
)
from repro.model.instance import make_instance
from repro.model.pebbling import compute_op, delete_op
from repro.model.schedule import MbspSchedule
from repro.model.validation import (
    is_valid_schedule,
    replay_final_state,
    validate_schedule,
)


@pytest.fixture
def diamond_instance(diamond_dag):
    return make_instance(diamond_dag, num_processors=2, cache_factor=2.0, g=1.0, L=10.0)


def sequential_schedule(instance):
    """Valid schedule: everything on processor 0, two supersteps."""
    schedule = MbspSchedule(instance)
    step0 = schedule.new_superstep()
    step0[0].load_phase.append("a")
    step1 = schedule.new_superstep()
    step1[0].compute_phase.extend([compute_op("b"), compute_op("c"), compute_op("d")])
    step1[0].save_phase.append("d")
    return schedule


def parallel_schedule(instance):
    """Valid schedule using both processors with a slow-memory exchange."""
    schedule = MbspSchedule(instance)
    step0 = schedule.new_superstep()
    step0[0].load_phase.append("a")
    step0[1].load_phase.append("a")
    step1 = schedule.new_superstep()
    step1[0].compute_phase.append(compute_op("b"))
    step1[0].save_phase.append("b")
    step1[1].compute_phase.append(compute_op("c"))
    step1[1].delete_phase.append("a")
    step1[1].load_phase.append("b")
    step2 = schedule.new_superstep()
    step2[1].compute_phase.append(compute_op("d"))
    step2[1].save_phase.append("d")
    return schedule


class TestValidation:
    def test_sequential_schedule_valid(self, diamond_instance):
        report = validate_schedule(sequential_schedule(diamond_instance))
        assert report.num_computes == 3
        assert report.num_loads == 1
        assert report.num_saves == 1
        assert report.recomputed_nodes == 0
        assert report.max_cache_used <= diamond_instance.cache_size

    def test_parallel_schedule_valid(self, diamond_instance):
        report = validate_schedule(parallel_schedule(diamond_instance))
        assert report.num_computes == 3
        assert report.num_loads == 3

    def test_missing_sink_save_rejected(self, diamond_instance):
        schedule = sequential_schedule(diamond_instance)
        schedule.supersteps[1][0].save_phase.clear()
        with pytest.raises(InvalidScheduleError, match="terminal"):
            validate_schedule(schedule)

    def test_compute_without_parents_rejected(self, diamond_instance):
        schedule = MbspSchedule(diamond_instance)
        step = schedule.new_superstep()
        step[0].compute_phase.append(compute_op("d"))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule)

    def test_load_without_blue_rejected(self, diamond_instance):
        schedule = MbspSchedule(diamond_instance)
        step = schedule.new_superstep()
        step[0].load_phase.append("b")
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule)

    def test_same_superstep_save_then_load_is_valid(self, diamond_instance):
        # processor 0 saves b in the same superstep processor 1 loads it
        schedule = parallel_schedule(diamond_instance)
        assert is_valid_schedule(schedule)

    def test_load_before_same_superstep_save_of_other_processor(self, diamond_instance):
        # loading a value that is only saved in a *later* superstep must fail
        schedule = parallel_schedule(diamond_instance)
        # move processor 1's load of "b" one superstep earlier than the save
        schedule.supersteps[0][1].load_phase.append("b")
        assert not is_valid_schedule(schedule)

    def test_memory_bound_violation_rejected(self, diamond_dag):
        tight = make_instance(diamond_dag, num_processors=1, cache_size=2.0, g=1, L=0)
        schedule = MbspSchedule(tight)
        step0 = schedule.new_superstep()
        step0[0].load_phase.append("a")
        step1 = schedule.new_superstep()
        step1[0].compute_phase.extend([compute_op("b"), compute_op("c")])
        with pytest.raises(InvalidScheduleError, match="capacity"):
            validate_schedule(schedule)

    def test_require_all_computed_flag(self, diamond_dag):
        # a schedule that only computes what is needed for the sink c... here we
        # drop node b entirely, which only the strict mode rejects
        dag = diamond_dag.copy()
        dag.remove_edge("b", "d")
        instance = make_instance(dag, num_processors=1, cache_factor=3.0, g=1, L=0)
        schedule = MbspSchedule(instance)
        step0 = schedule.new_superstep()
        step0[0].load_phase.append("a")
        step1 = schedule.new_superstep()
        step1[0].compute_phase.extend([compute_op("c"), compute_op("d")])
        step1[0].save_phase.append("d")
        # node b is now a sink as well, so strict validation fails on terminal
        # configuration; relax by saving... instead check non-strict passes for
        # the modified dag where b is not computed
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, require_all_computed=True)

    def test_replay_final_state(self, diamond_instance):
        schedule = sequential_schedule(diamond_instance)
        state = replay_final_state(schedule)
        assert state.has_blue("d")
        assert state.has_red(0, "d")
        assert not state.has_red(1, "d")

    def test_wrong_processor_count_rejected(self, diamond_dag):
        inst2 = make_instance(diamond_dag, num_processors=2, cache_factor=2.0)
        inst3 = make_instance(diamond_dag, num_processors=3, cache_factor=2.0)
        schedule = sequential_schedule(inst2)
        schedule.instance = inst3
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule)


class TestSynchronousCost:
    def test_sequential_cost_breakdown(self, diamond_instance):
        schedule = sequential_schedule(diamond_instance)
        breakdown = synchronous_cost_breakdown(schedule)
        dag = diamond_instance.dag
        assert breakdown.compute == 6           # b + c + d
        assert breakdown.load == dag.mu("a")
        assert breakdown.save == dag.mu("d")
        assert breakdown.synchronization == 2 * diamond_instance.L
        assert breakdown.total == synchronous_cost(schedule)
        assert breakdown.io == breakdown.save + breakdown.load

    def test_parallel_cost_uses_per_phase_maxima(self, diamond_instance):
        schedule = parallel_schedule(diamond_instance)
        breakdown = synchronous_cost_breakdown(schedule)
        dag = diamond_instance.dag
        # superstep 1 compute max = max(omega(b), omega(c)) = 3
        assert breakdown.compute == 3 + dag.omega("d")
        assert breakdown.synchronization == 3 * diamond_instance.L

    def test_empty_supersteps_skipped(self, diamond_instance):
        schedule = sequential_schedule(diamond_instance)
        schedule.new_superstep()
        assert synchronous_cost(schedule) == synchronous_cost(
            schedule.drop_empty_supersteps()
        )

    def test_schedule_cost_dispatch(self, diamond_instance):
        schedule = sequential_schedule(diamond_instance)
        assert schedule_cost(schedule, synchronous=True) == synchronous_cost(schedule)
        assert schedule_cost(schedule, synchronous=False) == asynchronous_cost(schedule)


class TestAsynchronousCost:
    def test_sequential_async_cost(self, diamond_instance):
        schedule = sequential_schedule(diamond_instance)
        # p0: load a (1) + compute 6 + save d (1) = 8
        assert asynchronous_cost(schedule) == 8

    def test_parallel_async_waits_for_save(self, diamond_instance):
        schedule = parallel_schedule(diamond_instance)
        dag = diamond_instance.dag
        # p1: load a (1), compute c (3), load b — but b only becomes available
        # once p0 has finished load a (1) + compute b (2) + save b (1) = 4;
        # p1 is at 4 as well, so the load finishes at 5, then d (1) + save d (1)
        assert asynchronous_cost(schedule) == 7

    def test_async_not_larger_than_sync_when_L_zero(self, diamond_dag):
        instance = make_instance(diamond_dag, num_processors=2, cache_factor=2.0, g=1, L=0)
        schedule = parallel_schedule(instance)
        assert asynchronous_cost(schedule) <= synchronous_cost(schedule)
