"""Unit tests for the MBSP schedule representation."""

import pytest

from repro.exceptions import ScheduleError
from repro.model.instance import make_instance
from repro.model.pebbling import compute_op, delete_op, load_op
from repro.model.schedule import MbspSchedule, ProcessorSuperstep, Superstep


@pytest.fixture
def diamond_instance(diamond_dag):
    return make_instance(diamond_dag, num_processors=2, cache_factor=2.0, g=1.0, L=10.0)


def build_diamond_schedule(instance):
    """A valid single-processor-style schedule of the diamond on processor 0."""
    schedule = MbspSchedule(instance)
    step0 = schedule.new_superstep()
    step0[0].load_phase.append("a")
    step1 = schedule.new_superstep()
    step1[0].compute_phase.extend([compute_op("b"), compute_op("c"), compute_op("d")])
    step1[0].save_phase.append("d")
    return schedule


class TestProcessorSuperstep:
    def test_costs(self, diamond_dag):
        ps = ProcessorSuperstep(
            compute_phase=[compute_op("b"), delete_op("a"), compute_op("c")],
            save_phase=["c"],
            load_phase=["a"],
        )
        assert ps.computed_nodes() == ["b", "c"]
        assert ps.compute_cost(diamond_dag) == 5
        assert ps.save_cost(diamond_dag, g=2.0) == 4
        assert ps.load_cost(diamond_dag, g=2.0) == 2
        assert ps.io_cost(diamond_dag, g=2.0) == 6
        assert not ps.is_empty()

    def test_empty(self):
        assert ProcessorSuperstep().is_empty()

    def test_phase_type_validation(self):
        ps = ProcessorSuperstep(compute_phase=[load_op("a")])
        with pytest.raises(ScheduleError):
            ps.validate_phase_types()

    def test_copy_is_deep(self):
        ps = ProcessorSuperstep(compute_phase=[compute_op("b")])
        clone = ps.copy()
        clone.compute_phase.append(compute_op("c"))
        assert len(ps.compute_phase) == 1


class TestSuperstep:
    def test_indexing_and_iteration(self):
        step = Superstep(3)
        assert step.num_processors == 3
        step[1].save_phase.append("x")
        assert [ps.is_empty() for ps in step] == [True, False, True]

    def test_computed_nodes(self):
        step = Superstep(2)
        step[0].compute_phase.append(compute_op("b"))
        step[1].compute_phase.append(compute_op("c"))
        assert step.computed_nodes() == {"b", "c"}

    def test_requires_positive_processor_count(self):
        with pytest.raises(ScheduleError):
            Superstep(0)


class TestMbspSchedule:
    def test_superstep_processor_count_checked(self, diamond_instance):
        schedule = MbspSchedule(diamond_instance)
        with pytest.raises(ScheduleError):
            schedule.append(Superstep(3))

    def test_basic_statistics(self, diamond_instance):
        schedule = build_diamond_schedule(diamond_instance)
        assert schedule.num_supersteps == 2
        assert schedule.computed_nodes() == {"b", "c", "d"}
        assert schedule.recomputation_count() == 0
        counts = schedule.operation_counts()
        assert counts["compute"] == 3
        assert counts["load"] == 1
        assert counts["save"] == 1
        mu = diamond_instance.dag.mu
        assert schedule.total_io_volume() == mu("a") + mu("d")

    def test_compute_assignment(self, diamond_instance):
        schedule = build_diamond_schedule(diamond_instance)
        assignment = schedule.compute_assignment()
        assert assignment["b"] == [(1, 0)]

    def test_recomputation_counting(self, diamond_instance):
        schedule = build_diamond_schedule(diamond_instance)
        extra = schedule.new_superstep()
        extra[1].load_phase.append("a")
        extra2 = schedule.new_superstep()
        extra2[1].compute_phase.append(compute_op("b"))
        assert schedule.recomputation_count() == 1

    def test_drop_empty_supersteps(self, diamond_instance):
        schedule = build_diamond_schedule(diamond_instance)
        schedule.new_superstep()  # empty
        cleaned = schedule.drop_empty_supersteps()
        assert cleaned.num_supersteps == 2
        assert schedule.num_supersteps == 3  # original untouched

    def test_copy_independent(self, diamond_instance):
        schedule = build_diamond_schedule(diamond_instance)
        clone = schedule.copy()
        clone.supersteps[0][0].load_phase.append("junk")
        assert "junk" not in schedule.supersteps[0][0].load_phase

    def test_describe_output(self, diamond_instance):
        schedule = build_diamond_schedule(diamond_instance)
        text = schedule.describe()
        assert "superstep 0" in text
        assert "compute[b,c,d]" in text
        short = schedule.describe(max_supersteps=1)
        assert "more supersteps" in short
