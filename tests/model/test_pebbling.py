"""Unit tests for the pebbling transition rules."""

import pytest

from repro.exceptions import InvalidScheduleError
from repro.model.pebbling import (
    Operation,
    OpType,
    PebblingState,
    compute_op,
    delete_op,
    load_op,
    save_op,
)


class TestOperations:
    def test_costs(self, diamond_dag):
        g = 2.0
        assert compute_op("c").cost(diamond_dag, g) == 3
        assert load_op("c").cost(diamond_dag, g) == diamond_dag.mu("c") * g
        assert save_op("c").cost(diamond_dag, g) == diamond_dag.mu("c") * g
        assert delete_op("c").cost(diamond_dag, g) == 0

    def test_shorthand_constructors(self):
        assert compute_op("x").op_type is OpType.COMPUTE
        assert delete_op("x").op_type is OpType.DELETE
        assert save_op("x").op_type is OpType.SAVE
        assert load_op("x").op_type is OpType.LOAD


class TestPebblingState:
    def test_initial_configuration(self, diamond_dag):
        state = PebblingState(diamond_dag, 2, cache_size=10)
        assert state.has_blue("a")          # source in slow memory
        assert not state.has_blue("d")
        assert not state.has_red(0, "a")
        assert state.cache_used(0) == 0

    def test_load_requires_blue(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        state.apply_load(0, "a")
        assert state.has_red(0, "a")
        with pytest.raises(InvalidScheduleError):
            state.apply_load(0, "b")  # b has no blue pebble yet

    def test_compute_requires_parents_in_cache(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        with pytest.raises(InvalidScheduleError):
            state.apply_compute(0, "b")
        state.apply_load(0, "a")
        state.apply_compute(0, "b")
        assert state.has_red(0, "b")

    def test_source_nodes_cannot_be_computed(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        with pytest.raises(InvalidScheduleError):
            state.apply_compute(0, "a")

    def test_save_requires_red(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        with pytest.raises(InvalidScheduleError):
            state.apply_save(0, "a")
        state.apply_load(0, "a")
        state.apply_save(0, "a")
        assert state.has_blue("a")

    def test_save_into_deferred_target(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        state.apply_load(0, "a")
        state.apply_compute(0, "b")
        deferred = set()
        state.apply_save(0, "b", blue_target=deferred)
        assert not state.has_blue("b")
        state.blue.update(deferred)
        assert state.has_blue("b")

    def test_delete_requires_red(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        with pytest.raises(InvalidScheduleError):
            state.apply_delete(0, "a")
        state.apply_load(0, "a")
        state.apply_delete(0, "a")
        assert not state.has_red(0, "a")
        assert state.cache_used(0) == 0

    def test_memory_bound_enforced(self, diamond_dag):
        # cache of size 1 can hold 'a' but computing 'b' exceeds it
        state = PebblingState(diamond_dag, 1, cache_size=1)
        state.apply_load(0, "a")
        with pytest.raises(InvalidScheduleError):
            state.apply_compute(0, "b")

    def test_cache_accounting(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        state.apply_load(0, "a")
        state.apply_compute(0, "c")
        assert state.cache_used(0) == diamond_dag.mu("a") + diamond_dag.mu("c")

    def test_processor_isolation(self, diamond_dag):
        state = PebblingState(diamond_dag, 2, 10)
        state.apply_load(0, "a")
        assert not state.has_red(1, "a")
        with pytest.raises(InvalidScheduleError):
            state.apply_compute(1, "b")

    def test_terminal_detection(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        assert not state.is_terminal()
        assert state.missing_sinks() == ["d"]
        state.apply_load(0, "a")
        state.apply_compute(0, "b")
        state.apply_compute(0, "c")
        state.apply_compute(0, "d")
        state.apply_save(0, "d")
        assert state.is_terminal()
        assert state.missing_sinks() == []

    def test_apply_dispatch(self, diamond_dag):
        state = PebblingState(diamond_dag, 1, 10)
        state.apply(0, load_op("a"))
        state.apply(0, compute_op("b"))
        state.apply(0, save_op("b"))
        state.apply(0, delete_op("b"))
        assert state.has_blue("b")
        assert not state.has_red(0, "b")

    def test_invalid_processor_index(self, diamond_dag):
        state = PebblingState(diamond_dag, 2, 10)
        with pytest.raises(InvalidScheduleError):
            state.apply_load(5, "a")
