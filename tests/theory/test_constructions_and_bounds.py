"""Tests making the paper's theoretical statements executable."""

import pytest

from repro.cache.conversion import two_stage_schedule
from repro.cache.policies import ClairvoyantPolicy
from repro.dag.analysis import minimum_cache_size
from repro.model.cost import asynchronous_cost, synchronous_cost
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule
from repro.theory.bounds import (
    asynchronous_lower_bound,
    compute_lower_bound,
    io_lower_bound,
    lower_bound_report,
    synchronous_lower_bound,
)
from repro.theory.constructions import (
    chain_per_processor_bsp_schedule,
    optimal_gap_schedule,
    partition_reduction_dag,
    sync_async_gap_construction,
    sync_vs_async_small_gap_construction,
    two_stage_gap_construction,
    zipper_gadget,
)


class TestTheorem41Construction:
    def test_structure(self):
        c = two_stage_gap_construction(d=4, m=6)
        dag = c.dag
        assert dag.num_nodes == 2 * 4 + 2 * 6
        assert set(dag.sources()) == set(c.group1) | set(c.group2)
        assert set(dag.sinks()) == {c.chain_v[-1], c.chain_u[-1]}
        assert dag.is_acyclic()
        # chain node v_1 (odd) reads all of H2
        assert set(dag.parents(c.chain_v[0])) == set(c.group2)
        # chain node v_2 (even) reads H1 plus its predecessor
        assert set(dag.parents(c.chain_v[1])) == set(c.group1) | {c.chain_v[0]}

    def test_cache_size_matches_proof(self):
        c = two_stage_gap_construction(d=5, m=8)
        instance = c.instance()
        assert instance.cache_size == 7
        assert instance.is_feasible()
        assert minimum_cache_size(c.dag) <= instance.cache_size

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            two_stage_gap_construction(0, 5)

    def test_optimal_schedule_is_valid(self):
        c = two_stage_gap_construction(d=4, m=8)
        schedule = optimal_gap_schedule(c)
        validate_schedule(schedule)

    def test_theorem_4_1_gap(self):
        """The two-stage cost exceeds the optimal cost and the gap grows with d."""
        ratios = []
        for d in (3, 6, 9):
            c = two_stage_gap_construction(d=d, m=2 * d)
            instance = c.instance(g=1.0, L=0.0)
            two_stage = two_stage_schedule(
                chain_per_processor_bsp_schedule(c), instance, ClairvoyantPolicy()
            )
            validate_schedule(two_stage)
            optimal = optimal_gap_schedule(c)
            validate_schedule(optimal)
            ratio = synchronous_cost(two_stage) / synchronous_cost(optimal)
            assert ratio > 1.0
            ratios.append(ratio)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_two_stage_io_volume_scales_with_d_times_m(self):
        c = two_stage_gap_construction(d=6, m=12)
        instance = c.instance()
        two_stage = two_stage_schedule(
            chain_per_processor_bsp_schedule(c), instance, ClairvoyantPolicy()
        )
        optimal = optimal_gap_schedule(c)
        # the bad schedule reloads a whole group for (almost) every chain node
        assert two_stage.total_io_volume() > 0.5 * c.d * c.m
        assert optimal.total_io_volume() < 4 * c.m + 2 * c.d + 4


class TestLemmaConstructions:
    def test_partition_reduction_structure(self):
        dag, alpha = partition_reduction_dag([3, 1, 2, 2])
        assert alpha == 8
        assert dag.is_acyclic()
        assert dag.mu("v_prime") == 4
        assert set(dag.parents("c1")) == {"v_0", "v_1", "v_2", "v_3"}
        assert "c1" in dag.parents("c2")

    def test_partition_reduction_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_reduction_dag([])

    def test_sync_async_gap_structure(self):
        dag = sync_async_gap_construction(6, heavy_weight=50)
        assert dag.is_acyclic()
        heavy = [v for v in dag.nodes if dag.omega(v) == 50]
        # one heavy node per chain position per pair: 2 * (P/2) nodes
        assert len(heavy) == 6
        with pytest.raises(ValueError):
            sync_async_gap_construction(3)

    def test_lemma_5_3_gap_on_schedules(self):
        """Aligning heavy nodes in one superstep is much cheaper synchronously."""
        P = 4
        dag = sync_async_gap_construction(P, heavy_weight=100)
        instance = make_instance(dag, num_processors=P, cache_factor=10.0, g=0.0, L=0.0)
        from repro.core.two_stage import baseline_schedule

        base = baseline_schedule(instance)
        # the synchronous cost of any schedule is at least the critical path;
        # the async-optimal "diagonal" placement costs about (P/2) * heavy
        assert synchronous_cost(base.mbsp_schedule) >= 100

    def test_lemma_5_4_construction(self):
        dag = sync_vs_async_small_gap_construction(heavy_weight=60)
        assert dag.is_acyclic()
        assert dag.num_nodes == 10
        assert max(dag.omega(v) for v in dag.nodes) == 120

    def test_zipper_gadget_structure(self):
        dag = zipper_gadget(d=3, m=6)
        assert dag.is_acyclic()
        # single source w feeding everything
        assert dag.sources() == ["w"]
        assert minimum_cache_size(dag) <= 4 + 1  # r = 4 plus w in the proof
        with pytest.raises(ValueError):
            zipper_gadget(1, 5)


class TestLowerBounds:
    def test_bounds_are_consistent(self, small_instance):
        report = lower_bound_report(small_instance)
        assert report["compute"] == compute_lower_bound(small_instance)
        assert report["io"] == io_lower_bound(small_instance)
        assert report["synchronous"] >= report["compute"]
        assert report["asynchronous"] >= 0

    def test_no_schedule_beats_the_bounds(self, small_instance):
        from repro.core.two_stage import baseline_schedule

        base = baseline_schedule(small_instance)
        assert synchronous_cost(base.mbsp_schedule) >= synchronous_lower_bound(small_instance) - 1e-9
        assert asynchronous_cost(base.mbsp_schedule) >= asynchronous_lower_bound(small_instance) - 1e-9

    def test_optimal_gap_schedule_respects_bounds(self):
        c = two_stage_gap_construction(d=4, m=8)
        instance = c.instance(g=1.0, L=0.0)
        optimal = optimal_gap_schedule(c)
        assert synchronous_cost(optimal) >= synchronous_lower_bound(instance) - 1e-9
