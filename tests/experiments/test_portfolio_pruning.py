"""Golden-cost regression tests for bound-aware portfolio pruning.

Pruning with the default gap ``0.0`` skips an ILP member's solve only when
the two-stage baseline provably matches the theory lower bound, so a
portfolio run with pruning on and off must report *identical* best costs —
the pruned run just performs fewer solver calls.  These tests pin that
equivalence (and the exact skip counts) on a deterministic seed set: two
provably-optimal single-processor instances (chain, fork-join) and one
instance where the bound is not tight and the ILP must still run.  All ILP
solves are node-limited, so the costs are reproducible under load.
"""

import math

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, fork_join_dag, spmv
from repro.experiments.runner import ExperimentConfig
from repro.ilp import reset_solver_call_stats, solver_call_stats
from repro.portfolio import (
    DEFAULT_MEMBERS,
    PRUNED_STATUS_PREFIX,
    Portfolio,
    format_portfolio_table,
    is_pruned,
    run_member,
)
from repro.theory.bounds import instance_lower_bound


def _seed_dags():
    """Deterministic instances: two bound-tight at P=1, one that is not."""
    dags = [chain_dag(5), fork_join_dag(width=2, stages=1)]
    weighted = spmv(3, seed=1)
    assign_random_memory_weights(weighted, seed=7)
    dags.append(weighted)
    return dags


# node-limited ILP budgets keep the unpruned runs exactly reproducible; the
# step cap keeps the unpruned models small enough for a fast tier-1 run
CFG = ExperimentConfig(
    name="pruning-test",
    num_processors=1,
    ilp_time_limit=30.0,
    ilp_node_limit=40,
    step_cap=4,
)

#: Instances of :func:`_seed_dags` whose baseline provably hits the bound.
EXPECTED_PRUNED = {"chain_5": True, "forkjoin_w2_s1": True, "spmv_N3": False}


def test_seed_instances_cover_both_pruning_outcomes():
    """The fixture is meaningful: some baselines hit the bound, some do not."""
    from repro.core.two_stage import baseline_schedule

    for dag in _seed_dags():
        instance = CFG.instance_for(dag)
        bound = instance_lower_bound(instance, synchronous=True)
        base = baseline_schedule(instance, synchronous=True, seed=CFG.seed)
        assert base.cost >= bound - 1e-9  # the bound is valid
        tight = base.cost <= bound + 1e-9
        assert tight == EXPECTED_PRUNED[dag.name]


class TestPruningGoldenEquivalence:
    def test_pruning_on_off_identical_best_costs_with_expected_skips(self):
        dags = _seed_dags()
        pruned_rows = Portfolio(config=CFG, prune_gap=0.0).run(["ilp"], dags)
        plain_rows = Portfolio(config=CFG, prune_gap=None).run(["ilp"], dags)

        for with_pruning, without in zip(pruned_rows, plain_rows):
            assert with_pruning.best_cost == pytest.approx(without.best_cost, abs=1e-9)
            assert with_pruning.best_member == without.best_member
            expected = EXPECTED_PRUNED[with_pruning.instance_name]
            assert (with_pruning.num_pruned == 1) == expected
            assert without.num_pruned == 0
        assert sum(row.num_pruned for row in pruned_rows) == 2

    def test_pruned_run_makes_strictly_fewer_solver_calls(self):
        dags = _seed_dags()
        reset_solver_call_stats()
        Portfolio(config=CFG, prune_gap=0.0).run(["ilp"], dags)
        pruned_calls = solver_call_stats().total
        reset_solver_call_stats()
        Portfolio(config=CFG, prune_gap=None).run(["ilp"], dags)
        unpruned_calls = solver_call_stats().total
        reset_solver_call_stats()
        assert pruned_calls < unpruned_calls
        assert unpruned_calls == len(dags)  # one holistic solve per instance
        assert pruned_calls == sum(1 for tight in EXPECTED_PRUNED.values() if not tight)

    def test_default_members_prune_only_the_ilp_member(self):
        dags = _seed_dags()[:2]
        rows = Portfolio(config=CFG, prune_gap=0.0).run(list(DEFAULT_MEMBERS), dags)
        for row in rows:
            assert row.pruned_members == ["ilp"]
            # two-stage members are never bound-pruned
            assert not row.member_status["cilk+lru"].startswith(PRUNED_STATUS_PREFIX)
            # on a provably optimal instance the pruned ILP member still wins
            # or ties the two-stage members
            assert row.member_costs["ilp"] == pytest.approx(row.best_cost)

    def test_skip_reason_recorded_in_results(self):
        dag = _seed_dags()[0]
        result = run_member(dag, CFG, "ilp", prune_gap=0.0)
        assert is_pruned(result)
        assert result.solver_status.startswith(PRUNED_STATUS_PREFIX)
        assert "lower bound" in result.solver_status
        assert result.extra_costs["pruned"] == 1.0
        assert result.extra_costs["lower_bound"] == pytest.approx(result.baseline_cost)
        assert result.ilp_cost == result.baseline_cost

    def test_dac_member_is_never_pruned(self):
        """dac reports its schedule as-is, so pruning would change results."""
        dag = _seed_dags()[0]
        result = run_member(dag, CFG, "dac", prune_gap=0.0)
        assert not is_pruned(result)
        assert result.solver_status == "divide-and-conquer"

    def test_unpruned_member_has_no_skip_markers(self):
        dag = _seed_dags()[2]
        result = run_member(dag, CFG, "ilp", prune_gap=0.0)
        assert not is_pruned(result)
        assert "pruned" not in result.extra_costs

    def test_negative_or_none_gap_disables_pruning(self):
        dag = _seed_dags()[0]
        for gap in (None, -0.5):
            result = run_member(dag, CFG, "ilp", prune_gap=gap)
            assert not is_pruned(result)

    def test_wide_gap_prunes_everything(self):
        dags = _seed_dags()
        reset_solver_call_stats()
        rows = Portfolio(config=CFG, prune_gap=100.0).run(["ilp"], dags)
        assert solver_call_stats().total == 0
        assert all(row.num_pruned == 1 for row in rows)
        # the member then reports exactly the baseline cost everywhere
        for row in rows:
            assert math.isfinite(row.best_cost)
        reset_solver_call_stats()

    def test_table_annotates_pruned_cells(self):
        rows = Portfolio(config=CFG, prune_gap=0.0).run(["ilp"], _seed_dags()[:2])
        text = format_portfolio_table(rows)
        assert "*" in text
        assert "skipped by bound pruning" in text

    def test_pruning_parallel_run_identical_to_serial(self):
        dags = _seed_dags()
        serial = Portfolio(config=CFG, prune_gap=0.0).run(["ilp"], dags, workers=1)
        parallel = Portfolio(config=CFG, prune_gap=0.0).run(["ilp"], dags, workers=3)
        for left, right in zip(serial, parallel):
            assert left.member_costs == right.member_costs
            assert left.member_status == right.member_status
            assert left.pruned_members == right.pruned_members
