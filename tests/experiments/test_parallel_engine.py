"""Unit tests for the parallel experiment engine.

Fast jobs (two-stage portfolio members) exercise the pool, cache, JSONL
stream and resume logic; a single short ILP job keeps the solver path
covered end to end.
"""

import json

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import fork_join_dag, spmv
from repro.exceptions import ConfigurationError
from repro.experiments.parallel import (
    EngineStats,
    ExperimentEngine,
    ExperimentJob,
    execute_job,
    run_jobs,
)
from repro.experiments.reporting import read_jsonl
from repro.experiments.runner import ExperimentConfig, InstanceResult, run_dataset


def _dags(count=3):
    dags = []
    for seed in range(1, count + 1):
        dag = spmv(3, seed=seed)
        assign_random_memory_weights(dag, seed=seed)
        dag.name = f"spmv_{seed}"
        dags.append(dag)
    return dags


CFG = ExperimentConfig(name="engine-test", num_processors=2, ilp_time_limit=1.0)

# For jobs that actually solve ILPs, bound the solver by branch-and-bound
# *nodes* instead of wall clock: node-limited solves return the same
# incumbent on a loaded CI machine as on a fast laptop, so the
# serial-vs-parallel equality below cannot flake on solver noise.
ILP_CFG = CFG.variant(ilp_time_limit=10.0, ilp_node_limit=50, step_cap=6)


def _fast_jobs(dags=None, member="bspg+clairvoyant"):
    return [
        ExperimentJob.make("portfolio", dag, CFG, member=member)
        for dag in (dags or _dags())
    ]


class TestExperimentJob:
    def test_key_is_stable_across_rebuilds(self):
        job1 = _fast_jobs()[0]
        job2 = _fast_jobs()[0]
        assert job1.key() == job2.key()

    def test_key_distinguishes_dags_configs_and_params(self):
        dags = _dags()
        base = ExperimentJob.make("portfolio", dags[0], CFG, member="bspg+clairvoyant")
        other_dag = ExperimentJob.make("portfolio", dags[1], CFG, member="bspg+clairvoyant")
        other_cfg = ExperimentJob.make(
            "portfolio", dags[0], CFG.variant(num_processors=4), member="bspg+clairvoyant"
        )
        other_member = ExperimentJob.make("portfolio", dags[0], CFG, member="cilk+lru")
        other_kind = ExperimentJob.make("instance", dags[0], CFG)
        keys = {j.key() for j in (base, other_dag, other_cfg, other_member, other_kind)}
        assert len(keys) == 5

    def test_dag_roundtrip(self):
        dag = _dags(1)[0]
        job = ExperimentJob.make("instance", dag, CFG)
        rebuilt = job.dag()
        assert rebuilt.name == dag.name
        assert set(rebuilt.edges()) == set(dag.edges())
        assert job.instance_name == dag.name

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentJob.make("quantum", _dags(1)[0], CFG)

    def test_execute_job_unknown_kind(self):
        job = ExperimentJob.make("instance", _dags(1)[0], CFG)
        broken = ExperimentJob(kind="quantum", dag_data=job.dag_data, config=CFG)
        with pytest.raises(ConfigurationError):
            execute_job(broken)


class TestEngineExecution:
    def test_serial_results_in_submission_order(self):
        jobs = _fast_jobs()
        results = ExperimentEngine(workers=1).run(jobs)
        assert [r.instance_name for r in results] == [j.instance_name for j in jobs]

    def test_parallel_identical_to_serial(self):
        jobs = _fast_jobs() + _fast_jobs(member="cilk+lru")
        serial = ExperimentEngine(workers=1).run(jobs)
        parallel = ExperimentEngine(workers=3).run(jobs)
        assert [r.fingerprint() for r in serial] == [r.fingerprint() for r in parallel]

    def test_parallel_ilp_identical_to_serial(self):
        dag = fork_join_dag(width=3, stages=1)
        assign_random_memory_weights(dag, seed=3)
        dag.name = "fj"
        jobs = [ExperimentJob.make("instance", dag, ILP_CFG) for _ in range(2)]
        serial = ExperimentEngine(workers=1).run(jobs)
        parallel = ExperimentEngine(workers=2).run(jobs)
        assert [r.fingerprint() for r in serial] == [r.fingerprint() for r in parallel]

    def test_stats_accumulate(self):
        engine = ExperimentEngine(workers=1)
        engine.run(_fast_jobs())
        engine.run(_fast_jobs())
        assert engine.stats.total == 6
        assert engine.stats.executed == 6
        assert "6 jobs" in engine.stats.describe()

    def test_run_one(self):
        result = ExperimentEngine(workers=1).run_one(_fast_jobs()[0])
        assert isinstance(result, InstanceResult)
        assert result.instance_name == "spmv_1"

    def test_run_jobs_convenience(self):
        results = run_jobs(_fast_jobs(), workers=1)
        assert len(results) == 3


class TestEngineCache:
    def test_second_run_hits_cache_with_zero_executions(self, tmp_path):
        jobs = _fast_jobs()
        first = ExperimentEngine(workers=1, cache_dir=tmp_path)
        r1 = first.run(jobs)
        assert first.stats.executed == len(jobs)
        second = ExperimentEngine(workers=2, cache_dir=tmp_path)
        r2 = second.run(jobs)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(jobs)
        assert [r.fingerprint() for r in r1] == [r.fingerprint() for r in r2]

    def test_config_change_misses_cache(self, tmp_path):
        dag = _dags(1)[0]
        job = ExperimentJob.make("portfolio", dag, CFG, member="bspg+clairvoyant")
        other = ExperimentJob.make(
            "portfolio", dag, CFG.variant(cache_factor=5.0), member="bspg+clairvoyant"
        )
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        engine.run([job])
        engine.run([other])
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 0

    def test_corrupt_cache_entry_is_re_executed(self, tmp_path):
        jobs = _fast_jobs()[:1]
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        engine.run(jobs)
        cache_file = tmp_path / f"{jobs[0].key()}.json"
        assert cache_file.is_file()
        cache_file.write_text("{not json")
        again = ExperimentEngine(workers=1, cache_dir=tmp_path)
        results = again.run(jobs)
        assert again.stats.executed == 1
        assert results[0].instance_name == "spmv_1"


class TestResultsStreamAndResume:
    def test_jsonl_stream_records_every_execution(self, tmp_path):
        path = tmp_path / "results.jsonl"
        jobs = _fast_jobs()
        ExperimentEngine(workers=1, results_path=path).run(jobs)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == len(jobs)
        assert {r["key"] for r in records} == {j.key() for j in jobs}
        assert all(r["kind"] == "portfolio" for r in records)
        loaded = read_jsonl(path)
        assert [r.instance_name for r in loaded] == [j.instance_name for j in jobs]

    def test_resume_skips_recorded_jobs(self, tmp_path):
        path = tmp_path / "results.jsonl"
        jobs = _fast_jobs()
        ExperimentEngine(workers=1, results_path=path).run(jobs[:2])
        resumed = ExperimentEngine(workers=1, results_path=path, resume=True)
        results = resumed.run(jobs)
        assert resumed.stats.resumed == 2
        assert resumed.stats.executed == 1
        fresh = ExperimentEngine(workers=1).run(jobs)
        assert [r.fingerprint() for r in results] == [r.fingerprint() for r in fresh]

    def test_cache_hits_are_streamed_to_results_file(self, tmp_path):
        """The results file records the whole batch, even when every job is
        served from the disk cache."""
        jobs = _fast_jobs()
        ExperimentEngine(workers=1, cache_dir=tmp_path / "cache").run(jobs)
        path = tmp_path / "late.jsonl"
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path / "cache", results_path=path)
        engine.run(jobs)
        assert engine.stats.cache_hits == len(jobs)
        assert len(read_jsonl(path)) == len(jobs)

    def test_resume_populates_disk_cache(self, tmp_path):
        """Results restored from the JSONL file become cache entries too, so
        a later cache-only run does not re-execute anything."""
        path = tmp_path / "results.jsonl"
        jobs = _fast_jobs()
        ExperimentEngine(workers=1, results_path=path).run(jobs)
        cache = tmp_path / "cache"
        resumed = ExperimentEngine(workers=1, results_path=path, resume=True,
                                   cache_dir=cache)
        resumed.run(jobs)
        assert resumed.stats.resumed == len(jobs)
        cache_only = ExperimentEngine(workers=1, cache_dir=cache)
        cache_only.run(jobs)
        assert cache_only.stats.cache_hits == len(jobs)
        assert cache_only.stats.executed == 0

    def test_rerun_against_same_results_file_does_not_duplicate(self, tmp_path):
        """Cache-served re-runs must not append records already in the file
        (read_jsonl would double-count every instance otherwise)."""
        path = tmp_path / "results.jsonl"
        cache = tmp_path / "cache"
        jobs = _fast_jobs()
        ExperimentEngine(workers=1, cache_dir=cache, results_path=path).run(jobs)
        ExperimentEngine(workers=1, cache_dir=cache, results_path=path).run(jobs)
        assert len(read_jsonl(path)) == len(jobs)

    def test_resume_without_results_path_warns(self):
        with pytest.warns(UserWarning, match="resume"):
            ExperimentEngine(workers=1, resume=True)

    def test_resume_tolerates_truncated_line(self, tmp_path):
        path = tmp_path / "results.jsonl"
        jobs = _fast_jobs()
        ExperimentEngine(workers=1, results_path=path).run(jobs)
        with open(path, "a") as handle:
            handle.write('{"key": "truncat')  # simulated crash mid-write
        resumed = ExperimentEngine(workers=1, results_path=path, resume=True)
        results = resumed.run(jobs)
        assert resumed.stats.resumed == 3
        assert len(results) == 3


class TestRunDatasetIntegration:
    def test_run_dataset_serial_equals_parallel(self):
        dags = _dags(2)
        serial = run_dataset(dags, ILP_CFG, workers=1)
        parallel = run_dataset(dags, ILP_CFG, workers=2)
        assert [r.fingerprint() for r in serial] == [r.fingerprint() for r in parallel]

    def test_run_dataset_uses_cache(self, tmp_path):
        dags = _dags(2)
        run_dataset(dags, ILP_CFG, cache_dir=tmp_path)
        from repro.experiments.parallel import ExperimentEngine as Engine

        engine = Engine(workers=1, cache_dir=tmp_path)
        run_dataset(dags, ILP_CFG, engine=engine)
        assert engine.stats.executed == 0
        assert engine.stats.cache_hits == 2

    def test_instance_result_roundtrip(self):
        result = InstanceResult(
            instance_name="x", num_nodes=5, baseline_cost=10.0, ilp_cost=8.0,
            solver_status="ok", solve_time=1.25, extra_costs={"weak": 12.0},
        )
        rebuilt = InstanceResult.from_dict(result.to_dict())
        assert rebuilt == result
        assert "solve_time" not in result.fingerprint()


def test_engine_stats_dataclass_defaults():
    stats = EngineStats()
    assert (stats.total, stats.executed, stats.cache_hits, stats.resumed) == (0, 0, 0, 0)
