"""Tests for the benchmark datasets and the reporting helpers."""

import pytest

from repro.dag.analysis import minimum_cache_size
from repro.experiments.datasets import (
    small_dataset,
    small_dataset_specs,
    tiny_dataset,
    tiny_dataset_specs,
)
from repro.experiments.reporting import (
    format_results_table,
    results_to_rows,
    summarize_ratios,
    write_csv,
)
from repro.experiments.runner import InstanceResult, geometric_mean
from repro.experiments import paper_reference


class TestDatasets:
    def test_tiny_default_scale_properties(self):
        dags = tiny_dataset(scale="default")
        assert len(dags) >= 12
        for dag in dags:
            assert dag.is_acyclic()
            assert dag.num_nodes >= 10
            assert all(1 <= dag.mu(v) <= 5 for v in dag.nodes)
            assert minimum_cache_size(dag) > 0

    def test_tiny_paper_scale_has_15_instances(self):
        specs = tiny_dataset_specs(scale="paper")
        assert len(specs) == 15
        names = [s.name for s in specs]
        assert "bicgstab" in names and "kNN_N6_K4" in names

    def test_small_dataset_is_larger_than_tiny(self):
        tiny = tiny_dataset(scale="default", limit=3)
        small = small_dataset(scale="default", limit=3)
        assert min(d.num_nodes for d in small) > min(d.num_nodes for d in tiny)

    def test_small_dataset_has_10_specs(self):
        assert len(small_dataset_specs("default")) == 10
        assert len(small_dataset_specs("paper")) == 10

    def test_deterministic_builds(self):
        a = tiny_dataset(scale="default", limit=2)
        b = tiny_dataset(scale="default", limit=2)
        for dag_a, dag_b in zip(a, b):
            assert set(dag_a.edges()) == set(dag_b.edges())
            assert [dag_a.mu(v) for v in dag_a.nodes] == [dag_b.mu(v) for v in dag_b.nodes]

    def test_limit_parameter(self):
        assert len(tiny_dataset(limit=4)) == 4

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            tiny_dataset_specs(scale="huge")
        with pytest.raises(ValueError):
            small_dataset_specs(scale="huge")

    def test_instance_names_match_paper_tables(self):
        names = {s.name for s in tiny_dataset_specs("paper")}
        assert names == set(paper_reference.TABLE1.keys())
        small_names = {s.name for s in small_dataset_specs("paper")}
        assert small_names == set(paper_reference.TABLE2.keys())


def _fake_results():
    return [
        InstanceResult("alpha", 20, baseline_cost=100.0, ilp_cost=80.0),
        InstanceResult("beta", 30, baseline_cost=200.0, ilp_cost=200.0, extra_costs={"weak": 250.0}),
    ]


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert geometric_mean([0.5, 2.0]) == pytest.approx(1.0)
        assert geometric_mean([]) == 1.0
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_ratio_property(self):
        res = InstanceResult("x", 10, baseline_cost=100.0, ilp_cost=76.0)
        assert res.ratio == pytest.approx(0.76)
        zero = InstanceResult("z", 10, baseline_cost=0.0, ilp_cost=0.0)
        assert zero.ratio == 1.0

    def test_format_results_table(self):
        text = format_results_table(_fake_results(), title="Demo", paper_reference=paper_reference.TABLE1)
        assert "Demo" in text
        assert "alpha" in text
        assert "geometric-mean" in text

    def test_results_to_rows_includes_extras(self):
        rows = results_to_rows(_fake_results())
        assert rows[1]["weak"] == 250.0
        assert rows[0]["ratio"] == pytest.approx(0.8)

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(_fake_results(), path)
        content = path.read_text()
        assert "instance" in content.splitlines()[0]
        assert "alpha" in content
        write_csv([], tmp_path / "empty.csv")
        assert (tmp_path / "empty.csv").read_text() == ""

    def test_summarize_ratios(self):
        summary = summarize_ratios({"base": _fake_results()})
        assert summary["base"] == pytest.approx(geometric_mean([0.8, 1.0]))


class TestPaperReference:
    def test_reference_tables_are_consistent(self):
        assert set(paper_reference.TABLE3_EXTRA) == set(paper_reference.TABLE1)
        for config, table in paper_reference.TABLE4.items():
            assert set(table) == set(paper_reference.TABLE1), config
        assert 0.5 < paper_reference.GEOMEAN_RATIOS["base"] < 1.0

    def test_paper_ilp_never_worse_in_table1(self):
        for base, ilp in paper_reference.TABLE1.values():
            assert ilp <= base
