"""Golden equivalence: legacy member names vs. the pipeline runner.

The ``repro.pipeline`` redesign deleted the hand-written per-member dispatch
(``_run_ilp_member`` / ``_two_stage_member`` / ``_run_refined_member``) and
replaced every portfolio member with a declarative spec executed by one
generic runner.  These tests pin that the replacement is *behaviour
preserving*: the **old path** — the pre-redesign dispatch logic, preserved
verbatim below as the reference implementation — and the **pipeline path**
(:func:`repro.portfolio.run_member`) produce byte-identical
``InstanceResult`` fingerprints for every legacy member name.

All ILP solves are node-limited with a step cap, so the comparison is exact
and reproducible under load.  The single intentional divergence is pinned in
:class:`TestKnownDivergence`: a *pruned* ``dac+refine`` now keeps the dac
stage's ``parts`` diagnostic in ``extra_costs`` (the old path dropped it).
"""

import math

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, spmv
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    run_divide_and_conquer,
    run_divide_and_conquer_instance,
    run_instance,
)
from repro.core.scheduler import MbspIlpScheduler
from repro.core.two_stage import TwoStageResult, baseline_schedule, run_two_stage
from repro.portfolio import available_members, run_member, schedule_digest
from repro.refine import RefineConfig, Refiner
from repro.theory.bounds import instance_lower_bound

# ----------------------------------------------------------------------
# the old path: the pre-redesign run_member dispatch, frozen verbatim
# ----------------------------------------------------------------------
PRUNED_STATUS_PREFIX = "skipped:"


def _within_gap(cost, bound, prune_gap):
    return cost <= (1.0 + prune_gap) * bound + 1e-9


def _legacy_two_stage_member(dag, config, scheduler, policy, instance=None):
    if instance is None:
        instance = config.instance_for(dag)
    bsp_ilp_config = None
    if scheduler in ("bsp-ilp", "bsp_ilp", "ilp"):
        from repro.bsp.ilp import BspIlpConfig
        from repro.ilp import SolverOptions

        bsp_ilp_config = BspIlpConfig(
            solver_options=SolverOptions(
                time_limit=config.ilp_time_limit, node_limit=config.ilp_node_limit
            ),
            backend=config.ilp_backend,
        )
    return run_two_stage(
        instance,
        scheduler=scheduler,
        policy=policy or None,
        synchronous=config.synchronous,
        seed=config.seed,
        bsp_ilp_config=bsp_ilp_config,
    ), instance


def _legacy_inapplicable(dag, exc):
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=math.inf,
        ilp_cost=math.inf,
        solver_status=f"inapplicable: {exc}",
        extra_costs={"member_cost": math.inf},
    )


def _legacy_ilp_member(dag, config, prune_gap):
    if prune_gap is None or prune_gap < 0:
        return run_instance(dag, config)
    instance = config.instance_for(dag)
    bound = instance_lower_bound(instance, synchronous=config.synchronous)
    base = baseline_schedule(instance, synchronous=config.synchronous, seed=config.seed)
    if not _within_gap(base.cost, bound, prune_gap):
        return run_instance(dag, config, instance=instance, baseline=base)
    reason = (
        f"{PRUNED_STATUS_PREFIX} baseline cost {base.cost:g} is within "
        f"{prune_gap:.1%} of the lower bound {bound:g}; ILP solve pruned"
    )
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=base.cost,
        ilp_cost=base.cost,
        solver_status=reason,
        extra_costs={"member_cost": base.cost, "lower_bound": bound, "pruned": 1.0},
    )


def _legacy_refined_member(dag, config, member, prune_gap):
    base = member[: -len("+refine")]
    prune = prune_gap is not None and prune_gap >= 0
    refiner = Refiner(config.refine)

    def refined_result(schedule, unrefined_cost, baseline_cost):
        refined = refiner.refine(schedule, synchronous=config.synchronous)
        cost = min(refined.final_cost, unrefined_cost)
        return InstanceResult(
            instance_name=dag.name,
            num_nodes=dag.num_nodes,
            baseline_cost=baseline_cost,
            ilp_cost=cost,
            solver_status=f"schedule:{schedule_digest(refined.schedule)}",
            extra_costs={"member_cost": cost, **refined.telemetry(unrefined_cost)},
        )

    def pruned_result(cost, bound):
        reason = (
            f"{PRUNED_STATUS_PREFIX} base cost {cost:g} is within "
            f"{prune_gap:.1%} of the lower bound {bound:g}; refinement pruned"
        )
        return InstanceResult(
            instance_name=dag.name,
            num_nodes=dag.num_nodes,
            baseline_cost=cost,
            ilp_cost=cost,
            solver_status=reason,
            extra_costs={"member_cost": cost, "lower_bound": bound, "pruned": 1.0},
        )

    instance = config.instance_for(dag) if (prune or base == "ilp") else None
    bound = None
    if prune and (base == "ilp" or base in ("dac", "divide-and-conquer")):
        bound = instance_lower_bound(instance, synchronous=config.synchronous)

    if base == "ilp":
        baseline = baseline_schedule(
            instance, synchronous=config.synchronous, seed=config.seed
        )
        if prune and _within_gap(baseline.cost, bound, prune_gap):
            return pruned_result(baseline.cost, bound)
        refined_base = refiner.refine(
            baseline.mbsp_schedule, synchronous=config.synchronous
        )
        seeded = TwoStageResult(
            bsp_schedule=baseline.bsp_schedule,
            mbsp_schedule=refined_base.schedule,
            cost=refined_base.final_cost,
            scheduler_name=f"{baseline.scheduler_name}+refine",
            policy_name=baseline.policy_name,
        )
        ilp = MbspIlpScheduler(config.ilp_config()).schedule(instance, baseline=seeded)
        result = refined_result(ilp.best_schedule, ilp.best_cost, baseline.cost)
        result.solver_status = f"{ilp.solver_status}; {result.solver_status}"
        result.solve_time = ilp.solve_time
        return result
    if base in ("dac", "divide-and-conquer"):
        dac = run_divide_and_conquer(dag, config, instance=instance)
        if prune and _within_gap(dac.dac_cost, bound, prune_gap):
            result = pruned_result(dac.dac_cost, bound)
            result.baseline_cost = dac.baseline.cost
            return result
        result = refined_result(dac.dac_schedule, dac.dac_cost, dac.baseline.cost)
        result.extra_costs["parts"] = float(dac.partition.num_parts)
        return result
    scheduler, _, policy = base.partition("+")
    try:
        two_stage, instance = _legacy_two_stage_member(
            dag, config, scheduler, policy, instance=instance
        )
    except ConfigurationError as exc:
        return _legacy_inapplicable(dag, exc)
    if prune:
        bound = instance_lower_bound(instance, synchronous=config.synchronous)
        if _within_gap(two_stage.cost, bound, prune_gap):
            return pruned_result(two_stage.cost, bound)
    return refined_result(two_stage.mbsp_schedule, two_stage.cost, two_stage.cost)


def legacy_run_member(dag, config, member, prune_gap=None):
    """The pre-redesign ``run_member``, verbatim (the golden reference)."""
    name = member.strip().lower()
    if name.endswith("+refine"):
        return _legacy_refined_member(dag, config, name, prune_gap)
    if name == "ilp":
        result = _legacy_ilp_member(dag, config, prune_gap)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    if name in ("dac", "divide-and-conquer"):
        result = run_divide_and_conquer_instance(dag, config)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    scheduler, sep, policy = name.partition("+")
    try:
        two_stage, _ = _legacy_two_stage_member(dag, config, scheduler, policy)
    except ConfigurationError as exc:
        return _legacy_inapplicable(dag, exc)
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=two_stage.cost,
        ilp_cost=two_stage.cost,
        solver_status=f"schedule:{schedule_digest(two_stage.mbsp_schedule)}",
        extra_costs={"member_cost": two_stage.cost},
    )


# ----------------------------------------------------------------------
# the comparison
# ----------------------------------------------------------------------
def _roundtrip(dag):
    """Normalize a DAG through the job serialization round trip.

    Engine/session jobs have always shipped DAGs in their plain-dict form
    (``ExperimentJob.dag_data``); schedulers whose tie-breaking follows
    node iteration order (cilk work stealing) are only bit-comparable when
    both paths see the identically-ordered graph.
    """
    from repro.dag.io import dag_from_dict, dag_to_dict

    return dag_from_dict(dag_to_dict(dag))


def _spmv_dag():
    dag = spmv(3, seed=1)
    assign_random_memory_weights(dag, seed=11)
    dag.name = "spmv_eq"
    return _roundtrip(dag)


# node-limited, step-capped solves: exactly reproducible under load, and
# cheap enough that every member runs in the tier-1 suite
CFG = ExperimentConfig(
    name="pipeline-equivalence",
    num_processors=2,
    ilp_time_limit=30.0,
    ilp_node_limit=30,
    step_cap=4,
    refine=RefineConfig(budget=300),
)
P1 = CFG.variant(num_processors=1)


def session_run_member(dag, config, member, prune_gap=None):
    """Evaluate one member through the Session-backed execution path.

    This is the production route since the ``repro.exec`` redesign: the
    member becomes a one-node run plan executed by a
    :class:`~repro.exec.Session` (exactly what the engine shim, the
    portfolio and ``repro exec run`` submit), so the golden comparison
    below pins the *whole* Session path byte-identical to the historical
    dispatch — not merely the pipeline runner.
    """
    from repro.exec import Session, plan_pipelines

    plan = plan_pipelines([member], [dag], config, prune_gap=prune_gap)
    return Session().run(plan)[0]


@pytest.mark.parametrize("member", available_members())
def test_legacy_member_fingerprints_identical(member):
    dag = _spmv_dag()
    old = legacy_run_member(dag, CFG, member)
    new = session_run_member(dag, CFG, member)
    assert new.fingerprint() == old.fingerprint()


@pytest.mark.parametrize(
    "member", ["dfs+clairvoyant", "dfs+clairvoyant+refine", "ilp", "ilp+refine"]
)
def test_single_processor_fingerprints_identical(member):
    dag = chain_dag(5)
    old = legacy_run_member(dag, P1, member)
    new = run_member(dag, P1, member)
    assert new.fingerprint() == old.fingerprint()


@pytest.mark.parametrize(
    "member", ["ilp", "ilp+refine", "bspg+clairvoyant+refine"]
)
def test_pruned_fingerprints_identical(member):
    """Bound-pruned results (skip status, extras) match the old path too —
    through the Session-backed route, prune gap and all."""
    dag = _roundtrip(chain_dag(5))
    old = legacy_run_member(dag, P1, member, prune_gap=0.0)
    new = session_run_member(dag, P1, member, prune_gap=0.0)
    assert old.solver_status.startswith(PRUNED_STATUS_PREFIX)
    assert new.fingerprint() == old.fingerprint()


@pytest.mark.slow
@pytest.mark.parametrize("member", available_members())
def test_legacy_member_fingerprints_identical_on_tiny_dataset(member):
    from repro.experiments.datasets import tiny_dataset

    for dag in tiny_dataset(limit=3):
        old = legacy_run_member(dag, CFG, member)
        new = run_member(dag, CFG, member)
        assert new.fingerprint() == old.fingerprint()


class TestKnownDivergence:
    def test_pruned_dac_refine_keeps_the_parts_diagnostic(self):
        """The one intentional improvement over the old path: a pruned
        ``dac+refine`` no longer drops the dac stage's ``parts`` extra.
        Everything else about the result is unchanged."""
        dag = chain_dag(5)
        old = legacy_run_member(dag, P1, "dac+refine", prune_gap=0.0)
        new = run_member(dag, P1, "dac+refine", prune_gap=0.0)
        old_fp, new_fp = old.fingerprint(), new.fingerprint()
        assert new_fp["extra_costs"].pop("parts") == 1.0
        assert "parts" not in old_fp["extra_costs"]
        assert new_fp == old_fp


def test_dispatch_functions_are_gone():
    """The acceptance bar: members.py's per-member dispatch is deleted, not
    wrapped — the only executor left is the generic pipeline runner."""
    import repro.portfolio.members as members

    for legacy_fn in ("_run_ilp_member", "_two_stage_member", "_run_refined_member"):
        assert not hasattr(members, legacy_fn)
