"""Tests for the scheduler portfolio (repro.portfolio)."""

import math

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import iterated_spmv, spmv
from repro.exceptions import ConfigurationError
from repro.experiments.parallel import ExperimentEngine
from repro.experiments.runner import ExperimentConfig
from repro.portfolio import (
    DEFAULT_MEMBERS,
    Portfolio,
    available_members,
    format_portfolio_table,
    run_member,
    schedule_digest,
)

FAST_MEMBERS = ["bspg+clairvoyant", "cilk+lru"]


def _dags():
    out = []
    for name, dag in [
        ("spmv_a", spmv(3, seed=1)),
        ("spmv_b", spmv(4, seed=2)),
        ("exp_a", iterated_spmv(3, 2, seed=3)),
    ]:
        assign_random_memory_weights(dag, seed=11)
        dag.name = name
        out.append(dag)
    return out


CFG = ExperimentConfig(name="portfolio-test", num_processors=2, ilp_time_limit=1.0)


class TestMembers:
    def test_available_members_cover_defaults(self):
        members = available_members()
        assert set(DEFAULT_MEMBERS) <= set(members)
        assert "ilp" in members and "dac" in members
        assert "dfs+clairvoyant" in members

    def test_two_stage_member_reports_cost_and_digest(self):
        dag = _dags()[0]
        result = run_member(dag, CFG, "bspg+clairvoyant")
        assert result.baseline_cost == result.ilp_cost > 0
        assert result.extra_costs["member_cost"] == result.ilp_cost
        assert result.solver_status.startswith("schedule:")

    def test_inapplicable_member_reports_infinite_cost(self):
        dag = _dags()[0]
        result = run_member(dag, CFG, "dfs+clairvoyant")  # dfs needs P = 1
        assert math.isinf(result.extra_costs["member_cost"])
        assert result.solver_status.startswith("inapplicable")

    def test_dfs_member_applies_on_single_processor(self):
        dag = _dags()[0]
        result = run_member(dag, CFG.variant(num_processors=1), "dfs+clairvoyant")
        assert math.isfinite(result.ilp_cost) and result.ilp_cost > 0

    def test_ilp_member(self):
        dag = _dags()[0]
        result = run_member(dag, CFG, "ilp")
        assert result.ilp_cost <= result.baseline_cost + 1e-9
        assert result.extra_costs["member_cost"] == result.ilp_cost

    def test_malformed_member_rejected(self):
        with pytest.raises(ConfigurationError):
            run_member(_dags()[0], CFG, "quantum")


class TestPortfolio:
    def test_picks_cheapest_member_per_instance(self):
        rows = Portfolio(config=CFG).run(FAST_MEMBERS, _dags())
        assert len(rows) == 3
        for row in rows:
            assert set(row.member_costs) == set(FAST_MEMBERS)
            assert row.best_cost == min(row.member_costs.values())
            assert row.member_costs[row.best_member] == row.best_cost
            assert row.ranking[0] == row.best_member

    def test_parallel_run_identical_to_serial(self):
        dags = _dags()
        serial = Portfolio(config=CFG).run(FAST_MEMBERS, dags, workers=1)
        parallel = Portfolio(config=CFG).run(FAST_MEMBERS, dags, workers=3)
        for left, right in zip(serial, parallel):
            assert left.member_costs == right.member_costs
            assert left.member_status == right.member_status  # incl. digests
            assert left.best_member == right.best_member

    def test_inapplicable_member_never_wins(self):
        rows = Portfolio(config=CFG).run(FAST_MEMBERS + ["dfs+clairvoyant"], _dags())
        for row in rows:
            assert row.best_member != "dfs+clairvoyant"
            assert math.isinf(row.member_costs["dfs+clairvoyant"])

    def test_unknown_member_rejected(self):
        with pytest.raises(ConfigurationError):
            Portfolio(config=CFG).run(["warp-drive"], _dags())

    def test_empty_member_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Portfolio(config=CFG).run([], _dags())

    def test_cached_rerun_executes_nothing(self, tmp_path):
        dags = _dags()
        first_engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        first = Portfolio(config=CFG).run(FAST_MEMBERS, dags, engine=first_engine)
        second_engine = ExperimentEngine(workers=2, cache_dir=tmp_path)
        second = Portfolio(config=CFG).run(FAST_MEMBERS, dags, engine=second_engine)
        assert second_engine.stats.executed == 0
        assert second_engine.stats.cache_hits == len(dags) * len(FAST_MEMBERS)
        for left, right in zip(first, second):
            assert left.member_costs == right.member_costs
            assert left.best_member == right.best_member

    def test_format_portfolio_table(self):
        rows = Portfolio(config=CFG).run(FAST_MEMBERS, _dags()[:2])
        text = format_portfolio_table(rows)
        for member in FAST_MEMBERS:
            assert member in text
        assert "winner" in text
        assert "spmv_a" in text


def test_schedule_digest_is_stable_and_sensitive():
    from repro.cache.conversion import two_stage_schedule
    from repro.cache.policies import ClairvoyantPolicy, LruPolicy
    from repro.bsp.greedy import greedy_bsp_schedule
    from repro.model.instance import make_instance

    dag = _dags()[0]
    instance = make_instance(dag, num_processors=2, cache_factor=1.0, g=1.0, L=10.0)
    bsp = greedy_bsp_schedule(dag, 2)
    clair = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
    clair_again = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
    lru = two_stage_schedule(bsp, instance, LruPolicy())
    assert schedule_digest(clair) == schedule_digest(clair_again)
    assert schedule_digest(clair) != schedule_digest(lru)
