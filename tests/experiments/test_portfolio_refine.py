"""Refined portfolio members: naming, pruning, and the golden improvement test.

The acceptance bar for the refinement subsystem: on the tiny dataset, adding
``"bspg+clairvoyant+refine"`` to the default portfolio strictly improves the
best cost on at least one instance, while the total portfolio wall time
stays within 2x of the unrefined run (refinement costs milliseconds; the ILP
member dominates both runs).
"""

import math
import time

import pytest

from repro.dag.generators import chain_dag
from repro.experiments.datasets import tiny_dataset
from repro.experiments.runner import ExperimentConfig
from repro.ilp import reset_solver_call_stats, solver_call_stats
from repro.portfolio import (
    DEFAULT_MEMBERS,
    REFINE_SUFFIX,
    Portfolio,
    available_members,
    base_member_name,
    is_pruned,
    is_prunable_member,
    is_refined_member,
    run_member,
)
from repro.refine import RefineConfig


CFG = ExperimentConfig(name="portfolio-refine-test", num_processors=2,
                       ilp_time_limit=1.0)


def _tiny_dag():
    return tiny_dataset(limit=1)[0]


class TestRefinedMemberNaming:
    def test_every_base_member_has_a_refined_variant(self):
        members = available_members()
        refined = [m for m in members if m.endswith(REFINE_SUFFIX)]
        base = [m for m in members if not m.endswith(REFINE_SUFFIX)]
        assert len(refined) == len(base)
        assert set(base_member_name(m) for m in refined) == set(base)

    def test_refined_member_predicates(self):
        assert is_refined_member("bspg+clairvoyant+refine")
        assert not is_refined_member("bspg+clairvoyant")
        assert base_member_name("ilp+refine") == "ilp"
        assert base_member_name("cilk+lru") == "cilk+lru"
        assert is_prunable_member("ilp")
        assert is_prunable_member("dac+refine")
        assert is_prunable_member("bspg+clairvoyant+refine")
        assert not is_prunable_member("bspg+clairvoyant")
        assert not is_prunable_member("dac")


class TestRefinedMemberExecution:
    def test_two_stage_refined_member_never_worse_than_base(self):
        dag = _tiny_dag()
        base = run_member(dag, CFG, "bspg+clairvoyant")
        refined = run_member(dag, CFG, "bspg+clairvoyant+refine")
        assert refined.ilp_cost <= base.ilp_cost + 1e-9
        assert refined.extra_costs["member_cost"] == refined.ilp_cost
        assert refined.extra_costs["unrefined_cost"] == pytest.approx(base.ilp_cost)
        assert refined.solver_status.startswith("schedule:")
        assert refined.baseline_cost == pytest.approx(base.ilp_cost)

    def test_refined_member_is_deterministic(self):
        dag = _tiny_dag()
        first = run_member(dag, CFG, "bspg+clairvoyant+refine")
        second = run_member(dag, CFG, "bspg+clairvoyant+refine")
        assert first.fingerprint() == second.fingerprint()

    def test_refine_budget_threads_through_config(self):
        dag = _tiny_dag()
        no_budget = run_member(
            dag, CFG.variant(refine=RefineConfig(budget=0)),
            "bspg+clairvoyant+refine",
        )
        assert no_budget.extra_costs["refine_proposals"] == 0.0
        assert no_budget.ilp_cost == pytest.approx(
            no_budget.extra_costs["unrefined_cost"]
        )
        full = run_member(dag, CFG, "bspg+clairvoyant+refine")
        assert full.extra_costs["refine_proposals"] > 0

    def test_inapplicable_refined_member_reports_infinite_cost(self):
        result = run_member(_tiny_dag(), CFG, "dfs+clairvoyant+refine")
        assert math.isinf(result.extra_costs["member_cost"])
        assert result.solver_status.startswith("inapplicable")

    def test_ilp_refined_member_never_worse_than_refined_baseline(self):
        dag = _tiny_dag()
        plain = run_member(dag, CFG, "bspg+clairvoyant+refine")
        seeded = run_member(dag, CFG, "ilp+refine")
        assert seeded.ilp_cost <= plain.ilp_cost + 1e-9

    def test_dac_runner_honours_config_refine_enabled(self):
        """`experiment --table 2 --refine` routes through here: the dac
        per-instance runner must post-optimize when config.refine.enabled."""
        from repro.experiments.runner import run_divide_and_conquer_instance

        dag = _tiny_dag()
        # node-limited solves keep both runs deterministic under load, so the
        # cross-run cost comparison cannot flake on solver wall time
        cfg = CFG.variant(ilp_time_limit=30.0, ilp_node_limit=50)
        plain = run_divide_and_conquer_instance(dag, cfg)
        refined = run_divide_and_conquer_instance(
            dag, cfg.variant(refine=RefineConfig(enabled=True))
        )
        assert refined.ilp_cost <= refined.extra_costs["unrefined_cost"] + 1e-9
        assert refined.extra_costs["unrefined_cost"] == pytest.approx(plain.ilp_cost)
        assert refined.extra_costs["refine_proposals"] > 0
        assert "unrefined_cost" not in plain.extra_costs

    def test_dac_refined_member_runs(self):
        dag = _tiny_dag()
        result = run_member(dag, CFG, "dac+refine")
        assert math.isfinite(result.ilp_cost)
        assert result.ilp_cost <= result.extra_costs["unrefined_cost"] + 1e-9
        assert "parts" in result.extra_costs


class TestRefinedMemberPruning:
    P1 = ExperimentConfig(name="prune-refine", num_processors=1, ilp_time_limit=5.0,
                          ilp_node_limit=40, step_cap=4)

    def test_bound_tight_instance_prunes_refinement(self):
        reset_solver_call_stats()
        result = run_member(chain_dag(5), self.P1, "bspg+clairvoyant+refine",
                            prune_gap=0.0)
        assert is_pruned(result)
        assert result.extra_costs["pruned"] == 1.0
        assert result.extra_costs["lower_bound"] == pytest.approx(result.ilp_cost)
        assert "refinement pruned" in result.solver_status

    def test_ilp_refined_member_pruned_skips_the_solve(self):
        reset_solver_call_stats()
        result = run_member(chain_dag(5), self.P1, "ilp+refine", prune_gap=0.0)
        assert is_pruned(result)
        assert solver_call_stats().total == 0
        reset_solver_call_stats()

    def test_pruning_is_cost_neutral_at_gap_zero(self):
        for member in ("bspg+clairvoyant+refine", "ilp+refine"):
            pruned = run_member(chain_dag(5), self.P1, member, prune_gap=0.0)
            plain = run_member(chain_dag(5), self.P1, member, prune_gap=None)
            assert pruned.ilp_cost == pytest.approx(plain.ilp_cost, abs=1e-9)

    def test_loose_instance_not_pruned(self):
        result = run_member(_tiny_dag(), CFG, "bspg+clairvoyant+refine",
                            prune_gap=0.0)
        assert not is_pruned(result)


class TestGoldenRefinedPortfolio:
    """The acceptance criterion of the refinement subsystem (see module doc)."""

    # the first 6 tiny instances include several where local search strictly
    # beats every default member under the tier-1 solver budget
    LIMIT = 6

    def test_refined_member_strictly_improves_tiny_portfolio_within_2x_time(self):
        dags = tiny_dataset(limit=self.LIMIT)
        config = ExperimentConfig(name="refine-golden", ilp_time_limit=1.0)

        start = time.perf_counter()
        plain_rows = Portfolio(config=config).run(list(DEFAULT_MEMBERS), dags)
        plain_time = time.perf_counter() - start

        start = time.perf_counter()
        refined_rows = Portfolio(config=config).run(
            list(DEFAULT_MEMBERS) + ["bspg+clairvoyant+refine"], dags
        )
        refined_time = time.perf_counter() - start

        improved = []
        for plain, refined in zip(plain_rows, refined_rows):
            # the refined portfolio is a superset: never worse anywhere
            assert refined.best_cost <= plain.best_cost + 1e-9
            if refined.best_cost < plain.best_cost - 1e-9:
                assert refined.best_member == "bspg+clairvoyant+refine"
                improved.append(refined.instance_name)
        assert improved, "refinement should strictly win on >= 1 tiny instance"
        # wall-time acceptance bar: within 2x of the unrefined portfolio
        assert refined_time <= 2.0 * plain_time + 1.0
