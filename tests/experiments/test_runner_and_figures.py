"""Tests for the experiment runner, tables and figures.

ILP-solving runs use very short time limits here: the point is to exercise
the harness end to end (valid schedules, correct bookkeeping), not to obtain
good solutions — that is what the benchmarks are for.
"""

import pytest

from repro.experiments.figures import RatioSeries, render_figure4, theorem41_comparison
from repro.experiments.runner import (
    ExperimentConfig,
    _env_float,
    _env_int,
    dataset_limit,
    dataset_scale,
    env_bench_workers,
    env_cache_dir,
    run_divide_and_conquer_instance,
    run_instance,
    run_instance_with_baselines,
)
from repro.experiments.tables import geomean_summary, table4_configurations
from repro.dag.generators import fork_join_dag, simple_pagerank
from repro.dag.analysis import assign_random_memory_weights


@pytest.fixture
def tiny_dag():
    dag = fork_join_dag(width=3, stages=1)
    assign_random_memory_weights(dag, seed=1)
    dag.name = "tiny_forkjoin"
    return dag


FAST = ExperimentConfig(name="test", num_processors=2, ilp_time_limit=1.0)


class TestExperimentConfig:
    def test_instance_construction(self, tiny_dag):
        instance = FAST.instance_for(tiny_dag)
        assert instance.num_processors == 2
        assert instance.cache_size == pytest.approx(3.0 * instance.minimum_cache_size())

    def test_variant(self):
        variant = FAST.variant(name="async", synchronous=False, cache_factor=5.0)
        assert variant.synchronous is False
        assert variant.cache_factor == 5.0
        assert FAST.synchronous is True  # original untouched

    def test_ilp_config_propagates_settings(self):
        config = FAST.variant(allow_recomputation=False, step_cap=8)
        ilp = config.ilp_config()
        assert ilp.allow_recomputation is False
        assert ilp.max_steps == 8
        assert ilp.solver_options.time_limit == 1.0

    def test_table4_configurations(self):
        configs = table4_configurations(FAST)
        assert set(configs) == {"base", "r5", "r1", "p8", "L0", "async"}
        assert configs["r5"].cache_factor == 5.0
        assert configs["p8"].num_processors == 8
        assert configs["L0"].L == 0.0
        assert configs["async"].synchronous is False

    def test_env_knob_helpers(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert dataset_scale() == "paper"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        with pytest.warns(UserWarning, match="REPRO_BENCH_SCALE"):
            assert dataset_scale() == "default"
        monkeypatch.setenv("REPRO_BENCH_LIMIT", "3")
        assert dataset_limit() == 3
        monkeypatch.setenv("REPRO_BENCH_LIMIT", "xyz")
        with pytest.warns(UserWarning, match="REPRO_BENCH_LIMIT"):
            assert dataset_limit() is None


class TestEnvParsingHelpers:
    """Malformed environment values fall back to the default — loudly."""

    def test_env_float_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert _env_float("REPRO_TEST_KNOB", 2.5) == 2.5

    def test_env_float_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "7.25")
        assert _env_float("REPRO_TEST_KNOB", 2.5) == 7.25

    def test_env_float_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "fast")
        with pytest.warns(UserWarning, match="REPRO_TEST_KNOB"):
            assert _env_float("REPRO_TEST_KNOB", 2.5) == 2.5

    def test_env_int_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert _env_int("REPRO_TEST_KNOB", 4) == 4
        assert _env_int("REPRO_TEST_KNOB", None) is None

    def test_env_int_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "12")
        assert _env_int("REPRO_TEST_KNOB", None) == 12

    def test_env_int_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "3.5")
        with pytest.warns(UserWarning, match="REPRO_TEST_KNOB"):
            assert _env_int("REPRO_TEST_KNOB", 9) == 9

    def test_valid_values_do_not_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_TEST_KNOB", "3")
        assert _env_int("REPRO_TEST_KNOB", 1) == 3
        assert _env_float("REPRO_TEST_KNOB", 1.0) == 3.0
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    # REPRO_BENCH_WORKERS / REPRO_CACHE_DIR: the engine/session env knobs
    # follow the same warn-and-fall-back convention as REPRO_ILP_BACKEND
    # and REPRO_BENCH_SCALE
    def test_bench_workers_unset_and_valid(self, monkeypatch, recwarn):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        assert env_bench_workers() == 1
        assert env_bench_workers(3) == 3
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "4")
        assert env_bench_workers() == 4
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_bench_workers_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        with pytest.warns(UserWarning, match="REPRO_BENCH_WORKERS"):
            assert env_bench_workers(2) == 2

    def test_bench_workers_non_positive_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        with pytest.warns(UserWarning, match="REPRO_BENCH_WORKERS"):
            assert env_bench_workers() == 1
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "-3")
        with pytest.warns(UserWarning, match="REPRO_BENCH_WORKERS"):
            assert env_bench_workers(2) == 2

    def test_cache_dir_unset_and_valid(self, monkeypatch, tmp_path, recwarn):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert env_cache_dir() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert env_cache_dir() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fresh"))
        assert env_cache_dir() == str(tmp_path / "fresh")  # may not exist yet
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert env_cache_dir() == str(tmp_path)
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_cache_dir_existing_file_warns_and_disables(self, monkeypatch, tmp_path):
        not_a_dir = tmp_path / "occupied.json"
        not_a_dir.write_text("{}")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(not_a_dir))
        with pytest.warns(UserWarning, match="REPRO_CACHE_DIR"):
            assert env_cache_dir() is None


class TestRunners:
    def test_run_instance_reports_consistent_costs(self, tiny_dag):
        result = run_instance(tiny_dag, FAST)
        assert result.instance_name == "tiny_forkjoin"
        assert result.baseline_cost > 0
        assert result.ilp_cost <= result.baseline_cost + 1e-9
        assert 0 < result.ratio <= 1.0 + 1e-9

    @pytest.mark.slow
    def test_run_instance_with_baselines_extra_columns(self, tiny_dag):
        result = run_instance_with_baselines(tiny_dag, FAST)
        for key in ("weak", "bsp_ilp", "bsp_ilp_plus_ilp"):
            assert key in result.extra_costs
            assert result.extra_costs[key] > 0

    @pytest.mark.slow
    def test_run_divide_and_conquer_instance(self):
        dag = simple_pagerank(num_blocks=3, iterations=2, seed=3)
        assign_random_memory_weights(dag, seed=3)
        dag.name = "tiny_pagerank"
        config = ExperimentConfig(name="dac_test", num_processors=2, cache_factor=5.0, ilp_time_limit=1.0)
        result = run_divide_and_conquer_instance(dag, config, max_part_size=10)
        assert result.baseline_cost > 0
        assert result.ilp_cost > 0
        assert result.extra_costs["parts"] >= 1

    def test_geomean_summary(self, tiny_dag):
        result = run_instance(tiny_dag, FAST)
        summary = geomean_summary({"base": [result]})
        assert summary["base"] == pytest.approx(result.ratio)


class TestFigures:
    def test_theorem41_comparison_growing_gap(self):
        points = theorem41_comparison(sizes=(4, 6, 8), chain_factor=2)
        assert len(points) == 3
        ratios = [p.ratio for p in points]
        assert all(r > 1.0 for r in ratios)
        assert ratios == sorted(ratios)

    def test_ratio_series_statistics(self):
        series = RatioSeries(name="demo", ratios=[0.5, 0.75, 1.0])
        assert series.minimum == 0.5
        assert series.maximum == 1.0
        assert 0.5 <= series.quantile(0.5) <= 1.0
        assert 0.6 < series.geomean < 0.8

    def test_render_figure4_output(self):
        series = {
            "base": RatioSeries("base", [0.8, 0.9]),
            "async": RatioSeries("async", [1.0, 0.95]),
        }
        text = render_figure4(series)
        assert "Figure 4" in text
        assert "base" in text and "async" in text
