"""Golden regression tests: frozen ``schedule_cost`` values per scheduler.

These pin the exact two-stage pipeline costs (and the exact schedules, via
their digests) for a handful of seeded instances, so cost-model or
scheduler refactors cannot silently drift.  If a change *intentionally*
alters schedules or the cost model, recompute the constants below and
explain the drift in the commit message.
"""

import pytest

from repro.core.two_stage import run_two_stage
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import fork_join_dag, iterated_spmv, spmv
from repro.model.instance import make_instance
from repro.portfolio.members import schedule_digest


def _spmv_dag():
    dag = spmv(4, seed=1)
    assign_random_memory_weights(dag, seed=7)
    return dag


def _exp_dag():
    dag = iterated_spmv(3, 2, seed=42)
    assign_random_memory_weights(dag, seed=42)
    return dag


def _fork_join_dag():
    dag = fork_join_dag(width=3, stages=2)
    assign_random_memory_weights(dag, seed=5)
    return dag


# (dag builder, scheduler, policy, processors) -> (cost, schedule digest)
GOLDEN = {
    (_spmv_dag, "bspg", "clairvoyant", 2): (118.0, "a8ef4d4f69fe00ab"),
    (_spmv_dag, "cilk", "lru", 2): (146.0, "78f373251ce71c2c"),
    (_spmv_dag, "dfs", "clairvoyant", 1): (88.0, "ce68dac6f91f1dc5"),
    (_spmv_dag, "bspg", "clairvoyant", 4): (113.0, "9d3c9af5bf6af2e4"),
    (_exp_dag, "bspg", "clairvoyant", 2): (214.0, "9d472bbd9f29c62f"),
    (_exp_dag, "cilk", "lru", 2): (205.0, "e580b3dbf1abaa1b"),
    (_exp_dag, "dfs", "clairvoyant", 1): (82.0, "7a52471321eec90a"),
    (_fork_join_dag, "bspg", "clairvoyant", 2): (50.0, "e9097ca4dab0b161"),
    (_fork_join_dag, "cilk", "lru", 2): (94.0, "f575ea1b24cce9e4"),
    (_fork_join_dag, "dfs", "clairvoyant", 1): (35.0, "28321137ee681b74"),
}


@pytest.mark.parametrize(
    "builder,scheduler,policy,processors,expected_cost,expected_digest",
    [key + value for key, value in GOLDEN.items()],
    ids=[f"{b.__name__.strip('_')}-{s}+{p}-P{n}" for (b, s, p, n) in GOLDEN],
)
def test_golden_two_stage_cost(builder, scheduler, policy, processors,
                               expected_cost, expected_digest):
    dag = builder()
    instance = make_instance(dag, num_processors=processors, cache_factor=3.0,
                             g=1.0, L=10.0)
    result = run_two_stage(instance, scheduler=scheduler, policy=policy, seed=0)
    assert result.cost == pytest.approx(expected_cost, abs=1e-9)
    assert schedule_digest(result.mbsp_schedule) == expected_digest


def test_golden_values_are_reproducible_across_rebuilds():
    """Two independent builds of the same seeded instance agree exactly."""
    first = run_two_stage(
        make_instance(_spmv_dag(), num_processors=2, cache_factor=3.0, g=1.0, L=10.0),
        scheduler="bspg", policy="clairvoyant", seed=0,
    )
    second = run_two_stage(
        make_instance(_spmv_dag(), num_processors=2, cache_factor=3.0, g=1.0, L=10.0),
        scheduler="bspg", policy="clairvoyant", seed=0,
    )
    assert first.cost == second.cost
    assert schedule_digest(first.mbsp_schedule) == schedule_digest(second.mbsp_schedule)
