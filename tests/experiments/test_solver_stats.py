"""Per-job solver telemetry attached by the experiment engine."""

import json

import pytest

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import chain_dag, spmv
from repro.experiments.parallel import ExperimentEngine, ExperimentJob
from repro.experiments.runner import ExperimentConfig, InstanceResult
from repro.ilp.backends import SolverCallStats


def _dag(seed=1):
    dag = spmv(3, seed=seed)
    assign_random_memory_weights(dag, seed=7)
    return dag


CFG = ExperimentConfig(name="stats-test", ilp_time_limit=1.0, ilp_node_limit=40,
                       step_cap=4)


class TestSolverCallStatsDelta:
    def test_delta_since_reports_calls_and_times_per_backend(self):
        before = SolverCallStats()
        after = SolverCallStats(
            total=3, by_backend={"scipy": 2, "bnb": 1},
            time_total=1.5, time_by_backend={"scipy": 1.0, "bnb": 0.5},
        )
        delta = after.delta_since(before)
        assert delta["solver_calls"] == 3.0
        assert delta["solver_calls[scipy]"] == 2.0
        assert delta["solver_calls[bnb]"] == 1.0
        assert delta["solver_time"] == pytest.approx(1.5)
        assert delta["solver_time[scipy]"] == pytest.approx(1.0)

    def test_snapshot_is_independent(self):
        stats = SolverCallStats()
        snap = stats.snapshot()
        stats.record("scipy")
        stats.record_time("scipy", 0.25)
        assert snap.total == 0 and not snap.by_backend
        delta = stats.delta_since(snap)
        assert delta["solver_calls"] == 1.0
        assert delta["solver_time[scipy]"] == pytest.approx(0.25)


class TestEngineAttachesSolverStats:
    def test_instance_job_records_one_solve(self):
        result = ExperimentEngine().run(
            [ExperimentJob.make("instance", _dag(), CFG)]
        )[0]
        assert result.solver_stats["solver_calls"] == 1.0
        assert result.solver_stats[f"solver_calls[{CFG.ilp_backend}]"] == 1.0
        assert result.solver_stats["solver_time"] > 0

    def test_pruned_portfolio_job_records_zero_solves(self):
        result = ExperimentEngine().run([
            ExperimentJob.make(
                "portfolio", chain_dag(5),
                CFG.variant(num_processors=1),
                member="ilp", prune_gap=0.0,
            )
        ])[0]
        assert result.solver_stats["solver_calls"] == 0.0

    def test_stats_reach_the_jsonl_results_file(self, tmp_path):
        results_path = tmp_path / "results.jsonl"
        ExperimentEngine(results_path=results_path).run(
            [ExperimentJob.make("instance", _dag(), CFG)]
        )
        record = json.loads(results_path.read_text().splitlines()[0])
        assert record["result"]["solver_stats"]["solver_calls"] == 1.0
        assert "solver_time" in record["result"]["solver_stats"]

    def test_stats_survive_the_result_roundtrip_but_not_the_fingerprint(self):
        result = InstanceResult(
            instance_name="x", num_nodes=3, baseline_cost=5.0, ilp_cost=4.0,
            solver_stats={"solver_calls": 2.0, "solver_time": 0.5},
        )
        rebuilt = InstanceResult.from_dict(result.to_dict())
        assert rebuilt == result
        assert "solver_stats" not in result.fingerprint()

    def test_parallel_and_serial_fingerprints_still_agree(self):
        dags = [_dag(seed=1), _dag(seed=2)]
        jobs = [ExperimentJob.make("instance", dag, CFG) for dag in dags]
        serial = ExperimentEngine(workers=1).run(jobs)
        parallel = ExperimentEngine(workers=2).run(jobs)
        assert [r.fingerprint() for r in serial] == [r.fingerprint() for r in parallel]
        # telemetry is attached in both execution modes
        assert all(r.solver_stats["solver_calls"] >= 1 for r in serial)
        assert all(r.solver_stats["solver_calls"] >= 1 for r in parallel)
