"""Pack B: the semantic checker mirrors the runtime's acceptance exactly.

The contract (ISSUE 9 acceptance): every malformed spec/plan fixture the
runtime would reject is rejected *statically*, and everything the runtime
accepts checks clean.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    check_plan_edges,
    check_policy,
    check_shards,
    check_spec,
)
from repro.pipeline.composite import EXAMPLE_RACE_SPECS
from repro.pipeline.spec import LEGACY_MEMBER_SPECS, parse
from repro.portfolio import DEFAULT_MEMBERS


def rules_of(findings):
    return sorted({f.rule for f in findings})


def errors_of(findings):
    return [f for f in findings if f.severity == "error"]


class TestSpecAcceptance:
    """Everything the runtime accepts must check clean."""

    @pytest.mark.parametrize("member", sorted(LEGACY_MEMBER_SPECS))
    def test_every_legacy_member_is_clean(self, member):
        # dfs members are P-conditional: clean for P=1, advisory otherwise
        processors = 1 if member.startswith("dfs") else 4
        assert check_spec(member, processors=processors) == []

    @pytest.mark.parametrize("name", sorted(EXAMPLE_RACE_SPECS))
    def test_example_race_specs_are_clean(self, name):
        assert check_spec(EXAMPLE_RACE_SPECS[name], processors=4) == []

    @pytest.mark.parametrize("member", DEFAULT_MEMBERS)
    def test_default_portfolio_members_are_clean(self, member):
        assert check_spec(member, processors=4) == []

    def test_budgeted_solver_stage_is_clean(self):
        assert check_spec("baseline|ilp(budget=5s)", processors=4) == []

    def test_sweep_within_threshold_is_clean(self):
        assert check_spec("dac(max_part_size={2,4,8})", processors=4) == []


class TestSpecRejection:
    """Every runtime ConfigurationError path is caught statically."""

    @pytest.mark.parametrize(
        "spec",
        [
            "nosuchstage",                        # unknown stage
            "ilp@nosuchbackend",                  # unknown backend
            "ilp(warm=bogus)",                    # bad option value
            "refine(budget=0s)",                  # sub-microsecond budget
            "refine(budget=-1)",                  # negative counter budget
            "race(ilp@bnb)",                      # < 2 branches
            "dac(max_part_size=0)",               # invalid option
            "bspg+nosuchpolicy",                  # unknown policy
            "a|",                                 # empty stage
            "dac(max_part_size={})",              # empty sweep
            "dac(max_part_size={2,4}",            # unbalanced sweep
        ],
    )
    def test_statically_rejected_iff_runtime_rejects(self, spec):
        findings = check_spec(spec)
        assert rules_of(findings) == ["REP-S01"], findings
        # ground truth: the runtime parser rejects the same spec
        with pytest.raises(ConfigurationError):
            specs = parse(spec)
            specs.build_stages()

    def test_duplicate_race_branches(self):
        findings = check_spec("race(ilp@scipy,ilp@scipy)")
        assert rules_of(findings) == ["REP-S02"]
        # shuffled spellings canonicalize to the same branch token
        findings = check_spec(
            "race(refine(seed=1,strategy=anneal),refine(strategy=anneal,seed=1))"
        )
        assert rules_of(findings) == ["REP-S02"]

    def test_distinct_branches_clean(self):
        assert check_spec("race(ilp@bnb,ilp@scipy)", processors=4) == []

    def test_budget_on_non_binding_stage_warns(self):
        findings = check_spec("baseline(budget=5s)", processors=4)
        assert rules_of(findings) == ["REP-S03"]
        assert not errors_of(findings)

    def test_budget_on_non_binding_race_branch_warns(self):
        findings = check_spec(
            "race(bspg+clairvoyant(budget=5s),ilp)", processors=4
        )
        assert rules_of(findings) == ["REP-S03"]

    def test_refine_with_no_producer_through_race_errors(self):
        # race of definitely-inapplicable branches keeps incumbent=None;
        # the downstream refine then raises at run time (the REP-S04 gap)
        findings = check_spec(
            "race(dfs+clairvoyant,dfs+lru)|refine", processors=4
        )
        assert rules_of(findings) == ["REP-S04"]
        assert errors_of(findings)

    def test_refine_with_conditional_producer_warns(self):
        findings = check_spec("race(dfs+clairvoyant,dfs+lru)|refine")
        assert rules_of(findings) == ["REP-S04"]
        assert not errors_of(findings)

    def test_inapplicable_plain_stage_warns_not_errors(self):
        # a plain dfs pipeline short-circuits to 'inapplicable' (no raise)
        findings = check_spec("dfs+clairvoyant|ilp", processors=4)
        assert rules_of(findings) == ["REP-S04"]
        assert not errors_of(findings)

    def test_mixed_race_with_one_applicable_branch_is_clean(self):
        assert check_spec(
            "race(dfs+clairvoyant,bspg+clairvoyant)|refine", processors=4
        ) == []

    def test_sweep_cardinality_warning(self):
        findings = check_spec(
            "dac(max_part_size={1,2,3,4,5})|refine(seed={1,2,3,4})",
            processors=4,
            max_sweep=16,
        )
        assert "REP-S05" in rules_of(findings)

    def test_sweep_threshold_is_tunable(self):
        spec = "dac(max_part_size={2,4,8})"
        assert check_spec(spec, max_sweep=2) != []
        assert check_spec(spec, max_sweep=3) == []


class TestPolicy:
    def test_shipped_default_policy_is_clean(self):
        assert check_policy(processors=4) == []

    def test_unresolvable_tier(self):
        findings = check_policy(rich="nosuchmember")
        assert rules_of(findings) == ["REP-S06"]
        assert findings[0].path == "<policy.rich>"

    def test_bad_thresholds(self):
        from repro.serve.policy import PolicyConfig

        findings = check_policy(
            PolicyConfig(pressure_depth=0, idle_depth=0), processors=4
        )
        assert "REP-S06" in rules_of(findings)

    def test_tier_spec_hazards_surface(self):
        findings = check_policy(
            cheap="race(ilp@scipy,ilp@scipy)", processors=4
        )
        assert "REP-S02" in rules_of(findings)


class TestPlanEdges:
    def test_valid_edges_clean(self):
        assert check_plan_edges([("a", []), ("b", ["a"]), ("c", ["a", "b"])]) == []

    def test_duplicate_id(self):
        findings = check_plan_edges([("a", []), ("a", [])])
        assert rules_of(findings) == ["REP-S08"]

    def test_unknown_and_forward_deps(self):
        findings = check_plan_edges([("a", ["b"]), ("b", [])])
        assert rules_of(findings) == ["REP-S08"]

    def test_self_dependency(self):
        findings = check_plan_edges([("a", ["a"])])
        assert rules_of(findings) == ["REP-S08"]

    def test_matches_runplan_acceptance(self):
        # ground truth: RunPlan accepts exactly the edge sets that check
        # clean (jobs are irrelevant to edge validation — use stand-ins)
        from repro.exec.plan import PlanNode, RunPlan

        good = [("a", ()), ("b", ("a",))]
        assert check_plan_edges(good) == []
        RunPlan(PlanNode(id=i, job=None, after=tuple(d)) for i, d in good)

        bad = [("a", ()), ("c", ("zz",))]
        assert check_plan_edges(bad) != []
        with pytest.raises(ConfigurationError):
            RunPlan(PlanNode(id=i, job=None, after=tuple(d)) for i, d in bad)


class TestShards:
    def _edged_plan(self, n_chains, chain_len):
        from repro.exec.plan import PlanNode, RunPlan

        plan = RunPlan()
        for c in range(n_chains):
            prev = None
            for k in range(chain_len):
                node_id = f"c{c}k{k}"
                plan._append(
                    PlanNode(
                        id=node_id,
                        job=None,
                        after=(prev,) if prev else (),
                    )
                )
                prev = node_id
        return plan

    def test_edge_free_plan_shards_freely(self):
        plan = self._edged_plan(n_chains=6, chain_len=1)
        assert check_shards(plan, 3) == []

    def test_chained_plan_with_enough_components(self):
        plan = self._edged_plan(n_chains=4, chain_len=2)
        assert check_shards(plan, 4) == []

    def test_too_coarse_chains_rejected(self):
        from repro.exec.shard import shard_assignment

        plan = self._edged_plan(n_chains=2, chain_len=3)
        findings = check_shards(plan, 4)
        assert rules_of(findings) == ["REP-S07"]
        # ground truth: the coordinator raises for the same inputs
        with pytest.raises(ConfigurationError):
            shard_assignment(plan, 4)

    def test_bad_shard_count_rejected(self):
        plan = self._edged_plan(n_chains=2, chain_len=1)
        findings = check_shards(plan, 0)
        assert rules_of(findings) == ["REP-S07"]
