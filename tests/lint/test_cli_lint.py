"""CLI contract: ``repro lint`` / ``repro check`` exit codes and reports.

Exit codes are part of the stable interface (CI keys off them):
0 = clean, 1 = gating findings, 2 = usage error.
"""

import json
import textwrap

import pytest

from repro import cli
from repro.lint import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE

HAZARD = "key = hash(id(object()))\n"


def write_tree(tmp_path, source=HAZARD, name="m.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestLintExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write_tree(tmp_path, "x = 1\n")
        assert cli.main(["lint", str(path)]) == EXIT_OK
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write_tree(tmp_path)
        assert cli.main(["lint", str(path)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REP-D01" in out and "REP-D02" in out

    def test_info_only_findings_do_not_gate(self, tmp_path):
        # severity gating: only error/warning flip the exit code; D01 is
        # an error, so narrow to a rule that cannot fire instead
        path = write_tree(tmp_path, "x = 1\n")
        assert cli.main(["lint", str(path), "--rules", "REP-D01"]) == EXIT_OK

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = write_tree(tmp_path, "x = 1\n")
        assert cli.main(
            ["lint", str(path), "--rules", "REP-X99"]
        ) == EXIT_USAGE
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert cli.main(["lint", str(tmp_path / "nope")]) == EXIT_USAGE
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules_table(self, capsys):
        assert cli.main(["lint", "--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule_id in ("REP-D01", "REP-C03", "REP-P01"):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_write_then_gate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path)

        # 1) grandfather the current findings
        assert cli.main(["lint", "m.py", "--write-baseline"]) == EXIT_OK
        doc = json.loads((tmp_path / "lint-baseline.json").read_text())
        assert doc["version"] == 1
        assert len(doc["findings"]) == 2  # D01 + D02 on the hazard line
        capsys.readouterr()

        # 2) the baseline is auto-discovered and the re-run is clean
        assert cli.main(["lint", "m.py"]) == EXIT_OK
        assert "baselined" in capsys.readouterr().out

        # 3) a NEW finding still gates
        (tmp_path / "m.py").write_text(HAZARD + "t = time.time()\n")
        assert cli.main(["lint", "m.py"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REP-D03" in out and "REP-D01" not in out

        # 4) --no-baseline reports everything again
        assert cli.main(["lint", "m.py", "--no-baseline"]) == EXIT_FINDINGS
        assert "REP-D01" in capsys.readouterr().out

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, "x = 1\n")
        (tmp_path / "lint-baseline.json").write_text("{broken")
        assert cli.main(["lint", "m.py"]) == EXIT_USAGE


class TestJsonReport:
    def test_json_report_shape_and_stability(self, tmp_path, capsys):
        path = write_tree(tmp_path)
        argv = ["lint", str(path), "--format", "json", "--no-baseline"]
        assert cli.main(argv) == EXIT_FINDINGS
        first = capsys.readouterr().out
        doc = json.loads(first)
        assert doc["total"] == 2
        assert doc["baselined"] == 0
        assert {f["rule"] for f in doc["findings"]} == {"REP-D01", "REP-D02"}
        assert doc["counts"]["error"] == 1
        # byte-stable across runs
        assert cli.main(argv) == EXIT_FINDINGS
        assert capsys.readouterr().out == first

    def test_output_file(self, tmp_path, capsys):
        path = write_tree(tmp_path, "x = 1\n")
        report = tmp_path / "report.json"
        assert cli.main(
            ["lint", str(path), "--format", "json", "--output", str(report)]
        ) == EXIT_OK
        assert json.loads(report.read_text())["total"] == 0


class TestSelfGate:
    def test_repo_src_lints_clean_via_cli(self, repo_root, capsys,
                                          monkeypatch):
        # the CI lint gate, end to end: src/ against the shipped baseline
        monkeypatch.chdir(repo_root)
        assert cli.main(["lint", "src"]) == EXIT_OK


class TestCheckCommand:
    def test_default_smoke_set_is_clean(self, capsys):
        # DEFAULT_MEMBERS + EXAMPLE_RACE_SPECS + shipped policy tiers —
        # exactly the CI smoke invocation
        assert cli.main(["check"]) == EXIT_OK
        assert "all statically valid" in capsys.readouterr().out

    def test_bad_spec_exits_one(self, capsys):
        assert cli.main(
            ["check", "--pipeline", "nosuchstage"]
        ) == EXIT_FINDINGS
        assert "REP-S01" in capsys.readouterr().out

    def test_duplicate_race_branches_rejected(self, capsys):
        assert cli.main(
            ["check", "--pipeline", "race(ilp@scipy,ilp@scipy)"]
        ) == EXIT_FINDINGS
        assert "REP-S02" in capsys.readouterr().out

    def test_policy_override_checked(self, capsys):
        assert cli.main(
            ["check", "--policy-rich", "nosuchmember"]
        ) == EXIT_FINDINGS
        assert "REP-S06" in capsys.readouterr().out

    def test_members_list_checked(self, capsys):
        assert cli.main(
            ["check", "--members", "bspg+clairvoyant,cilk+lru,ilp"]
        ) == EXIT_OK

    def test_shards_dry_run(self, capsys):
        # three independent member plans with no edges shard freely
        assert cli.main(
            ["check", "--members", "bspg+clairvoyant,ilp",
             "--shards", "2", "--limit", "2"]
        ) == EXIT_OK

    def test_bad_shard_count_rejected(self, capsys):
        assert cli.main(
            ["check", "--members", "bspg+clairvoyant",
             "--shards", "0", "--limit", "1"]
        ) == EXIT_FINDINGS
        assert "REP-S07" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert cli.main(
            ["check", "--pipeline", "baseline(budget=5s)",
             "--format", "json"]
        ) == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "REP-S03"
