from pathlib import Path

import pytest


@pytest.fixture
def repo_root() -> Path:
    """The repository root (the directory holding src/ and tests/)."""
    return Path(__file__).resolve().parents[2]
