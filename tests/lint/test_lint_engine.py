"""Engine mechanics: registry, suppressions, file walking, parse errors."""

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    Finding,
    Rule,
    available_rules,
    get_rule,
    lint_file,
    lint_paths,
    register_rule,
    rule_descriptions,
    scan_suppressions,
)
from repro.lint.engine import select_rules


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestRegistry:
    def test_all_pack_a_rules_registered(self):
        rules = available_rules()
        for expected in (
            "REP-D01", "REP-D02", "REP-D03", "REP-D04", "REP-D05",
            "REP-D06", "REP-D07", "REP-C01", "REP-C02", "REP-C03",
            "REP-P01",
        ):
            assert expected in rules

    def test_rule_ids_are_sorted_and_described(self):
        triples = rule_descriptions()
        assert [t[0] for t in triples] == sorted(t[0] for t in triples)
        assert all(t[1] in ("error", "warning", "info") for t in triples)
        assert all(t[2] for t in triples)

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("rep-d01").id == "REP-D01"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            get_rule("REP-X99")

    def test_malformed_id_rejected(self):
        class Bad(Rule):
            id = "NOT-AN-ID"
            severity = "error"

        with pytest.raises(ConfigurationError, match="malformed"):
            register_rule(Bad())

    def test_bad_severity_rejected(self):
        class Bad(Rule):
            id = "REP-Z99"
            severity = "fatal"

        with pytest.raises(ConfigurationError, match="severity"):
            register_rule(Bad())

    def test_select_subset(self):
        rules = select_rules(["REP-D01", "REP-C02"])
        assert [r.id for r in rules] == ["REP-D01", "REP-C02"]


class TestSuppressions:
    def test_bracketed_and_bare_markers(self):
        text = (
            "x = 1  # repro: lint-ignore[REP-D01]\n"
            "y = 2  # repro: lint-ignore[REP-D01, REP-C02]\n"
            "z = 3  # repro: lint-ignore\n"
            "plain = 4\n"
        )
        marks = scan_suppressions(text)
        assert marks[1] == {"REP-D01"}
        assert marks[2] == {"REP-D01", "REP-C02"}
        assert marks[3] == {"*"}
        assert 4 not in marks

    def test_suppression_on_same_line(self, tmp_path):
        path = _write(
            tmp_path, "m.py",
            "key = hash(id(object()))  # repro: lint-ignore[REP-D01]\n",
        )
        findings = lint_file(path, select_rules(["REP-D01"]), root=tmp_path)
        assert findings == []

    def test_suppression_on_line_above(self, tmp_path):
        path = _write(
            tmp_path, "m.py",
            "# repro: lint-ignore[REP-D01]\nkey = hash(id(object()))\n",
        )
        findings = lint_file(path, select_rules(["REP-D01"]), root=tmp_path)
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        path = _write(
            tmp_path, "m.py",
            "key = hash(id(object()))  # repro: lint-ignore[REP-C02]\n",
        )
        findings = lint_file(path, select_rules(["REP-D01"]), root=tmp_path)
        assert [f.rule for f in findings] == ["REP-D01"]


class TestWalkingAndParsing:
    def test_syntax_error_becomes_finding(self, tmp_path):
        path = _write(tmp_path, "broken.py", "def nope(:\n")
        findings = lint_paths([str(path)], root=tmp_path)
        assert [f.rule for f in findings] == ["REP-P01"]
        assert findings[0].severity == "error"

    def test_directory_walk_skips_pycache_and_hidden(self, tmp_path):
        _write(tmp_path, "a.py", "key = hash(id(object()))\n")
        (tmp_path / "__pycache__").mkdir()
        _write(tmp_path / "__pycache__", "b.py", "key = hash(id(object()))\n")
        (tmp_path / ".hidden").mkdir()
        _write(tmp_path / ".hidden", "c.py", "key = hash(id(object()))\n")
        findings = lint_paths([str(tmp_path)], ["REP-D01"], root=tmp_path)
        assert [f.path for f in findings] == ["a.py"]

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            lint_paths([str(tmp_path / "nope")])

    def test_findings_sorted_by_location(self, tmp_path):
        _write(tmp_path, "b.py", "x = hash(id(a))\n")
        _write(tmp_path, "a.py", "y = 1\nx = hash(id(a))\n")
        findings = lint_paths([str(tmp_path)], ["REP-D01"], root=tmp_path)
        assert [(f.path, f.line) for f in findings] == [("a.py", 2), ("b.py", 1)]

    def test_finding_render_is_clickable(self):
        finding = Finding(
            rule="REP-D01", severity="error", path="src/x.py",
            line=3, col=7, message="boom",
        )
        assert finding.render() == "src/x.py:3:7: REP-D01 error: boom"
