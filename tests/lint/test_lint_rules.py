"""Per-rule positive/negative fixtures for rule pack A.

Every rule gets at least one snippet that must trip it (the seeded
hazard) and one legitimate look-alike that must not (the false-positive
guard) — the acceptance contract of the analyzer.
"""

import textwrap

from repro.lint import lint_file
from repro.lint.engine import select_rules


def run_rule(tmp_path, rule_id, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(path, select_rules([rule_id]), root=tmp_path)


class TestHashOfId:  # REP-D01
    def test_flags_id_inside_hash(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D01",
            "key = hash((id(type(self)), index))\n",
        )
        assert [f.rule for f in findings] == ["REP-D01"]

    def test_flags_nested_expression(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D01",
            "key = hash((1, (2, id(obj))))\n",
        )
        assert len(findings) == 1

    def test_identity_hash_without_builtin_hash_ok(self, tmp_path):
        # LinExpr.__hash__ returns id(self) directly (a documented
        # identity hash for a mutable object) — not D01 material
        findings = run_rule(
            tmp_path, "REP-D01",
            """\
            class LinExpr:
                def __hash__(self):
                    return id(self)
            """,
        )
        assert findings == []

    def test_plain_hash_ok(self, tmp_path):
        assert run_rule(tmp_path, "REP-D01", "key = hash((1, 2))\n") == []


class TestBuiltinHash:  # REP-D02
    def test_flags_hash_outside_dunder(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D02",
            """\
            def cache_key(name):
                return hash(name)
            """,
        )
        assert [f.rule for f in findings] == ["REP-D02"]

    def test_hash_inside_dunder_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D02",
            """\
            class Variable:
                def __hash__(self):
                    return hash((7, self.index))
            """,
        )
        assert findings == []

    def test_nested_function_inside_dunder_still_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D02",
            """\
            class C:
                def __hash__(self):
                    def inner():
                        return hash(self.key)
                    return inner()
            """,
        )
        assert findings == []


class TestWallClock:  # REP-D03
    def test_flags_time_time(self, tmp_path):
        findings = run_rule(tmp_path, "REP-D03", "t = time.time()\n")
        assert [f.rule for f in findings] == ["REP-D03"]

    def test_flags_datetime_now(self, tmp_path):
        findings = run_rule(tmp_path, "REP-D03", "t = datetime.now()\n")
        assert len(findings) == 1

    def test_perf_counter_ok(self, tmp_path):
        # monotonic durations are fine — only absolute wall time leaks
        assert run_rule(tmp_path, "REP-D03", "t = time.perf_counter()\n") == []

    def test_obs_allowlist(self, tmp_path):
        obs_dir = tmp_path / "repro" / "obs"
        obs_dir.mkdir(parents=True)
        path = obs_dir / "tracer.py"
        path.write_text("start = time.time()\n")
        findings = lint_file(path, select_rules(["REP-D03"]), root=tmp_path)
        assert findings == []


class TestGlobalRandom:  # REP-D04
    def test_flags_module_level_call(self, tmp_path):
        findings = run_rule(tmp_path, "REP-D04", "x = random.random()\n")
        assert [f.rule for f in findings] == ["REP-D04"]

    def test_flags_shuffle_and_seed(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D04",
            "random.seed(0)\nrandom.shuffle(items)\n",
        )
        assert len(findings) == 2

    def test_seeded_instance_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D04",
            """\
            rng = random.Random(seed)
            x = rng.random()
            rng.shuffle(items)
            """,
        )
        assert findings == []


class TestSetIteration:  # REP-D05
    def test_flags_for_over_set_call(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D05",
            """\
            for key in set(names):
                out.write(key)
            """,
        )
        assert [f.rule for f in findings] == ["REP-D05"]

    def test_flags_comprehension_over_set_literal(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D05",
            "rows = [k for k in {'a', 'b'}]\n",
        )
        assert len(findings) == 1

    def test_sorted_wrapping_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D05",
            """\
            for key in sorted(set(names)):
                out.write(key)
            """,
        )
        assert findings == []


class TestFixedTempFile:  # REP-D06
    def test_flags_fixed_name_next_to_replace(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D06",
            """\
            def store(path, data):
                tmp = path + ".tmp"
                write(tmp, data)
                os.replace(tmp, path)
            """,
        )
        assert [f.rule for f in findings] == ["REP-D06"]

    def test_mkstemp_suffix_kwarg_exempt(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D06",
            """\
            def store(path, data):
                fd, tmp = tempfile.mkstemp(
                    dir=dirname, prefix="cache-", suffix=".tmp"
                )
                write(fd, data)
                os.replace(tmp, path)
            """,
        )
        assert findings == []

    def test_no_replace_in_module_means_no_race(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D06",
            "SCRATCH = 'work.tmp'\n",
        )
        assert findings == []


class TestUnsortedDumps:  # REP-D07
    def test_flags_unsorted_dumps_in_write(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D07",
            "handle.write(json.dumps(record) + '\\n')\n",
        )
        assert [f.rule for f in findings] == ["REP-D07"]

    def test_flags_write_text(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D07",
            "Path(path).write_text(json.dumps(doc, indent=2))\n",
        )
        assert len(findings) == 1

    def test_sorted_dumps_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D07",
            "handle.write(json.dumps(record, sort_keys=True) + '\\n')\n",
        )
        assert findings == []

    def test_dumps_outside_write_ok(self, tmp_path):
        # e.g. content-hash key material hashed, not persisted as a record
        findings = run_rule(
            tmp_path, "REP-D07",
            "blob = json.dumps(payload)\n",
        )
        assert findings == []


class TestSetSum:  # REP-D08
    def test_flags_sum_over_set_call(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D08",
            "total = sum(set(values))\n",
        )
        assert [f.rule for f in findings] == ["REP-D08"]

    def test_flags_sum_over_set_literal(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D08",
            "total = sum({a, b, c})\n",
        )
        assert len(findings) == 1

    def test_flags_generator_sourced_from_set(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D08",
            "total = sum(w[k] for k in set(keys))\n",
        )
        assert len(findings) == 1

    def test_flags_math_fsum_over_set_comp(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D08",
            "total = math.fsum({x * 2 for x in xs})\n",
        )
        assert len(findings) == 1

    def test_sorted_set_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D08",
            "total = sum(sorted(set(values)))\n",
        )
        assert findings == []

    def test_sum_over_list_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-D08",
            "total = sum(values)\nother = sum(x for x in rows)\n",
        )
        assert findings == []


class TestBlockingInAsync:  # REP-C01
    def test_flags_sleep_in_async_def(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C01",
            """\
            async def runner():
                time.sleep(1)
            """,
        )
        assert [f.rule for f in findings] == ["REP-C01"]

    def test_flags_open_and_subprocess(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C01",
            """\
            async def runner():
                with open("f") as handle:
                    subprocess.run(["ls"])
            """,
        )
        assert len(findings) == 2

    def test_sync_def_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C01",
            """\
            def runner():
                time.sleep(1)
            """,
        )
        assert findings == []

    def test_nested_sync_def_resets(self, tmp_path):
        # a nested sync def is typically shipped to an executor
        findings = run_rule(
            tmp_path, "REP-C01",
            """\
            async def runner():
                def worker():
                    time.sleep(1)
                await loop.run_in_executor(None, worker)
            """,
        )
        assert findings == []

    def test_asyncio_sleep_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C01",
            """\
            async def runner():
                await asyncio.sleep(1)
            """,
        )
        assert findings == []


class TestBroadExcept:  # REP-C02
    def test_flags_except_exception(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C02",
            """\
            try:
                work()
            except Exception:
                pass
            """,
        )
        assert [f.rule for f in findings] == ["REP-C02"]

    def test_flags_bare_except(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C02",
            """\
            try:
                work()
            except:
                pass
            """,
        )
        assert len(findings) == 1

    def test_flags_exception_in_tuple(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C02",
            """\
            try:
                work()
            except (ValueError, Exception):
                pass
            """,
        )
        assert len(findings) == 1

    def test_specific_types_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C02",
            """\
            try:
                work()
            except (ValueError, KeyError) as exc:
                raise SolverError(str(exc)) from exc
            """,
        )
        assert findings == []


class TestSwallowedBaseException:  # REP-C03
    def test_flags_swallowing_handler(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C03",
            """\
            try:
                work()
            except BaseException:
                log()
            """,
        )
        assert [f.rule for f in findings] == ["REP-C03"]

    def test_reraising_handler_ok(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C03",
            """\
            try:
                work()
            except BaseException:
                cleanup()
                raise
            """,
        )
        assert findings == []

    def test_except_exception_not_this_rule(self, tmp_path):
        findings = run_rule(
            tmp_path, "REP-C03",
            """\
            try:
                work()
            except Exception:
                pass
            """,
        )
        assert findings == []


class TestSelfLint:
    """The acceptance gate: the shipped sources are clean."""

    def test_src_tree_is_clean(self, repo_root):
        from repro.lint import lint_paths

        findings = lint_paths([str(repo_root / "src")], root=repo_root)
        assert findings == [], "\n".join(f.render() for f in findings)
