"""Baseline round-trip: write, load, filter, and the failure modes."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    Finding,
    baseline_from_findings,
    filter_baselined,
    load_baseline,
    write_baseline,
)


def make_finding(path="src/m.py", line=3, rule="REP-D01", message="boom"):
    return Finding(
        rule=rule, severity="error", path=path, line=line, col=1,
        message=message,
    )


class TestRoundTrip:
    def test_write_then_load_matches(self, tmp_path):
        findings = [make_finding(), make_finding(path="src/n.py", line=9)]
        target = tmp_path / "baseline.json"
        write_baseline(target, findings)
        keys = load_baseline(target)
        assert keys == {f.baseline_key() for f in findings}

    def test_filter_removes_known_keeps_new(self, tmp_path):
        old = make_finding()
        new = make_finding(line=40, rule="REP-C02")
        target = tmp_path / "baseline.json"
        write_baseline(target, [old])
        fresh = filter_baselined([old, new], load_baseline(target))
        assert fresh == [new]

    def test_match_ignores_message_text(self, tmp_path):
        # refreshed wording must not resurrect a baselined finding
        target = tmp_path / "baseline.json"
        write_baseline(target, [make_finding(message="old wording")])
        fresh = filter_baselined(
            [make_finding(message="new wording")], load_baseline(target)
        )
        assert fresh == []

    def test_serialized_form_is_stable(self, tmp_path):
        # byte-identical across runs: sorted keys, sorted findings, newline
        findings = [make_finding(path="b.py"), make_finding(path="a.py")]
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        write_baseline(first, findings)
        write_baseline(second, list(reversed(findings)))
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text().endswith("\n")

    def test_baseline_dict_shape(self):
        doc = baseline_from_findings([make_finding()])
        assert doc["version"] == 1
        assert doc["findings"] == [
            {"line": 3, "message": "boom", "path": "src/m.py", "rule": "REP-D01"}
        ]


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            load_baseline(tmp_path / "nope.json")

    def test_malformed_json(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_baseline(target)

    def test_version_mismatch(self, tmp_path):
        target = tmp_path / "future.json"
        target.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ConfigurationError, match="version"):
            load_baseline(target)

    def test_non_object_document(self, tmp_path):
        target = tmp_path / "list.json"
        target.write_text("[]")
        with pytest.raises(ConfigurationError):
            load_baseline(target)


class TestShippedBaseline:
    def test_checked_in_baseline_is_empty_and_loadable(self, repo_root):
        # the acceptance criterion: src/ lints clean, so the shipped
        # baseline carries no grandfathered findings
        keys = load_baseline(repo_root / "lint-baseline.json")
        assert keys == set()
