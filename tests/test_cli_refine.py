"""Tests for the refinement surface of the CLI (``refine``, ``--refine``)."""

import pytest

from repro import cli
from repro.refine import RefineConfig


class TestRefineParser:
    def test_refine_defaults_match_refine_config(self):
        args = cli.build_parser().parse_args(["refine"])
        defaults = RefineConfig()
        assert args.refine_budget == defaults.budget
        assert args.refine_strategy == defaults.strategy
        assert args.method == "baseline"

    def test_refine_flags_on_every_command(self):
        for command in (["schedule"], ["experiment"], ["portfolio"]):
            args = cli.build_parser().parse_args(
                command + ["--refine", "--refine-budget", "123",
                           "--refine-strategy", "anneal"]
            )
            assert args.refine is True
            assert args.refine_budget == 123
            assert args.refine_strategy == "anneal"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["refine", "--refine-strategy", "tabu"])


class TestRefineCommand:
    def test_refine_baseline_reports_before_and_after(self, capsys):
        exit_code = cli.main([
            "refine", "--generator", "spmv", "--size", "5", "--processors", "2",
            "--trace",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "refine:" in out
        assert "refined synchronous cost" in out
        assert "refined supersteps" in out

    def test_refine_writes_schedule(self, tmp_path, capsys):
        out_path = tmp_path / "refined.json"
        exit_code = cli.main([
            "refine", "--generator", "spmv", "--size", "4", "--processors", "2",
            "--output", str(out_path),
        ])
        assert exit_code == 0
        assert out_path.is_file()

    def test_zero_budget_keeps_the_schedule(self, capsys):
        exit_code = cli.main([
            "refine", "--generator", "spmv", "--size", "4", "--processors", "2",
            "--refine-budget", "0",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "0 accepted / 0 proposed" in out


class TestScheduleRefineFlag:
    def test_schedule_with_refine_prints_refined_costs(self, capsys):
        exit_code = cli.main([
            "schedule", "--generator", "spmv", "--size", "5", "--processors", "2",
            "--refine",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "refined synchronous cost" in out

    def test_schedule_without_refine_does_not(self, capsys):
        exit_code = cli.main([
            "schedule", "--generator", "spmv", "--size", "5", "--processors", "2",
        ])
        assert exit_code == 0
        assert "refined" not in capsys.readouterr().out


class TestPortfolioRefineFlag:
    def test_portfolio_refine_adds_refined_members(self, capsys):
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant,cilk+lru", "--refine",
            "--limit", "1", "--time-limit", "0.5",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bspg+clairvoyant+refine" in out
        assert "cilk+lru+refine" in out
