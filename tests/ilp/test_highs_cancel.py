"""Mid-solve cancellation through the scipy-vendored HiGHS binding.

The whole module is skipped when the private ``scipy.optimize._highspy``
binding is absent — the backend then falls back to plain ``optimize.milp``
and cancellation stays coarse (pre-dispatch refusal + clamped time limit),
which the last test pins regardless of the binding.
"""

import numpy as np
import pytest

from repro.ilp import IlpModel, SolutionStatus, solve_with_scipy
from repro.ilp.cancellation import CancelToken, cancel_scope
from repro.ilp.highs_cancel import (
    highs_cancellation_available,
    solve_with_highs_callback,
)

needs_highs = pytest.mark.skipif(
    not highs_cancellation_available(),
    reason="scipy-vendored HiGHS binding unavailable",
)


def knapsack_model():
    """max 10x0 + 6x1 + 4x2 s.t. 5x0 + 4x1 + 3x2 <= 8 -> optimum 14."""
    model = IlpModel("knapsack")
    x = [model.add_binary(f"x{i}") for i in range(3)]
    model.add_constraint(5 * x[0] + 4 * x[1] + 3 * x[2] <= 8)
    model.maximize(10 * x[0] + 6 * x[1] + 4 * x[2])
    return model


def market_split_model(m=3, n=20, seed=7):
    """A small market-split instance: trivially sized knapsacks solve in
    presolve without ever polling the MIP-interrupt callback, this one is
    guaranteed to branch (thousands of polls) yet finishes in ~1s."""
    rng = np.random.RandomState(seed)
    weights = rng.randint(0, 100, (m, n))
    targets = weights.sum(axis=1) // 2
    model = IlpModel("market-split")
    x = [model.add_binary(f"x{i}") for i in range(n)]
    for row in range(m):
        model.add_constraint(
            sum(int(weights[row, i]) * x[i] for i in range(n))
            == int(targets[row])
        )
    model.minimize(sum(x))
    return model


class TripAfterFirstPoll(CancelToken):
    """Reports cancelled from the second poll on.

    With a model that enters branch and bound, the callback is polled
    many times, so this token makes the mid-solve cancellation path
    deterministic without wall-clock races.
    """

    def __init__(self):
        super().__init__()
        self.polls = 0

    def cancelled(self):
        self.polls += 1
        return self.polls > 1


@needs_highs
class TestDirectSolve:
    def test_uncancelled_solve_is_optimal(self):
        compiled = knapsack_model().compile()
        result = solve_with_highs_callback(compiled, CancelToken())
        assert result is not None
        assert result.status == 0  # optimize.milp code space: optimal
        assert not result.cancelled
        # compiled space is minimization with negated costs: -14 == max 14
        assert compiled.c @ result.x == pytest.approx(-14.0)

    def test_matches_plain_backend_objective(self):
        model = knapsack_model()
        plain = solve_with_scipy(model)
        with cancel_scope(CancelToken()):
            with_token = solve_with_scipy(model)
        assert with_token.status == plain.status == SolutionStatus.OPTIMAL
        assert with_token.objective == pytest.approx(plain.objective)

    def test_cutoff_row_prunes_like_milp_path(self):
        compiled = knapsack_model().compile()
        # cutoff below the optimum (-14) makes the model infeasible
        result = solve_with_highs_callback(
            compiled, CancelToken(), cutoff=-15.0
        )
        assert result is not None
        assert result.status == 2  # infeasible

    def test_mid_solve_cancellation_is_deterministic(self):
        compiled = market_split_model().compile()
        token = TripAfterFirstPoll()
        result = solve_with_highs_callback(compiled, token, time_limit=60.0)
        assert result is not None
        assert token.polls >= 2  # the callback really was consulted
        assert result.cancelled
        assert result.status == 1  # limit-like: interrupted
        assert "cancelled by CancelToken mid-solve" in result.message

    def test_cancelled_already_token_stops_at_first_poll(self):
        compiled = market_split_model().compile()
        token = CancelToken()
        token.cancel("race lost")
        result = solve_with_highs_callback(compiled, token, time_limit=60.0)
        assert result is not None
        assert result.cancelled
        assert result.status == 1  # limit-like: interrupted


class TestBackendFallback:
    def test_pre_cancelled_scope_refuses_dispatch(self):
        token = CancelToken()
        token.cancel("budget exhausted")
        with cancel_scope(token):
            solution = solve_with_scipy(knapsack_model())
        assert solution.status == SolutionStatus.NO_SOLUTION
        assert "cancelled before dispatch" in solution.message
