"""Tests for the pluggable ILP backend registry (repro.ilp.backends)."""

import math

import pytest

from repro.ilp import (
    ENV_BACKEND,
    FunctionBackend,
    IlpModel,
    SolutionStatus,
    SolverOptions,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    reset_solver_call_stats,
    resolve_backend_name,
    solve,
    solver_call_stats,
)
from repro.ilp.backends import AUTO_BNB_MAX_INTEGERS, _ALIASES, _REGISTRY


def knapsack_model():
    """max 10x0 + 6x1 + 4x2 s.t. 5x0 + 4x1 + 3x2 <= 8, binary -> optimum 14."""
    model = IlpModel("knapsack")
    x = [model.add_binary(f"x{i}") for i in range(3)]
    model.add_constraint(5 * x[0] + 4 * x[1] + 3 * x[2] <= 8)
    model.maximize(10 * x[0] + 6 * x[1] + 4 * x[2])
    return model, x


def big_model(num_binaries=AUTO_BNB_MAX_INTEGERS + 5):
    """A model too large for auto's pure-Python routing threshold."""
    model = IlpModel("big")
    xs = [model.add_binary(f"x{i}") for i in range(num_binaries)]
    model.add_constraint(sum(xs[1:], xs[0]) <= num_binaries // 2)
    model.maximize(sum(xs[1:], xs[0]))
    return model


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"scipy", "bnb", "auto"}

    def test_aliases_resolve_to_canonical(self):
        assert get_backend("highs").name == "scipy"
        assert get_backend("branch_and_bound").name == "bnb"
        assert get_backend("branch-and-bound").name == "bnb"
        assert get_backend("SCIPY").name == "scipy"  # case-insensitive

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown ILP backend"):
            get_backend("gurobi")
        with pytest.raises(ValueError):
            resolve_backend_name("copt")

    def test_resolve_none_uses_default(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend_name(None) == "scipy"
        assert resolve_backend_name("") == "scipy"

    def test_register_custom_backend(self):
        calls = []

        def fake_solve(model, options=None):
            calls.append(model.name)
            return solve(model, options, backend="scipy")

        register_backend(FunctionBackend("fake", fake_solve), aliases=("phony",))
        try:
            model, _ = knapsack_model()
            solution = solve(model, backend="phony")
            assert solution.objective == pytest.approx(14.0)
            assert calls == ["knapsack"]
        finally:
            _REGISTRY.pop("fake", None)
            _ALIASES.pop("phony", None)

    def test_alias_cannot_shadow_backend(self):
        with pytest.raises(ValueError, match="shadow"):
            register_backend(
                FunctionBackend("scipy", lambda m, o=None: None), aliases=("bnb",)
            )

    def test_name_cannot_collide_with_existing_alias(self):
        # "highs" is an alias of scipy; a backend *named* highs would be
        # silently shadowed because get_backend resolves aliases first
        with pytest.raises(ValueError, match="already an alias"):
            register_backend(FunctionBackend("highs", lambda m, o=None: None))
        assert get_backend("highs").name == "scipy"

    def test_alias_cannot_repoint_another_backends_alias(self):
        with pytest.raises(ValueError, match="already points"):
            register_backend(
                FunctionBackend("mybackend", lambda m, o=None: None),
                aliases=("highs",),
            )
        assert "mybackend" not in available_backends()  # registry untouched


class TestEnvironmentDefault:
    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "bnb")
        assert default_backend() == "bnb"
        monkeypatch.setenv(ENV_BACKEND, "branch_and_bound")  # aliases work too
        assert default_backend() == "bnb"

    def test_unknown_env_backend_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "gurobi")
        with pytest.warns(UserWarning, match="unknown ILP backend 'gurobi'"):
            assert default_backend() == "scipy"

    def test_empty_env_value_is_default(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "  ")
        assert default_backend() == "scipy"

    def test_solve_uses_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "bnb")
        model, _ = knapsack_model()
        solution = solve(model, SolverOptions(time_limit=10))
        assert solution.objective == pytest.approx(14.0)
        assert "branch-and-bound" in solution.message


class TestAutoBackend:
    def test_small_models_route_to_bnb(self):
        model, _ = knapsack_model()
        assert get_backend("auto").choose(model) == "bnb"
        solution = solve(model, SolverOptions(time_limit=10), backend="auto")
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)
        assert solution.message.startswith("auto[bnb]")

    def test_large_models_route_to_scipy(self):
        model = big_model()
        assert get_backend("auto").choose(model) == "scipy"
        solution = solve(model, SolverOptions(time_limit=10), backend="auto")
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.message.startswith("auto[scipy]")


class TestSolverCallStats:
    def test_dispatch_counts_calls_per_backend(self):
        reset_solver_call_stats()
        model, _ = knapsack_model()
        solve(model, SolverOptions(time_limit=10), backend="scipy")
        solve(model, SolverOptions(time_limit=10), backend="scipy")
        solve(model, SolverOptions(time_limit=10), backend="bnb")
        stats = solver_call_stats()
        assert stats.total == 3
        assert stats.by_backend == {"scipy": 2, "bnb": 1}
        reset_solver_call_stats()
        assert solver_call_stats().total == 0


BACKENDS = ["scipy", "bnb"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestLimitSemantics:
    """node_limit/time_limit semantics aligned across backends."""

    def test_no_limits_means_unlimited_and_optimal(self, backend):
        model, _ = knapsack_model()
        solution = solve(
            model, SolverOptions(time_limit=None, node_limit=None), backend=backend
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)

    def test_zero_node_limit_explores_no_nodes(self, backend):
        model, _ = knapsack_model()
        solution = solve(
            model, SolverOptions(time_limit=10, node_limit=0), backend=backend
        )
        # neither backend may branch; HiGHS presolve/root heuristics can
        # still produce (and prove) an incumbent, the transparent solver
        # reports that it found nothing
        assert solution.node_count == 0
        if backend == "bnb":
            assert solution.status is SolutionStatus.NO_SOLUTION
            assert not solution.has_solution

    def test_zero_time_limit_returns_no_solution(self, backend):
        model, _ = knapsack_model()
        solution = solve(
            model, SolverOptions(time_limit=0.0, node_limit=None), backend=backend
        )
        assert solution.status is SolutionStatus.NO_SOLUTION
        assert not solution.has_solution

    def test_generous_node_limit_reaches_optimality(self, backend):
        model, _ = knapsack_model()
        solution = solve(
            model, SolverOptions(time_limit=30, node_limit=10_000), backend=backend
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)


class TestWarmStart:
    def test_bnb_proves_warm_start_unbeatable(self):
        model, _ = knapsack_model()
        solution = solve(
            model,
            SolverOptions(time_limit=10, warm_start_objective=14.0),
            backend="bnb",
        )
        assert solution.status is SolutionStatus.NO_SOLUTION
        assert "warm start" in solution.message

    def test_bnb_improves_on_weaker_warm_start(self):
        model, _ = knapsack_model()
        solution = solve(
            model,
            SolverOptions(time_limit=10, warm_start_objective=13.0),
            backend="bnb",
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)

    def test_scipy_warm_start_cutoff_keeps_optimum_reachable(self):
        model, _ = knapsack_model()
        solution = solve(
            model,
            SolverOptions(time_limit=10, warm_start_objective=14.0),
            backend="scipy",
        )
        # the cutoff row admits solutions at least as good as the incumbent
        assert solution.has_solution
        assert solution.objective == pytest.approx(14.0)

    def test_warm_start_of_minimization_model(self):
        model = IlpModel("min")
        x = model.add_integer("x", 0, 10)
        y = model.add_integer("y", 0, 10)
        model.add_constraint(x + y >= 7)
        model.minimize(2 * x + y)  # optimum 7 at x=0, y=7
        for backend in BACKENDS:
            better = solve(
                model,
                SolverOptions(time_limit=10, warm_start_objective=9.0),
                backend=backend,
            )
            assert better.has_solution
            assert better.objective == pytest.approx(7.0)
        tight = solve(
            model, SolverOptions(time_limit=10, warm_start_objective=7.0), backend="bnb"
        )
        assert tight.status is SolutionStatus.NO_SOLUTION
