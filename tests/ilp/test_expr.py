"""Unit tests for the ILP modeling expressions."""

import pytest

from repro.exceptions import IlpError
from repro.ilp.expr import INF, Constraint, LinExpr, Variable, lin_sum


def make_vars(n=3):
    return [Variable(i, f"x{i}") for i in range(n)]


class TestVariable:
    def test_bounds_validation(self):
        with pytest.raises(IlpError):
            Variable(0, "bad", lower=2, upper=1)

    def test_arithmetic_promotes_to_expr(self):
        x, y, _ = make_vars()
        expr = 2 * x + y - 3
        assert isinstance(expr, LinExpr)
        assert expr.coeffs[x.index] == 2
        assert expr.coeffs[y.index] == 1
        assert expr.constant == -3

    def test_negation(self):
        x, *_ = make_vars()
        expr = -x
        assert expr.coeffs[x.index] == -1

    def test_comparison_builds_constraint(self):
        x, y, _ = make_vars()
        con = x + y <= 3
        assert isinstance(con, Constraint)
        assert con.upper == 0  # constant folded into expr
        assert con.expr.constant == -3


class TestLinExpr:
    def test_addition_merges_coefficients(self):
        x, y, _ = make_vars()
        expr = (x + y) + (x - 2)
        assert expr.coeffs[x.index] == 2
        assert expr.coeffs[y.index] == 1
        assert expr.constant == -2

    def test_subtraction_and_rsub(self):
        x, *_ = make_vars()
        expr = 5 - (2 * x)
        assert expr.constant == 5
        assert expr.coeffs[x.index] == -2

    def test_scalar_multiplication(self):
        x, y, _ = make_vars()
        expr = 3 * (x + 2 * y + 1)
        assert expr.coeffs[x.index] == 3
        assert expr.coeffs[y.index] == 6
        assert expr.constant == 3

    def test_non_scalar_multiplication_rejected(self):
        x, y, _ = make_vars()
        with pytest.raises(IlpError):
            (x + y) * (x + y)

    def test_value_evaluation(self):
        x, y, _ = make_vars()
        expr = 2 * x + 3 * y + 1
        assert expr.value([2.0, 1.0, 0.0]) == 8.0

    def test_invalid_operand(self):
        x, *_ = make_vars()
        with pytest.raises(IlpError):
            x + "text"

    def test_in_place_helpers(self):
        x, y, _ = make_vars()
        expr = LinExpr()
        expr.add_term(x, 2.0).add_term(x, 1.0).add_constant(4.0)
        expr.add_expr(LinExpr({y.index: 1.0}, 1.0), scale=2.0)
        assert expr.coeffs[x.index] == 3.0
        assert expr.coeffs[y.index] == 2.0
        assert expr.constant == 6.0

    def test_zero_coefficient_not_stored(self):
        x, *_ = make_vars()
        expr = LinExpr()
        expr.add_term(x, 0.0)
        assert x.index not in expr.coeffs


class TestLinSum:
    def test_sums_mixed_items(self):
        x, y, z = make_vars()
        expr = lin_sum([x, 2 * y, 3, z])
        assert expr.coeffs[x.index] == 1
        assert expr.coeffs[y.index] == 2
        assert expr.coeffs[z.index] == 1
        assert expr.constant == 3

    def test_empty_sum(self):
        expr = lin_sum([])
        assert expr.coeffs == {}
        assert expr.constant == 0

    def test_rejects_invalid_items(self):
        with pytest.raises(IlpError):
            lin_sum([object()])


class TestConstraints:
    def test_ge_constraint_bounds(self):
        x, y, _ = make_vars()
        con = x + y >= 2
        assert con.lower == 0
        assert con.upper == INF
        assert con.expr.constant == -2

    def test_eq_constraint_bounds(self):
        x, *_ = make_vars()
        con = x == 1
        assert con.lower == 0 and con.upper == 0

    def test_with_name(self):
        x, *_ = make_vars()
        con = (x <= 1).with_name("cap")
        assert con.name == "cap"


class TestHashStability:
    """Variable hashes must not depend on the process (PR 9 satellite).

    The old key mixed id(type(self)) into the hash, which varies with
    interpreter memory layout — anything ordered by variable hash (model
    row order, warm-start key sets) could then differ between the
    coordinator and its shard workers.
    """

    def test_hash_depends_only_on_index(self):
        assert hash(Variable(7, "x7")) == hash(Variable(7, "renamed"))
        assert hash(Variable(7, "x7")) != hash(Variable(8, "x8"))

    def test_hash_stable_across_processes(self):
        import pathlib
        import subprocess
        import sys

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        script = (
            "from repro.ilp.expr import Variable; "
            "print(' '.join(str(hash(Variable(i, 'v'))) for i in range(64)))"
        )
        outputs = set()
        for hash_seed in ("0", "1", "424242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONPATH": str(repo_root / "src"),
                    "PYTHONHASHSEED": hash_seed,
                },
            )
            outputs.add(result.stdout.strip())
        # identical digests under three different hash seeds -- and they
        # match this process too
        assert len(outputs) == 1
        local = " ".join(str(hash(Variable(i, "v"))) for i in range(64))
        assert outputs == {local}
