"""Unit tests for the ILP model container and the solver backends."""

import numpy as np
import pytest

from repro.ilp import (
    IlpModel,
    Sense,
    SolutionStatus,
    SolverOptions,
    lin_sum,
    solve,
    solve_with_branch_and_bound,
    solve_with_scipy,
)

BACKENDS = ["scipy", "bnb"]


def knapsack_model():
    """max 10x0 + 6x1 + 4x2 s.t. 5x0 + 4x1 + 3x2 <= 8, binary -> optimum 14 (x0, x2)."""
    model = IlpModel("knapsack")
    x = [model.add_binary(f"x{i}") for i in range(3)]
    model.add_constraint(5 * x[0] + 4 * x[1] + 3 * x[2] <= 8)
    model.maximize(10 * x[0] + 6 * x[1] + 4 * x[2])
    return model, x


class TestModelConstruction:
    def test_variable_kinds_counted(self):
        model = IlpModel()
        model.add_binary("b")
        model.add_integer("i", 0, 10)
        model.add_continuous("c", 0, 1)
        stats = model.statistics()
        assert stats["variables"] == 3
        assert stats["integers"] == 2
        assert stats["continuous"] == 1

    def test_add_constraint_type_checked(self):
        model = IlpModel()
        with pytest.raises(Exception):
            model.add_constraint("not a constraint")

    def test_compile_shapes(self):
        model, x = knapsack_model()
        compiled = model.compile()
        assert compiled.A.shape == (1, 3)
        assert compiled.c.shape == (3,)
        assert list(compiled.integrality) == [1, 1, 1]
        # maximization compiles to negated costs
        assert compiled.c[0] == -10

    def test_compile_folds_constants_into_bounds(self):
        model = IlpModel()
        x = model.add_continuous("x", 0, 10)
        model.add_constraint(x + 5 <= 8)
        compiled = model.compile()
        assert compiled.con_ub[0] == pytest.approx(3.0)

    def test_objective_constant_preserved(self):
        model = IlpModel()
        x = model.add_continuous("x", 0, 10)
        model.add_constraint(x >= 2)
        model.minimize(x + 7)
        solution = solve_with_scipy(model)
        assert solution.objective == pytest.approx(9.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackends:
    def test_knapsack_optimum(self, backend):
        model, x = knapsack_model()
        solution = solve(model, SolverOptions(time_limit=10), backend=backend)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)
        assert solution.value(x[0]) == pytest.approx(1.0)
        assert solution.value(x[2]) == pytest.approx(1.0)

    def test_infeasible_detected(self, backend):
        model = IlpModel()
        x = model.add_binary("x")
        model.add_constraint(x >= 1)
        model.add_constraint(x <= 0)
        solution = solve(model, SolverOptions(time_limit=5), backend=backend)
        assert solution.status in (SolutionStatus.INFEASIBLE, SolutionStatus.NO_SOLUTION)
        assert not solution.has_solution

    def test_equality_constraints(self, backend):
        model = IlpModel()
        x = model.add_integer("x", 0, 10)
        y = model.add_integer("y", 0, 10)
        model.add_constraint(x + y == 7)
        model.add_constraint(x - y == 1)
        model.minimize(x)
        solution = solve(model, SolverOptions(time_limit=5), backend=backend)
        assert solution.value(x) == pytest.approx(4)
        assert solution.value(y) == pytest.approx(3)

    def test_expression_value_accessor(self, backend):
        model, x = knapsack_model()
        solution = solve(model, SolverOptions(time_limit=5), backend=backend)
        total_weight = solution.value(lin_sum([5 * x[0], 4 * x[1], 3 * x[2]]))
        assert total_weight <= 8 + 1e-6


class TestBranchAndBoundSpecifics:
    def test_pure_lp_is_solved_without_branching(self):
        model = IlpModel()
        x = model.add_continuous("x", 0, 4)
        y = model.add_continuous("y", 0, 4)
        model.add_constraint(x + y >= 3)
        model.minimize(2 * x + y)
        solution = solve_with_branch_and_bound(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)
        assert solution.node_count == 1

    def test_node_limit_respected(self):
        model, _ = knapsack_model()
        solution = solve_with_branch_and_bound(
            model, SolverOptions(time_limit=10, node_limit=1)
        )
        # one node is not enough to prove optimality of a fractional knapsack
        assert solution.node_count <= 1

    def test_binary_value_helper(self):
        model, x = knapsack_model()
        solution = solve_with_scipy(model)
        assert solution.binary_value(x[0]) is True

    def test_solution_as_dict(self):
        model, _ = knapsack_model()
        solution = solve_with_scipy(model)
        info = solution.as_dict()
        assert info["status"] == "optimal"
        assert "solve_time" in info


class TestSolveDispatch:
    def test_unknown_backend(self):
        model, _ = knapsack_model()
        with pytest.raises(ValueError):
            solve(model, backend="gurobi")
