"""True warm-start solutions (not just objective bounds) in the backends."""

import numpy as np
import pytest

from repro.ilp import (
    IlpModel,
    SolutionStatus,
    SolverOptions,
    solve_with_branch_and_bound,
    solve_with_scipy,
)


def _model():
    """min x + y  s.t.  x + y >= 3,  x, y integer in [0, 5]; optimum 3."""
    model = IlpModel("warm-start")
    x = model.add_integer("x", lower=0, upper=5)
    y = model.add_integer("y", lower=0, upper=5)
    model.add_constraint(x + y >= 3)
    model.minimize(x + y)
    return model


class TestCompiledFeasibility:
    def test_feasible_and_infeasible_assignments(self):
        compiled = _model().compile()
        assert compiled.is_feasible([1, 2])
        assert compiled.is_feasible([2.0000001, 2])     # within tolerance
        assert not compiled.is_feasible([0, 0])          # violates the row
        assert not compiled.is_feasible([1.5, 2])        # fractional integer
        assert not compiled.is_feasible([6, 0])          # violates the bound
        assert not compiled.is_feasible([1, 2, 3])       # wrong arity
        assert compiled.objective_value(np.array([1.0, 2.0])) == pytest.approx(3.0)


class TestBranchAndBoundWarmSolution:
    def test_warm_solution_is_improved_when_possible(self):
        solution = solve_with_branch_and_bound(
            _model(), SolverOptions(warm_start_solution=[2, 2])
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)

    def test_optimal_warm_solution_is_returned_as_proven_optimal(self):
        solution = solve_with_branch_and_bound(
            _model(), SolverOptions(warm_start_solution=[1, 2])
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)
        assert "warm-start solution proven optimal" in solution.message

    def test_zero_node_limit_returns_the_warm_solution_unimproved(self):
        """The crucial difference to warm_start_objective: with no search
        budget at all the solve still *returns a solution* (the warm one)."""
        solution = solve_with_branch_and_bound(
            _model(), SolverOptions(warm_start_solution=[2, 2], node_limit=0)
        )
        assert solution.status is SolutionStatus.FEASIBLE
        assert solution.objective == pytest.approx(4.0)
        assert solution.values is not None
        assert "warm-start solution kept" in solution.message
        # objective-only warm start finds nothing under the same budget
        bound_only = solve_with_branch_and_bound(
            _model(), SolverOptions(warm_start_objective=4.0, node_limit=0)
        )
        assert bound_only.status is SolutionStatus.NO_SOLUTION

    def test_infeasible_warm_solution_is_ignored(self):
        solution = solve_with_branch_and_bound(
            _model(), SolverOptions(warm_start_solution=[0, 0])
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            solve_with_branch_and_bound(
                _model(), SolverOptions(warm_start_solution=[1, 2, 3])
            )

    def test_tighter_external_objective_keeps_solution_as_fallback(self):
        """An explicit bound tighter than the solution's own objective (the
        scheduler injects the baseline cost like this) prunes the search but
        must not crash — the solution stays as the fallback incumbent, and
        the result is not claimed optimal."""
        solution = solve_with_branch_and_bound(
            _model(),
            SolverOptions(warm_start_solution=[2, 2], warm_start_objective=1.0),
        )
        assert solution.status is SolutionStatus.FEASIBLE
        assert solution.objective == pytest.approx(4.0)
        assert "warm-start solution kept" in solution.message

    def test_solution_beats_looser_explicit_objective(self):
        solution = solve_with_branch_and_bound(
            _model(),
            SolverOptions(warm_start_solution=[1, 2], warm_start_objective=5.0),
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)


class TestScipyWarmSolution:
    def test_solution_derives_the_objective_cutoff(self):
        solution = solve_with_scipy(
            _model(), SolverOptions(warm_start_solution=[2, 2])
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)

    def test_infeasible_solution_is_ignored_and_noted(self):
        solution = solve_with_scipy(
            _model(), SolverOptions(warm_start_solution=[0, 0])
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)
        assert "warm-start solution rejected" in solution.message

    def test_wrong_arity_raises_like_branch_and_bound(self):
        with pytest.raises(ValueError):
            solve_with_scipy(_model(), SolverOptions(warm_start_solution=[1, 2, 3]))

    def test_explicit_objective_takes_precedence(self):
        solution = solve_with_scipy(
            _model(),
            SolverOptions(warm_start_solution=[2, 2], warm_start_objective=10.0),
        )
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)
