"""Unit tests for the incremental cost state and the undoable editor."""

import pytest

from repro.core.two_stage import baseline_schedule
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import spmv
from repro.model.cost import synchronous_cost
from repro.model.instance import make_instance
from repro.model.pebbling import compute_op
from repro.model.serialization import schedule_to_dict
from repro.refine.editing import IncrementalCost, ScheduleEditor


@pytest.fixture
def schedule():
    dag = spmv(4, seed=1)
    assign_random_memory_weights(dag, seed=7)
    instance = make_instance(dag, num_processors=2, cache_factor=3.0, g=1.0, L=10.0)
    return baseline_schedule(instance, synchronous=True, seed=0).mbsp_schedule


def assert_cost_consistent(editor):
    """The incremental total always matches the exact evaluator."""
    assert editor.cost.total == pytest.approx(
        synchronous_cost(editor.schedule), abs=1e-9
    )


class TestIncrementalCost:
    def test_initial_total_matches_schedule_cost(self, schedule):
        assert IncrementalCost(schedule).total == pytest.approx(
            synchronous_cost(schedule)
        )

    def test_empty_steps_do_not_contribute(self, schedule):
        cost = IncrementalCost(schedule)
        before = cost.total
        cost.insert_step(0)
        assert cost.total == pytest.approx(before)
        cost.remove_step(0)
        assert cost.total == pytest.approx(before)


class TestScheduleEditor:
    def test_primitives_keep_cost_in_sync(self, schedule):
        editor = ScheduleEditor(schedule)
        # find a step/processor with a compute op and remove + reinsert it
        for s, step in enumerate(schedule.supersteps):
            for p, ps in enumerate(step.processor_steps):
                if ps.compute_phase:
                    editor.begin()
                    op = editor.pop_compute_op(s, p, 0)
                    assert_cost_consistent(editor)
                    editor.insert_compute_op(s, p, 0, op)
                    assert_cost_consistent(editor)
                    return
        pytest.fail("no compute op found")

    def test_rollback_restores_schedule_and_cost_exactly(self, schedule):
        editor = ScheduleEditor(schedule)
        reference = schedule_to_dict(schedule)
        total = editor.cost.total

        editor.begin()
        # a messy compound edit across several primitives
        for s, step in enumerate(schedule.supersteps):
            for p, ps in enumerate(step.processor_steps):
                if ps.load_phase:
                    editor.remove_phase_node(s, p, "load", 0)
                if ps.compute_phase:
                    editor.pop_compute_op(s, p, 0)
        editor.insert_empty_step(1)
        editor.insert_compute_op(1, 0, 0, compute_op(next(iter(schedule.dag.nodes))))
        assert schedule_to_dict(schedule) != reference
        editor.rollback()

        assert schedule_to_dict(schedule) == reference
        assert editor.cost.total == pytest.approx(total, abs=1e-9)
        assert_cost_consistent(editor)

    def test_phase_edits_touch_affected_range(self, schedule):
        editor = ScheduleEditor(schedule)
        editor.begin()
        assert editor.first_affected is None
        s = schedule.num_supersteps - 1
        editor.insert_phase_node(s, 0, "save", 0, next(iter(schedule.dag.nodes)))
        assert editor.first_affected == s
        assert editor.last_affected == s
        assert not editor.structural
        editor.insert_empty_step(0)
        assert editor.first_affected == 0
        assert editor.structural
        editor.rollback()

    def test_remove_empty_step_rejects_nonempty(self, schedule):
        editor = ScheduleEditor(schedule)
        editor.begin()
        nonempty = next(
            s for s, step in enumerate(schedule.supersteps) if not step.is_empty()
        )
        with pytest.raises(ValueError):
            editor.remove_empty_step(nonempty)

    def test_unknown_phase_rejected(self, schedule):
        editor = ScheduleEditor(schedule)
        with pytest.raises(ValueError):
            editor.insert_phase_node(0, 0, "compute", 0, "x")
