"""Unit and integration tests of the refinement engine."""

import pytest

from repro.core.two_stage import baseline_schedule, run_two_stage
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import fork_join_dag, iterated_spmv, spmv
from repro.exceptions import InvalidScheduleError
from repro.model.cost import asynchronous_cost, synchronous_cost
from repro.model.instance import make_instance
from repro.model.validation import validate_schedule
from repro.portfolio.members import schedule_digest
from repro.refine import (
    MOVE_FAMILIES,
    IncrementalValidator,
    RefineConfig,
    Refiner,
    generate_moves,
    refine_schedule,
)


def _instance(dag_builder=lambda: spmv(4, seed=1), mem_seed=7, processors=2):
    dag = dag_builder()
    assign_random_memory_weights(dag, seed=mem_seed)
    return make_instance(dag, num_processors=processors, cache_factor=3.0, g=1.0, L=10.0)


@pytest.fixture
def baseline():
    return baseline_schedule(_instance(), synchronous=True, seed=0)


class TestRefiner:
    def test_refined_schedule_is_valid_and_never_worse(self, baseline):
        result = refine_schedule(baseline.mbsp_schedule, budget=2000, seed=0)
        validate_schedule(result.schedule)
        assert result.final_cost <= result.initial_cost + 1e-9
        assert result.final_cost == pytest.approx(
            synchronous_cost(result.schedule), abs=1e-9
        )
        assert result.initial_cost == pytest.approx(baseline.cost)

    def test_input_schedule_is_not_mutated(self, baseline):
        digest = schedule_digest(baseline.mbsp_schedule)
        refine_schedule(baseline.mbsp_schedule, budget=1000, seed=0)
        assert schedule_digest(baseline.mbsp_schedule) == digest

    def test_deterministic_for_fixed_seed(self, baseline):
        first = refine_schedule(baseline.mbsp_schedule, budget=1500, seed=3)
        second = refine_schedule(baseline.mbsp_schedule, budget=1500, seed=3)
        assert first.final_cost == second.final_cost
        assert schedule_digest(first.schedule) == schedule_digest(second.schedule)
        assert [(e.move, e.delta) for e in first.trace] == [
            (e.move, e.delta) for e in second.trace
        ]

    def test_budget_zero_returns_input_cost(self, baseline):
        result = refine_schedule(baseline.mbsp_schedule, budget=0, seed=0)
        assert result.final_cost == pytest.approx(baseline.cost)
        assert result.proposals == 0
        assert result.accepted == 0

    def test_budget_is_respected(self, baseline):
        result = refine_schedule(baseline.mbsp_schedule, budget=50, seed=0)
        assert result.proposals <= 50

    def test_trace_costs_are_monotone_under_hill_climbing(self, baseline):
        result = refine_schedule(baseline.mbsp_schedule, budget=2500, seed=0)
        costs = [result.initial_cost] + [entry.cost for entry in result.trace]
        assert all(b < a for a, b in zip(costs, costs[1:]))
        assert result.accepted == len(result.trace)

    def test_annealing_never_returns_worse_than_input(self, baseline):
        config = RefineConfig(strategy="anneal", budget=1500, seed=11)
        result = Refiner(config).refine(baseline.mbsp_schedule)
        validate_schedule(result.schedule)
        assert result.final_cost <= result.initial_cost + 1e-9
        assert result.final_cost == pytest.approx(
            synchronous_cost(result.schedule), abs=1e-9
        )

    def test_asynchronous_mode_never_regresses_makespan(self):
        instance = _instance(lambda: iterated_spmv(3, 2, seed=42), mem_seed=42)
        base = baseline_schedule(instance, synchronous=False, seed=0)
        result = refine_schedule(base.mbsp_schedule, budget=1500, seed=0,
                                 synchronous=False)
        validate_schedule(result.schedule)
        assert result.final_cost <= base.cost + 1e-9
        assert result.final_cost == pytest.approx(
            asynchronous_cost(result.schedule), abs=1e-9
        )

    def test_annealing_asynchronous_mode_gates_on_the_makespan(self):
        instance = _instance(lambda: iterated_spmv(3, 2, seed=42), mem_seed=42)
        base = baseline_schedule(instance, synchronous=False, seed=0)
        config = RefineConfig(strategy="anneal", budget=1200, seed=4)
        result = Refiner(config).refine(base.mbsp_schedule, synchronous=False)
        validate_schedule(result.schedule)
        assert result.final_cost <= base.cost + 1e-9
        assert result.final_cost == pytest.approx(
            asynchronous_cost(result.schedule), abs=1e-9
        )

    def test_invalid_input_schedule_raises(self, baseline):
        broken = baseline.mbsp_schedule.copy()
        # drop every save phase: the sinks never reach slow memory
        for step in broken.supersteps:
            for ps in step.processor_steps:
                ps.save_phase.clear()
        with pytest.raises(InvalidScheduleError):
            refine_schedule(broken, budget=10)

    def test_refines_multiple_pipelines(self):
        instance = _instance(processors=4)
        for scheduler, policy in (("bspg", "clairvoyant"), ("cilk", "lru")):
            two_stage = run_two_stage(instance, scheduler=scheduler, policy=policy)
            result = refine_schedule(two_stage.mbsp_schedule, budget=1200, seed=0)
            validate_schedule(result.schedule)
            assert result.final_cost <= two_stage.cost + 1e-9

    def test_finds_improvements_on_reference_instance(self, baseline):
        """The spmv baseline is known to leave slack on the table."""
        result = refine_schedule(baseline.mbsp_schedule, budget=3000, seed=0)
        assert result.final_cost < baseline.cost - 1e-9
        assert result.accepted > 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RefineConfig(strategy="tabu")
        with pytest.raises(ValueError):
            RefineConfig(budget=-1)

    def test_summary_mentions_costs(self, baseline):
        result = refine_schedule(baseline.mbsp_schedule, budget=500, seed=0)
        text = result.summary()
        assert "refine:" in text and "accepted" in text


class TestMoveGeneration:
    def test_families_cover_known_names(self, baseline):
        moves = generate_moves(baseline.mbsp_schedule)
        assert moves
        assert {m.name for m in moves} <= set(MOVE_FAMILIES)

    def test_unknown_family_rejected(self, baseline):
        with pytest.raises(ValueError):
            generate_moves(baseline.mbsp_schedule, families=("teleport",))

    def test_family_filter_restricts_neighborhood(self, baseline):
        merges = generate_moves(baseline.mbsp_schedule, families=("merge",))
        assert merges
        assert all(m.name == "merge" for m in merges)


class TestIncrementalValidator:
    def test_accepts_valid_edit_and_rejects_invalid_one(self, baseline):
        work = baseline.mbsp_schedule.copy()
        validator = IncrementalValidator(work)
        # removing a load that is needed later must be rejected
        for s, step in enumerate(work.supersteps):
            for p, ps in enumerate(step.processor_steps):
                if ps.load_phase:
                    node = ps.load_phase.pop(0)
                    consumed_later = any(
                        node in work.dag.parents(v)
                        for later in work.supersteps[s + 1:]
                        for q in later.processor_steps
                        for v in q.computed_nodes()
                    )
                    if consumed_later:
                        assert validator.revalidate(s, s) is False
                        ps.load_phase.insert(0, node)
                        assert validator.revalidate(s, s) is True
                        return
                    ps.load_phase.insert(0, node)
        pytest.skip("no load feeding later computes in this schedule")

    def test_noop_revalidate_with_none_is_true(self, baseline):
        validator = IncrementalValidator(baseline.mbsp_schedule.copy())
        assert validator.revalidate(None) is True


def test_fork_join_refinement_on_one_processor():
    dag = fork_join_dag(width=3, stages=2)
    assign_random_memory_weights(dag, seed=5)
    instance = make_instance(dag, num_processors=1, cache_factor=3.0, g=1.0, L=10.0)
    base = baseline_schedule(instance, synchronous=True, seed=0)
    result = refine_schedule(base.mbsp_schedule, budget=1500, seed=0)
    validate_schedule(result.schedule)
    assert result.final_cost <= base.cost + 1e-9
