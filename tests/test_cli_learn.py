"""CLI coverage of the learn subcommands and the adaptive portfolio flags.

The round-trip test walks the documented workflow end to end: run a small
exhaustive portfolio with ``--results``, mine the JSONL into a history,
dry-run the selection, render the report, then re-run the portfolio with
``--select adaptive`` and check the selection/regret footer.
"""

import pytest

from repro import cli


class TestParser:
    def test_learn_mine_arguments(self):
        args = cli.build_parser().parse_args([
            "learn", "mine", "--results", "a.jsonl", "--results", "b.jsonl",
            "--limit", "4", "--output", "h.json", "--processors", "8",
        ])
        assert args.results == ["a.jsonl", "b.jsonl"]
        assert args.limit == 4
        assert args.output == "h.json"
        assert args.processors == 8
        assert args.which == "tiny"

    def test_learn_mine_requires_results(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["learn", "mine"])

    def test_learn_select_arguments(self):
        args = cli.build_parser().parse_args([
            "learn", "select", "--history", "h.json", "--members",
            "bspg+clairvoyant,ilp", "--top-k", "2", "--selector", "knn",
            "--seed", "7",
        ])
        assert args.history == "h.json"
        assert args.members == "bspg+clairvoyant,ilp"
        assert args.top_k == 2
        assert args.selector == "knn"
        assert args.seed == 7

    def test_learn_report_arguments(self):
        args = cli.build_parser().parse_args([
            "learn", "report", "--history", "h.json", "--format", "json",
            "--output", "report.json",
        ])
        assert args.history == "h.json"
        assert args.format == "json"
        assert args.output == "report.json"

    def test_portfolio_adaptive_arguments(self):
        args = cli.build_parser().parse_args([
            "portfolio", "--select", "adaptive", "--top-k", "2",
            "--history", "h.json", "--selector", "knn",
        ])
        assert args.select == "adaptive"
        assert args.top_k == 2
        assert args.history == "h.json"
        assert args.selector == "knn"

    def test_portfolio_defaults_to_exhaustive(self):
        args = cli.build_parser().parse_args(["portfolio"])
        assert args.select == "exhaustive"
        assert args.history is None
        assert args.selector == "greedy"

    def test_unknown_selector_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([
                "portfolio", "--selector", "thompson"
            ])
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["portfolio", "--select", "random"])


class TestLearnWorkflow:
    MEMBERS = "bspg+clairvoyant,cilk+lru"

    def _mine(self, tmp_path, capsys):
        results = tmp_path / "results.jsonl"
        history = tmp_path / "history.json"
        assert cli.main([
            "portfolio", "--members", self.MEMBERS, "--limit", "2",
            "--time-limit", "0.5", "--results", str(results),
        ]) == 0
        assert cli.main([
            "learn", "mine", "--results", str(results), "--limit", "2",
            "--output", str(history),
        ]) == 0
        out = capsys.readouterr().out
        assert "mined: 4 observation(s)" in out
        assert "digest:" in out
        return history

    def test_mine_select_report_adaptive_roundtrip(self, tmp_path, capsys):
        history = self._mine(tmp_path, capsys)

        assert cli.main([
            "learn", "select", "--history", str(history), "--members",
            self.MEMBERS, "--limit", "2", "--top-k", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "predicted top-1 members per instance" in out
        assert "would run 2/4 member job(s)" in out

        assert cli.main([
            "learn", "report", "--history", str(history),
        ]) == 0
        assert "bspg+clairvoyant" in capsys.readouterr().out

        assert cli.main([
            "portfolio", "--members", self.MEMBERS, "--limit", "2",
            "--time-limit", "0.5", "--select", "adaptive", "--top-k", "1",
            "--history", str(history),
        ]) == 0
        out = capsys.readouterr().out
        assert "~ adaptive selection (greedy, top-1): ran 2/4" in out
        assert "~ aggregate regret:" in out

    def test_adaptive_without_history_warns_and_falls_back(self, capsys):
        with pytest.warns(UserWarning, match="without a mined history"):
            exit_code = cli.main([
                "portfolio", "--members", self.MEMBERS, "--limit", "1",
                "--time-limit", "0.5", "--select", "adaptive",
            ])
        assert exit_code == 0
        assert "~ adaptive selection" not in capsys.readouterr().out

    def test_adaptive_with_unusable_history_warns_and_falls_back(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.warns(UserWarning) as caught:
            exit_code = cli.main([
                "portfolio", "--members", self.MEMBERS, "--limit", "1",
                "--time-limit", "0.5", "--select", "adaptive",
                "--history", str(bad),
            ])
        assert exit_code == 0
        messages = [str(w.message) for w in caught]
        # the unusable file warns, then the now-history-less adaptive
        # request warns again as it falls back to exhaustive evaluation
        assert any("ignoring unusable history" in m for m in messages)
        assert any("without a mined history" in m for m in messages)
        assert "~ adaptive selection" not in capsys.readouterr().out
