"""Unit and integration tests for the BSP schedulers (greedy, Cilk, DFS, ILP)."""

import pytest

from repro.bsp.cilk import cilk_bsp_schedule, simulate_work_stealing
from repro.bsp.dfs import dfs_bsp_schedule, dfs_order
from repro.bsp.greedy import GreedyBspParameters, greedy_bsp_schedule
from repro.bsp.ilp import BspIlpConfig, ilp_bsp_schedule
from repro.bsp.superstepify import placement_from_bsp, superstepify
from repro.dag.generators import chain_dag, fork_join_dag, random_layered_dag, spmv
from repro.exceptions import ScheduleError
from repro.ilp import SolverOptions


DAGS = [
    ("spmv", lambda: spmv(4, seed=1)),
    ("layered", lambda: random_layered_dag(4, 3, seed=2)),
    ("chain", lambda: chain_dag(8)),
    ("forkjoin", lambda: fork_join_dag(3, 2)),
]


@pytest.mark.parametrize("name,builder", DAGS)
@pytest.mark.parametrize("num_procs", [1, 2, 4])
class TestGreedyScheduler:
    def test_produces_valid_schedule(self, name, builder, num_procs):
        dag = builder()
        schedule = greedy_bsp_schedule(dag, num_procs)
        schedule.validate()
        computable = [v for v in dag.nodes if not dag.is_source(v)]
        assert len(schedule.assignment) == len(computable)

    def test_all_processors_in_range(self, name, builder, num_procs):
        dag = builder()
        schedule = greedy_bsp_schedule(dag, num_procs)
        assert all(0 <= a.processor < num_procs for a in schedule.assignment.values())


class TestGreedySchedulerBehaviour:
    def test_chain_stays_on_one_processor(self):
        dag = chain_dag(10)
        schedule = greedy_bsp_schedule(dag, 4)
        procs = {schedule.processor_of(v) for v in dag.nodes if not dag.is_source(v)}
        assert len(procs) == 1
        assert schedule.num_supersteps == 1

    def test_parallel_work_is_distributed(self):
        dag = random_layered_dag(3, 8, edge_probability=0.2, seed=1)
        schedule = greedy_bsp_schedule(dag, 4)
        work = schedule.work_per_processor()
        assert sum(1 for w in work if w > 0) >= 2

    def test_custom_parameters(self):
        dag = spmv(5, seed=2)
        params = GreedyBspParameters(locality_weight=0.0, balance_weight=5.0)
        schedule = greedy_bsp_schedule(dag, 4, parameters=params)
        schedule.validate()


class TestWorkStealing:
    def test_trace_covers_all_nodes(self, medium_dag):
        trace = simulate_work_stealing(medium_dag, 3, seed=1)
        computable = [v for v in medium_dag.nodes if not medium_dag.is_source(v)]
        assert set(trace.placement) == set(computable)
        assert len(trace.order) == len(computable)
        assert trace.makespan > 0

    def test_finish_times_respect_precedence(self, medium_dag):
        trace = simulate_work_stealing(medium_dag, 3, seed=1)
        for u, v in medium_dag.edges():
            if u in trace.finish_time and v in trace.finish_time:
                assert trace.finish_time[u] <= trace.finish_time[v] - medium_dag.omega(v) + 1e-9

    def test_deterministic_for_fixed_seed(self, medium_dag):
        t1 = simulate_work_stealing(medium_dag, 3, seed=5)
        t2 = simulate_work_stealing(medium_dag, 3, seed=5)
        assert t1.placement == t2.placement

    def test_single_processor_no_steals(self, medium_dag):
        trace = simulate_work_stealing(medium_dag, 1, seed=0)
        assert trace.steals == 0

    def test_cilk_bsp_schedule_valid(self, medium_dag):
        schedule = cilk_bsp_schedule(medium_dag, 3, seed=2)
        schedule.validate()


class TestDfs:
    def test_order_is_topological(self, medium_dag):
        order = dfs_order(medium_dag)
        position = {v: i for i, v in enumerate(order)}
        for u, v in medium_dag.edges():
            if medium_dag.is_source(u):
                continue
            assert position[u] < position[v]

    def test_order_covers_all_computable_nodes(self, medium_dag):
        order = dfs_order(medium_dag)
        computable = [v for v in medium_dag.nodes if not medium_dag.is_source(v)]
        assert sorted(map(str, order)) == sorted(map(str, computable))

    def test_dfs_schedule_single_superstep(self, small_spmv):
        schedule = dfs_bsp_schedule(small_spmv)
        schedule.validate()
        assert schedule.num_supersteps == 1
        assert schedule.num_processors == 1


class TestSuperstepify:
    def test_cross_processor_dependencies_cross_supersteps(self, diamond_dag):
        placement = {"b": 0, "c": 1, "d": 0}
        order = ["b", "c", "d"]
        schedule = superstepify(diamond_dag, placement, order, 2)
        schedule.validate()
        assert schedule.superstep_of("d") > schedule.superstep_of("c")

    def test_same_processor_dependencies_share_superstep(self, diamond_dag):
        placement = {"b": 0, "c": 0, "d": 0}
        schedule = superstepify(diamond_dag, placement, ["b", "c", "d"], 1)
        assert schedule.num_supersteps == 1

    def test_missing_placement_rejected(self, diamond_dag):
        with pytest.raises(ScheduleError):
            superstepify(diamond_dag, {"b": 0}, ["b", "c", "d"], 1)

    def test_non_topological_order_rejected(self, diamond_dag):
        placement = {"b": 0, "c": 0, "d": 0}
        with pytest.raises(ScheduleError):
            superstepify(diamond_dag, placement, ["d", "b", "c"], 1)

    def test_placement_roundtrip(self, medium_dag):
        bsp = greedy_bsp_schedule(medium_dag, 3)
        placement, order = placement_from_bsp(bsp)
        rebuilt = superstepify(medium_dag, placement, order, 3)
        rebuilt.validate()
        for v in placement:
            assert rebuilt.processor_of(v) == placement[v]


class TestIlpBspScheduler:
    def test_small_instance_valid_and_not_worse_than_greedy(self, diamond_dag):
        from repro.bsp.cost import bsp_cost
        from repro.bsp.greedy import greedy_bsp_schedule

        config = BspIlpConfig(solver_options=SolverOptions(time_limit=5))
        schedule = ilp_bsp_schedule(diamond_dag, 2, g=1, L=2, config=config)
        schedule.validate()
        greedy = greedy_bsp_schedule(diamond_dag, 2)
        assert bsp_cost(schedule, 1, 2) <= bsp_cost(greedy, 1, 2) + 1e-6

    def test_falls_back_gracefully_on_tiny_budget(self, small_spmv):
        config = BspIlpConfig(solver_options=SolverOptions(time_limit=0.01))
        schedule = ilp_bsp_schedule(small_spmv, 2, config=config)
        schedule.validate()
