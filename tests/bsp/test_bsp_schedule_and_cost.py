"""Unit tests for the BSP schedule representation and BSP cost model."""

import pytest

from repro.bsp.cost import bsp_cost, bsp_cost_breakdown
from repro.bsp.schedule import BspSchedule
from repro.exceptions import ScheduleError


@pytest.fixture
def diamond_bsp(diamond_dag):
    schedule = BspSchedule(diamond_dag, num_processors=2)
    schedule.assign("b", 0, 0)
    schedule.assign("c", 1, 0)
    schedule.assign("d", 0, 1)
    return schedule


class TestBspSchedule:
    def test_basic_queries(self, diamond_bsp):
        assert diamond_bsp.processor_of("b") == 0
        assert diamond_bsp.superstep_of("d") == 1
        assert diamond_bsp.num_supersteps == 2
        assert diamond_bsp.is_assigned("c")
        assert not diamond_bsp.is_assigned("a")

    def test_cells_and_order(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 1)
        schedule.assign("b", 0, 0)
        schedule.assign("c", 0, 0)
        schedule.assign("d", 0, 1)
        assert schedule.cell(0, 0) == ["b", "c"]
        assert schedule.superstep_nodes(0) == ["b", "c"]
        lists = schedule.compute_lists()
        assert lists[1][0] == ["d"]

    def test_source_assignment_rejected(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 2)
        with pytest.raises(ScheduleError):
            schedule.assign("a", 0, 0)

    def test_unknown_node_and_bad_indices(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 2)
        with pytest.raises(ScheduleError):
            schedule.assign("zzz", 0, 0)
        with pytest.raises(ScheduleError):
            schedule.assign("b", 5, 0)
        with pytest.raises(ScheduleError):
            schedule.assign("b", 0, -1)

    def test_validate_detects_missing_nodes(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 2)
        schedule.assign("b", 0, 0)
        with pytest.raises(ScheduleError, match="not assigned"):
            schedule.validate()

    def test_validate_detects_precedence_violation(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 2)
        schedule.assign("b", 0, 1)
        schedule.assign("c", 1, 0)
        schedule.assign("d", 1, 0)   # d before b finishes on another processor
        assert not schedule.is_valid()

    def test_same_cell_order_dependency(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 1)
        schedule.assign("d", 0, 0)   # order 0
        schedule.assign("b", 0, 0)   # order 1 -> b after d violates b -> d
        schedule.assign("c", 0, 0)
        assert not schedule.is_valid()

    def test_valid_schedule_passes(self, diamond_bsp):
        diamond_bsp.validate()
        assert diamond_bsp.is_valid()

    def test_work_per_processor(self, diamond_bsp, diamond_dag):
        work = diamond_bsp.work_per_processor()
        assert work[0] == diamond_dag.omega("b") + diamond_dag.omega("d")
        assert work[1] == diamond_dag.omega("c")

    def test_compact_supersteps(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 1)
        schedule.assign("b", 0, 0)
        schedule.assign("c", 0, 0)
        schedule.assign("d", 0, 5)
        compacted = schedule.compact_supersteps()
        assert compacted.num_supersteps == 2
        assert compacted.superstep_of("d") == 1


class TestBspCost:
    def test_breakdown_components(self, diamond_bsp, diamond_dag):
        breakdown = bsp_cost_breakdown(diamond_bsp, g=1.0, L=10.0)
        # work: superstep 0 max(omega(b), omega(c)) = 3, superstep 1 omega(d) = 1
        assert breakdown.work == 4
        assert breakdown.synchronization == 20
        # c (mu=2) must travel from processor 1 to 0; the source a is needed
        # by both processors
        assert breakdown.communication > 0
        assert breakdown.total == bsp_cost(diamond_bsp, g=1.0, L=10.0)

    def test_zero_g_and_L(self, diamond_bsp):
        breakdown = bsp_cost_breakdown(diamond_bsp, g=0.0, L=0.0)
        assert breakdown.communication == 0
        assert breakdown.synchronization == 0
        assert breakdown.total == breakdown.work

    def test_single_processor_has_no_communication_between_nodes(self, diamond_dag):
        schedule = BspSchedule(diamond_dag, 1)
        for i, v in enumerate(["b", "c", "d"]):
            schedule.assign(v, 0, 0)
        breakdown = bsp_cost_breakdown(schedule, g=1.0, L=0.0)
        # only the source value a needs to be received
        assert breakdown.communication == diamond_dag.mu("a")
