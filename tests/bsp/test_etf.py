"""Tests for the ETF (earliest-task-first) list scheduler."""

import pytest

from repro.bsp.etf import etf_bsp_schedule, etf_placement
from repro.cache import two_stage_schedule
from repro.core.two_stage import run_two_stage
from repro.dag.generators import chain_dag, fork_join_dag, random_layered_dag, spmv
from repro.model import make_instance, validate_schedule


class TestEtfPlacement:
    def test_all_nodes_placed_with_consistent_times(self, medium_dag):
        result = etf_placement(medium_dag, 3, g=1.0)
        computable = [v for v in medium_dag.nodes if not medium_dag.is_source(v)]
        assert set(result.placement) == set(computable)
        for v in computable:
            assert result.finish_time[v] == pytest.approx(
                result.start_time[v] + medium_dag.omega(v)
            )
        assert result.makespan == pytest.approx(max(result.finish_time.values()))

    def test_precedence_respected_in_start_times(self, medium_dag):
        result = etf_placement(medium_dag, 3, g=1.0)
        for u, v in medium_dag.edges():
            if medium_dag.is_source(u):
                continue
            assert result.start_time[v] >= result.finish_time[u] - 1e-9

    def test_cross_processor_dependency_pays_communication(self, diamond_dag):
        result = etf_placement(diamond_dag, 2, g=5.0)
        for u, v in diamond_dag.edges():
            if diamond_dag.is_source(u):
                continue
            if result.placement[u] != result.placement[v]:
                assert result.start_time[v] >= result.finish_time[u] + 5.0 * diamond_dag.mu(u) - 1e-9

    def test_chain_has_no_idle_time_on_one_processor(self):
        dag = chain_dag(8, omega=2.0)
        result = etf_placement(dag, 4, g=1.0)
        assert result.makespan == pytest.approx(7 * 2.0)
        assert len(set(result.placement.values())) == 1

    def test_parallel_fork_join_uses_multiple_processors(self):
        dag = fork_join_dag(width=6, stages=1, omega=4.0)
        result = etf_placement(dag, 3, g=0.0)
        assert len(set(result.placement.values())) == 3

    def test_invalid_processor_count(self, diamond_dag):
        with pytest.raises(ValueError):
            etf_placement(diamond_dag, 0)


class TestEtfBspSchedule:
    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_valid_bsp_schedule(self, procs):
        dag = random_layered_dag(4, 4, seed=11)
        schedule = etf_bsp_schedule(dag, procs, g=1.0)
        schedule.validate()

    def test_usable_in_two_stage_pipeline(self, small_spmv):
        instance = make_instance(small_spmv, num_processors=2, cache_factor=3.0, g=1, L=10)
        bsp = etf_bsp_schedule(small_spmv, 2, g=1.0)
        schedule = two_stage_schedule(bsp, instance)
        validate_schedule(schedule)

    def test_registered_as_first_stage(self, small_instance):
        result = run_two_stage(small_instance, scheduler="etf", policy="clairvoyant")
        validate_schedule(result.mbsp_schedule)
        assert result.scheduler_name == "etf"
