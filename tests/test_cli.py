"""Tests for the command-line interface."""

import json

import pytest

from repro import cli
from repro.dag import io as dag_io
from repro.dag.generators import spmv


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = cli.build_parser().parse_args(["schedule"])
        assert args.generator == "spmv"
        assert args.processors == 2
        assert args.method == "baseline"

    def test_experiment_arguments(self):
        args = cli.build_parser().parse_args(["experiment", "--table", "4", "--limit", "2"])
        assert args.table == 4
        assert args.limit == 2
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.resume is False

    def test_experiment_engine_arguments(self):
        args = cli.build_parser().parse_args([
            "experiment", "--workers", "4", "--cache-dir", "/tmp/c",
            "--results", "r.jsonl", "--resume", "--node-limit", "500",
        ])
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.results == "r.jsonl"
        assert args.resume is True
        assert args.node_limit == 500

    def test_portfolio_arguments(self):
        args = cli.build_parser().parse_args([
            "portfolio", "--members", "bspg+clairvoyant,ilp", "--limit", "3",
            "--workers", "2",
        ])
        assert args.members == "bspg+clairvoyant,ilp"
        assert args.limit == 3
        assert args.workers == 2
        assert args.backend is None
        assert args.prune_gap == 0.0
        assert args.no_prune is False

    def test_backend_arguments(self):
        for command in (["schedule"], ["experiment"], ["portfolio"]):
            args = cli.build_parser().parse_args(command + ["--backend", "auto"])
            assert args.backend == "auto"

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["portfolio", "--backend", "gurobi"])

    def test_prune_arguments(self):
        args = cli.build_parser().parse_args([
            "portfolio", "--prune-gap", "0.25", "--no-prune",
        ])
        assert args.prune_gap == 0.25
        assert args.no_prune is True


class TestScheduleCommand:
    def test_baseline_with_generator(self, capsys):
        exit_code = cli.main([
            "schedule", "--generator", "spmv", "--size", "4", "--processors", "2",
            "--method", "baseline", "--render",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "synchronous cost" in out
        assert "superstep" in out
        assert "makespan" in out  # Gantt chart rendered

    def test_schedule_from_dag_file_and_output(self, tmp_path, capsys):
        dag_path = tmp_path / "dag.json"
        dag_io.save_json(spmv(4, seed=2), dag_path)
        out_path = tmp_path / "schedule.json"
        exit_code = cli.main([
            "schedule", "--dag-file", str(dag_path), "--processors", "2",
            "--method", "baseline", "--output", str(out_path),
        ])
        assert exit_code == 0
        data = json.loads(out_path.read_text())
        assert data["instance"]["num_processors"] == 2
        assert data["supersteps"]

    def test_unknown_generator_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["schedule", "--generator", "quantum"])

    def test_practical_method(self, capsys):
        exit_code = cli.main([
            "schedule", "--generator", "kmeans", "--size", "8",
            "--method", "practical", "--latency", "5",
        ])
        assert exit_code == 0
        assert "asynchronous cost" in capsys.readouterr().out


class TestDatasetCommand:
    def test_tiny_listing(self, capsys):
        exit_code = cli.main(["dataset", "--which", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bicgstab" in out
        assert "spmv_N6" in out

    def test_small_listing(self, capsys):
        exit_code = cli.main(["dataset", "--which", "small", "--scale", "default"])
        assert exit_code == 0
        assert "simple_pagerank" in capsys.readouterr().out


class TestExperimentCommand:
    def test_table1_tiny_run(self, capsys):
        exit_code = cli.main([
            "experiment", "--table", "1", "--limit", "1", "--time-limit", "0.5",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "geometric-mean" in out
        assert "engine:" in out

    def test_table1_cached_rerun_is_free(self, tmp_path, capsys):
        argv = [
            "experiment", "--table", "1", "--limit", "1", "--time-limit", "0.5",
            "--cache-dir", str(tmp_path),
        ]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert "1 executed, 0 cache hits" in first
        assert cli.main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 1 cache hits" in second
        # the cached run reports the exact same table
        assert first.split("engine:")[0] == second.split("engine:")[0]


class TestPortfolioCommand:
    def test_portfolio_run_prints_winners(self, capsys):
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant,cilk+lru",
            "--limit", "2", "--workers", "2", "--time-limit", "0.5",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "wins per member" in out
        assert "engine:" in out

    def test_portfolio_rejects_unknown_member(self):
        # unknown names warn and are skipped; an all-unknown list still fails
        with pytest.warns(UserWarning, match="ignoring unknown portfolio member"):
            with pytest.raises(Exception):
                cli.main(["portfolio", "--members", "quantum", "--limit", "1"])

    def test_portfolio_reports_backend_and_pruning(self, capsys):
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant,cilk+lru",
            "--limit", "1", "--time-limit", "0.5", "--backend", "auto",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "ilp backend: auto" in out
        assert "bound pruning:" in out

    def test_portfolio_no_prune_flag(self, capsys):
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant",
            "--limit", "1", "--time-limit", "0.5", "--no-prune",
        ])
        assert exit_code == 0
        assert "bound pruning: disabled" in capsys.readouterr().out


class TestBackendPlumbing:
    def test_env_backend_threads_into_experiment_config(self, monkeypatch):
        from repro.experiments.runner import ExperimentConfig
        from repro.ilp import ENV_BACKEND

        monkeypatch.setenv(ENV_BACKEND, "bnb")
        config = ExperimentConfig()
        assert config.ilp_backend == "bnb"
        assert config.ilp_config().backend == "bnb"

    def test_unknown_env_backend_warns_and_falls_back(self, monkeypatch):
        from repro.experiments.runner import ExperimentConfig
        from repro.ilp import ENV_BACKEND

        monkeypatch.setenv(ENV_BACKEND, "cplex")
        with pytest.warns(UserWarning, match="unknown ILP backend 'cplex'"):
            config = ExperimentConfig()
        assert config.ilp_backend == "scipy"

    def test_cli_backend_overrides_env(self, monkeypatch, capsys):
        from repro.ilp import ENV_BACKEND

        monkeypatch.setenv(ENV_BACKEND, "bnb")
        exit_code = cli.main([
            "portfolio", "--members", "bspg+clairvoyant",
            "--limit", "1", "--time-limit", "0.5", "--backend", "scipy",
        ])
        assert exit_code == 0
        assert "ilp backend: scipy" in capsys.readouterr().out

    def test_schedule_command_accepts_backend(self, capsys):
        exit_code = cli.main([
            "schedule", "--generator", "spmv", "--size", "3", "--processors", "1",
            "--method", "ilp", "--time-limit", "1", "--backend", "auto",
        ])
        assert exit_code == 0
        assert "synchronous cost" in capsys.readouterr().out

    def test_bsp_ilp_member_honours_configured_backend(self):
        """The two-stage bsp-ilp member's first-stage ILP must solve with the
        configured backend — its engine cache key claims it does."""
        from repro.dag.generators import chain_dag
        from repro.experiments.runner import ExperimentConfig
        from repro.ilp import reset_solver_call_stats, solver_call_stats
        from repro.portfolio import run_member

        reset_solver_call_stats()
        run_member(
            chain_dag(4),
            ExperimentConfig(ilp_backend="bnb", ilp_time_limit=5.0),
            "bsp-ilp+lru",
        )
        assert solver_call_stats().by_backend == {"bnb": 1}
        reset_solver_call_stats()

    def test_backend_job_keys_differ(self):
        """Jobs solved by different backends never collide in the cache."""
        from repro.experiments.parallel import ExperimentJob
        from repro.experiments.runner import ExperimentConfig

        dag = spmv(3, seed=0)
        scipy_job = ExperimentJob.make(
            "instance", dag, ExperimentConfig(ilp_backend="scipy"))
        bnb_job = ExperimentJob.make(
            "instance", dag, ExperimentConfig(ilp_backend="bnb"))
        assert scipy_job.key() != bnb_job.key()
