#!/usr/bin/env python
"""Memory-pressure study: how the cache size shapes schedule cost.

The paper's Table 4 varies the fast-memory capacity between the bare minimum
``r = r0`` and a generous ``r = 5 * r0``.  This example sweeps the cache
factor on one iterated-SpMV workload and reports, for the two-stage baseline
and for both eviction policies, how the I/O volume, the superstep count and
the synchronous cost respond — the executable version of the paper's
observation that a tight memory bound leaves the scheduler almost no freedom.

Run with:  python examples/memory_pressure_study.py
"""

from __future__ import annotations

from repro.bsp import greedy_bsp_schedule
from repro.cache import ClairvoyantPolicy, LruPolicy, two_stage_schedule
from repro.dag.analysis import assign_random_memory_weights, minimum_cache_size
from repro.dag.generators import iterated_spmv
from repro.model import make_instance, synchronous_cost, validate_schedule


def main() -> None:
    dag = iterated_spmv(n=4, iterations=3, seed=3)
    assign_random_memory_weights(dag, low=1, high=5, seed=9)
    r0 = minimum_cache_size(dag)
    print(f"workload: {dag.name} with {dag.num_nodes} nodes, r0 = {r0:.0f}\n")

    bsp = greedy_bsp_schedule(dag, num_processors=4)
    header = (f"{'r / r0':>7s} {'policy':>12s} {'supersteps':>11s} "
              f"{'I/O volume':>11s} {'sync cost':>10s}")
    print(header)
    print("-" * len(header))

    for factor in (1.0, 1.5, 2.0, 3.0, 5.0, 10.0):
        instance = make_instance(dag, num_processors=4, cache_factor=factor, g=1.0, L=10.0)
        for policy in (ClairvoyantPolicy(), LruPolicy()):
            schedule = two_stage_schedule(bsp, instance, policy)
            validate_schedule(schedule)
            print(
                f"{factor:>7.1f} {policy.name:>12s} "
                f"{schedule.num_supersteps:>11d} "
                f"{schedule.total_io_volume():>11.0f} "
                f"{synchronous_cost(schedule):>10.1f}"
            )
        print()

    print("Observations (cf. paper Section 7.2):")
    print(" * at r = r0 the schedule is forced into many tiny supersteps and a")
    print("   large I/O volume — there is almost no freedom left to optimise;")
    print(" * the clairvoyant policy never does more I/O than LRU;")
    print(" * beyond a few multiples of r0 the extra cache stops helping.")


if __name__ == "__main__":
    main()
