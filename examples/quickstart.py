#!/usr/bin/env python
"""Quickstart: schedule a small computational DAG under a memory constraint.

This example walks through the full public API on a single SpMV instance:

1. generate a fine-grained SpMV DAG and attach memory weights,
2. build an MBSP instance (P processors, cache size r = 3 * r0, BSP g and L),
3. compute the two-stage baseline schedule (BSPg + clairvoyant eviction),
4. improve it with the holistic ILP scheduler,
5. validate both schedules and compare their synchronous/asynchronous costs.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import MbspIlpConfig, MbspIlpScheduler, baseline_schedule
from repro.dag.analysis import assign_random_memory_weights, dag_statistics
from repro.dag.generators import spmv
from repro.ilp import SolverOptions
from repro.model import (
    asynchronous_cost,
    make_instance,
    synchronous_cost,
    validate_schedule,
)


def main() -> None:
    # 1. a sparse matrix-vector multiplication DAG with random memory weights
    dag = spmv(n=4, extra_per_row=2, seed=1)
    assign_random_memory_weights(dag, low=1, high=5, seed=42)
    stats = dag_statistics(dag)
    print(f"workload: {dag.name}  ({int(stats['nodes'])} nodes, "
          f"{int(stats['edges'])} edges, critical path {stats['critical_path']:.0f}, "
          f"minimum cache r0 = {stats['r0']:.0f})")

    # 2. the machine: 2 processors, cache r = 3 * r0, g = 1, L = 10
    instance = make_instance(dag, num_processors=2, cache_factor=3.0, g=1.0, L=10.0)
    print(f"machine:  P = {instance.num_processors}, r = {instance.cache_size:.0f}, "
          f"g = {instance.g}, L = {instance.L}")

    # 3. the two-stage baseline (BSPg scheduling + clairvoyant cache eviction)
    base = baseline_schedule(instance)
    validate_schedule(base.mbsp_schedule)
    print(f"\ntwo-stage baseline: {base.mbsp_schedule.num_supersteps} supersteps, "
          f"synchronous cost {base.cost:.1f}, "
          f"asynchronous cost {asynchronous_cost(base.mbsp_schedule):.1f}")

    # 4. the holistic ILP scheduler, warm-started with the baseline
    config = MbspIlpConfig(solver_options=SolverOptions(time_limit=15.0))
    result = MbspIlpScheduler(config).schedule(instance, baseline=base)
    validate_schedule(result.best_schedule, require_all_computed=False)
    print(f"ILP scheduler:      status={result.solver_status}, "
          f"solve time {result.solve_time:.1f}s")
    print(f"best schedule:      {result.best_schedule.num_supersteps} supersteps, "
          f"synchronous cost {result.best_cost:.1f} "
          f"({result.improvement_ratio:.2f}x of the baseline)")

    # 5. inspect the winning schedule
    print("\nschedule overview:")
    print(result.best_schedule.describe(max_supersteps=6))


if __name__ == "__main__":
    main()
