#!/usr/bin/env python
"""Divide-and-conquer ILP scheduling of a larger DAG (Section 6.3).

The full ILP formulation stops being tractable beyond a few dozen nodes, so
the paper splits larger DAGs into loosely coupled parts with an ILP-based
acyclic partitioner, schedules each part with the full ILP, and concatenates
the sub-schedules.  This example runs that pipeline on a block PageRank
workload (one of the instance families where the method shines) and prints
the partition, the per-part diagnostics, and the comparison against the
two-stage baseline.

Run with:  python examples/divide_and_conquer_large_dag.py
(Set REPRO_ILP_TIME_LIMIT to give the sub-problem ILPs more or less time.)
"""

from __future__ import annotations

import os

from repro.core import MbspIlpConfig, baseline_schedule
from repro.core.acyclic_partition import PartitionConfig
from repro.core.divide_conquer import DivideAndConquerScheduler
from repro.dag.analysis import assign_random_memory_weights
from repro.dag.generators import simple_pagerank
from repro.ilp import SolverOptions
from repro.model import make_instance, validate_schedule


def main() -> None:
    time_limit = float(os.environ.get("REPRO_ILP_TIME_LIMIT", 8.0))

    dag = simple_pagerank(num_blocks=4, iterations=5, seed=1)
    assign_random_memory_weights(dag, low=1, high=5, seed=17)
    instance = make_instance(dag, num_processors=4, cache_factor=5.0, g=1.0, L=10.0)
    print(f"workload: {dag.name} with {dag.num_nodes} nodes and {dag.num_edges} edges")
    print(f"machine:  P = 4, r = 5*r0 = {instance.cache_size:.0f}, g = 1, L = 10\n")

    base = baseline_schedule(instance)
    print(f"two-stage baseline cost: {base.cost:.1f}")

    scheduler = DivideAndConquerScheduler(
        ilp_config=MbspIlpConfig(solver_options=SolverOptions(time_limit=time_limit)),
        partition_config=PartitionConfig(max_part_size=22),
    )
    result = scheduler.schedule(instance, baseline=base)
    validate_schedule(result.dac_schedule, require_all_computed=False)

    print(f"acyclic partition: {result.partition.num_parts} parts, "
          f"sizes {result.partition.part_sizes()}")
    print("\nper-part diagnostics:")
    for sub in result.subproblems:
        source = "ILP" if sub.used_ilp else "two-stage"
        ilp_cost = "-" if sub.ilp_cost is None else f"{sub.ilp_cost:.1f}"
        print(f"  part {sub.part:>2d}: {sub.num_nodes:>3d} nodes on processors "
              f"{sub.processors}  baseline={sub.baseline_cost:8.1f}  "
              f"ilp={ilp_cost:>8s}  used={source}")

    print(f"\ndivide-and-conquer cost: {result.dac_cost:.1f} "
          f"({result.improvement_ratio:.2f}x of the baseline)")
    if result.dac_cost > base.cost:
        print("the concatenated schedule lost to the baseline here — the paper")
        print("observes the same on DAGs that do not split into loosely")
        print("coupled parts (Table 2, right column).")
    else:
        print("the partition-based ILP beat the two-stage baseline, as the")
        print("paper observes for partition-friendly workloads (Table 2, left).")


if __name__ == "__main__":
    main()
