#!/usr/bin/env python
"""The Theorem 4.1 story: why two-stage scheduling can be far from optimal.

The paper's Figure 1/2 construction has two groups of source values and two
dependency chains that alternate between the groups.  A memory-oblivious BSP
scheduler happily assigns one chain per processor (no communication!), but
with a cache that can hold only one group, the memory-management stage must
then reload a whole group for almost every chain node.  Assigning the chains
*across* the processors — the memory-aware choice — exchanges a single value
per step instead.

This example builds the construction for growing sizes, evaluates both
schedules with the exact cost functions, and prints the widening gap.

Run with:  python examples/two_stage_vs_holistic.py
"""

from __future__ import annotations

from repro.cache import ClairvoyantPolicy, two_stage_schedule
from repro.model import synchronous_cost, validate_schedule
from repro.theory import (
    chain_per_processor_bsp_schedule,
    optimal_gap_schedule,
    two_stage_gap_construction,
)


def main() -> None:
    print("Theorem 4.1: the two-stage approach vs. the memory-aware optimum\n")
    header = (f"{'d':>4s} {'m':>4s} {'nodes':>6s} {'two-stage cost':>15s} "
              f"{'optimal cost':>13s} {'ratio':>7s}")
    print(header)
    print("-" * len(header))

    for d in (3, 5, 8, 12, 16):
        m = 2 * d
        construction = two_stage_gap_construction(d=d, m=m)
        instance = construction.instance(g=1.0, L=0.0)

        # stage 1: the BSP-optimal assignment (one chain per processor),
        # stage 2: the optimal offline eviction policy — still bad together.
        bsp = chain_per_processor_bsp_schedule(construction)
        two_stage = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
        validate_schedule(two_stage)

        # the memory-aware schedule of Figure 2 (right): children of each
        # source group stay on one processor, one value exchanged per step.
        optimal = optimal_gap_schedule(construction)
        validate_schedule(optimal)

        cost_two_stage = synchronous_cost(two_stage)
        cost_optimal = synchronous_cost(optimal)
        print(
            f"{d:>4d} {m:>4d} {construction.dag.num_nodes:>6d} "
            f"{cost_two_stage:>15.1f} {cost_optimal:>13.1f} "
            f"{cost_two_stage / cost_optimal:>7.2f}"
        )

    print("\nThe ratio keeps growing with d (it is Theta(n) in the limit):")
    print("optimising the parallel schedule and the memory management")
    print("separately — even optimally — cannot fix a placement that ignores")
    print("the memory constraint.  This is exactly why the paper's holistic")
    print("ILP treats both problems at once.")


if __name__ == "__main__":
    main()
