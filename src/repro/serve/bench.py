"""The serve load harness: replay a big seeded trace, summarize the SLOs.

:func:`run_serve_bench` is the engine behind ``repro serve bench`` and the
checked-in ``benchmarks/BENCH_serve.json`` trajectory: it replays a seeded
arrival trace (default sizes reach ~10^5 cache-hot requests — repeats of a
small template pool, so only a few dozen distinct jobs actually solve) and
returns a JSON-serializable summary.

The summary deliberately contains **no wall-clock values**: every number is
a pure function of the configuration, so two runs with the same flags are
byte-identical once rendered with ``json.dumps(..., sort_keys=True)`` —
the property the CI ``serve-smoke`` determinism gate asserts with a
byte-for-byte diff.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exec import Session
from repro.serve.arrivals import ArrivalConfig
from repro.serve.policy import PolicyConfig
from repro.serve.service import ScheduleService, ServiceConfig


def run_serve_bench(
    seed: int = 0,
    requests: int = 100_000,
    rate: float = 4.0,
    servers: int = 2,
    workers: int = 1,
    cache_dir=None,
    results_path=None,
    dataset: str = "tiny",
    scale: str = "default",
    limit: Optional[int] = 6,
    config: Optional[ServiceConfig] = None,
    progress=None,
) -> Dict[str, object]:
    """Run one serve bench and return its deterministic JSON summary.

    Pass ``config`` to override the assembled :class:`ServiceConfig`
    entirely (the scalar knobs are then ignored).  ``workers``,
    ``cache_dir`` and ``results_path`` configure the execution session
    only — by design they cannot change a single byte of the summary.
    ``progress`` (a :class:`repro.obs.ProgressRenderer`) attaches to the
    session for live execute-phase progress; like tracing, it never
    touches the summary.
    """
    if config is None:
        config = ServiceConfig(
            arrivals=ArrivalConfig(
                seed=seed,
                requests=requests,
                rate=rate,
                dataset=dataset,
                scale=scale,
                limit=limit,
            ),
            policy=PolicyConfig(),
            servers=servers,
        )
    session = Session(
        workers=workers, cache_dir=cache_dir, results_path=results_path
    )
    if progress is not None:
        progress.attach(session)
    service = ScheduleService(config, session=session)
    report = service.run()
    arrivals = config.arrivals
    summary: Dict[str, object] = {
        "bench": "serve",
        "arrivals": {
            "seed": arrivals.seed,
            "requests": arrivals.requests,
            "rate": arrivals.rate,
            "deadline_min": arrivals.deadline_min,
            "deadline_max": arrivals.deadline_max,
            "dataset": arrivals.dataset,
            "scale": arrivals.scale,
            "limit": arrivals.limit,
        },
        "policy": {
            "cheap": service.policy.cheap,
            "steady": service.policy.steady,
            "rich": service.policy.rich,
        },
        "servers": config.servers,
        "slo": report.slo_summary(),
        "trace_digest": report.trace_digest(),
    }
    return summary
