"""Load-adaptive pipeline selection for the scheduling service.

The service answers every request with one scheduler pipeline
(:mod:`repro.pipeline` spec).  Which pipeline is worth running depends on
the load the request arrives under: when the queue is deep or the deadline
is tight, a cheap two-stage heuristic keeps latency bounded; when the
service is idle, richer pipelines (refinement, ``race(...)``, the ILP) buy
better schedules with the spare capacity.

The policy is deliberately a pure function of the per-request load
observables ``(queue_depth, slack)`` — no wall clock, no randomness — so a
replay of the same arrival trace picks the same spec for every request
regardless of worker count or machine: the bit-identical-replay guarantee
of :mod:`repro.serve` rests on it.

The spec tiers are ordered by cost, and the default tiers keep the golden
cost invariant by construction: every tier starts from the ``baseline``
schedule (for the default ``P = 4`` the baseline stage *is* BSPg +
clairvoyant) and only ever appends improving stages, so the cost the
service reports is never worse than the ``baseline`` member's cost on the
same instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.learn.features import FeatureVector
    from repro.learn.history import LearnedHistory


@dataclass(frozen=True)
class PolicyConfig:
    """Spec tiers plus the load thresholds that select between them.

    ``cheap_spec`` answers pressure (queue at least ``pressure_depth`` deep,
    or slack at most ``tight_slack``), ``rich_spec`` answers idleness
    (queue at most ``idle_depth`` deep with loose slack) and
    ``steady_spec`` answers everything in between.  Specs may be legacy
    member names or raw pipeline specs (``race(...)``/``budget=<s>s``
    included); they are canonicalized once, at policy construction.
    """

    cheap_spec: str = "baseline"
    steady_spec: str = "bspg+clairvoyant"
    rich_spec: str = "bspg+clairvoyant|refine"
    pressure_depth: int = 4
    tight_slack: float = 1.0
    idle_depth: int = 0

    def validate(self) -> None:
        if self.pressure_depth <= self.idle_depth:
            raise ConfigurationError(
                "policy thresholds must satisfy idle_depth < pressure_depth "
                f"(got idle_depth={self.idle_depth}, "
                f"pressure_depth={self.pressure_depth})"
            )
        if self.tight_slack < 0:
            raise ConfigurationError("tight_slack must be >= 0")


class AdaptivePolicy:
    """Maps per-request load observables to a canonical pipeline spec."""

    def __init__(self, config: PolicyConfig = PolicyConfig()) -> None:
        from repro.portfolio.members import resolve_member

        config.validate()
        self.config = config
        # canonicalize once: the job content hashes (and hence the cache
        # keys) always see the canonical spelling, never the tier aliases
        self.cheap = resolve_member(config.cheap_spec)
        self.steady = resolve_member(config.steady_spec)
        self.rich = resolve_member(config.rich_spec)

    @property
    def specs(self) -> Tuple[str, str, str]:
        """The canonical ``(cheap, steady, rich)`` tier specs."""
        return (self.cheap, self.steady, self.rich)

    def choose(self, queue_depth: int, slack: float) -> str:
        """The canonical spec for a request arriving under the given load.

        ``queue_depth`` is the number of requests in the system when this
        one arrives; ``slack`` is the request's relative deadline.
        Pressure wins over idleness: a deep queue or a tight deadline
        always gets the cheap tier, even when ``idle_depth`` would match.
        """
        cfg = self.config
        if queue_depth >= cfg.pressure_depth or slack <= cfg.tight_slack:
            return self.cheap
        if queue_depth <= cfg.idle_depth:
            return self.rich
        return self.steady


class LearnedPolicy:
    """Feature-aware tier chooser backed by a mined history (repro.learn).

    A drop-in for :class:`AdaptivePolicy` — same tiers, same thresholds,
    same ``choose`` — plus the duck-typed ``choose_for(features, ...)``
    hook the service consults when the policy carries one.  Pressure still
    always gets the cheap tier (latency bounds beat learned preferences);
    outside pressure the mined history ranks the steady and rich tier
    specs for the instance's features and promotes whichever it predicts
    wins.  On instances the history has never seen, the load-threshold
    tier is kept, so an empty history reproduces ``AdaptivePolicy``
    exactly.

    The chooser stays a pure function of ``(history, features, load)`` —
    no wall clock, no randomness — so the bit-identical-replay guarantee
    of :mod:`repro.serve` is preserved: same trace + same history file =>
    same spec for every request, regardless of worker count or machine.
    """

    def __init__(
        self,
        history: "LearnedHistory",
        config: PolicyConfig = PolicyConfig(),
        selector: str = "greedy",
        seed: int = 0,
    ) -> None:
        from repro.learn.model import SELECTORS

        if selector not in SELECTORS:
            raise ConfigurationError(
                f"unknown selector {selector!r} (choose from "
                f"{', '.join(SELECTORS)})"
            )
        self._base = AdaptivePolicy(config)
        self.config = self._base.config
        self.history = history
        self.selector = selector
        self.seed = seed
        self.cheap = self._base.cheap
        self.steady = self._base.steady
        self.rich = self._base.rich

    @property
    def specs(self) -> Tuple[str, str, str]:
        """The canonical ``(cheap, steady, rich)`` tier specs."""
        return self._base.specs

    def choose(self, queue_depth: int, slack: float) -> str:
        """Feature-free fallback: the plain load-threshold tier."""
        return self._base.choose(queue_depth, slack)

    def choose_for(
        self, features: "FeatureVector", queue_depth: int, slack: float
    ) -> str:
        """The canonical spec for a request, given the instance features.

        Candidate order encodes the fallback: the load-threshold tier goes
        first, and the ranking keeps unobserved specs in candidate order,
        so the history only *overrides* the threshold tier when it has
        actually observed the candidates.
        """
        from repro.learn.model import rank_members

        cfg = self.config
        if queue_depth >= cfg.pressure_depth or slack <= cfg.tight_slack:
            return self.cheap
        default_first = (
            (self.rich, self.steady)
            if queue_depth <= cfg.idle_depth
            else (self.steady, self.rich)
        )
        candidates = list(dict.fromkeys(default_first))
        ranking = rank_members(
            self.history,
            features,
            candidates,
            selector=self.selector,
            seed=self.seed,
        )
        return ranking[0]
