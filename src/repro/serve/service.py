"""The online scheduling service: a virtual-time service loop over a Session.

:class:`ScheduleService` answers a seeded arrival trace
(:mod:`repro.serve.arrivals`) of DAG scheduling requests, picking a
pipeline spec per request with the load-adaptive policy
(:mod:`repro.serve.policy`) and executing through the unified execution
core (:class:`repro.exec.Session`) with its content-hash cache.

Execution is **two-phase**, which is what makes a 10^5-request service
bench both cheap and bit-identically replayable:

1. *Simulate* (virtual time): requests are replayed through a
   discrete-event loop over ``servers`` virtual servers — queue depth and
   deadline slack feed the policy, repeat ``(template, spec)`` pairs are
   cache hits at ``cache_hit_time``, and first occurrences cost a
   deterministic virtual service time (``service_time_scale x nodes x``
   spec weight).  No wall clock enters the timeline, so latencies,
   deadline misses and the SLO summary are pure functions of the seed.
2. *Execute* (real work): the distinct jobs discovered in phase 1 — a few
   dozen for a 10^5-request trace over a dataset pool — run as one
   :class:`~repro.exec.plan.RunPlan` through the session, which answers
   disk-cached keys without solving and streams the rest to the
   plan-ordered JSONL store.  Real schedule costs are joined back onto the
   per-request records.

Because phase 1 never consults the session and phase 2 is the session's
plan-order-deterministic batch execution, a ``workers=4`` service run is
bit-identical to ``workers=1``: same spec choices, same winners, same SLO
summary (the acceptance gate of the serve bench).
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.exec import RunPlan, Session
from repro.experiments.runner import ExperimentConfig
from repro.serve.arrivals import ArrivalConfig, generate_requests, request_pool
from repro.serve.policy import AdaptivePolicy, PolicyConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import ExperimentJob
    from repro.experiments.runner import InstanceResult


def spec_weight(spec: str) -> float:
    """Deterministic virtual-cost weight of a canonical pipeline spec.

    A coarse work model for the virtual timeline: every pipeline starts at
    the two-stage baseline weight, and each expensive stage occurrence adds
    its surcharge (``race(...)`` branches therefore count each branch).
    The absolute scale is arbitrary — only the relative ordering of the
    policy tiers matters to the simulated latencies.
    """
    return (
        1.0
        + 4.0 * spec.count("ilp")
        + 3.0 * spec.count("dac")
        + 1.5 * spec.count("refine")
    )


@dataclass
class ServiceConfig:
    """Parameters of one service run (arrivals + policy + capacity model).

    ``servers`` is the *virtual* service capacity — it shapes queueing in
    the simulated timeline and is deliberately independent of the
    session's ``workers`` (real execution parallelism), so changing worker
    counts cannot change the telemetry.  ``cache_hit_time`` and
    ``service_time_scale`` are the virtual durations of a cache hit and of
    one node-weight unit of executed work.
    """

    arrivals: ArrivalConfig = field(default_factory=ArrivalConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    servers: int = 2
    cache_hit_time: float = 0.05
    service_time_scale: float = 0.02
    experiment: ExperimentConfig = field(
        default_factory=lambda: ExperimentConfig(name="serve")
    )

    def validate(self) -> None:
        self.arrivals.validate()
        self.policy.validate()
        if self.servers < 1:
            raise ConfigurationError("service needs at least 1 virtual server")
        if self.cache_hit_time <= 0 or self.service_time_scale <= 0:
            raise ConfigurationError(
                "cache_hit_time and service_time_scale must be positive"
            )


@dataclass
class RequestRecord:
    """Per-request telemetry: one line of the service's request log."""

    index: int
    instance: str
    template: int
    spec: str
    key: str
    arrival: float
    deadline: float
    queue_depth: int
    cache_hit: bool
    start: float
    finish: float
    cost: float = float("nan")

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def deadline_miss(self) -> bool:
        return self.finish > self.arrival + self.deadline

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "instance": self.instance,
            "template": self.template,
            "spec": self.spec,
            "key": self.key,
            "arrival": round(self.arrival, 9),
            "deadline": round(self.deadline, 9),
            "queue_depth": self.queue_depth,
            "cache_hit": self.cache_hit,
            "start": round(self.start, 9),
            "finish": round(self.finish, 9),
            "latency": round(self.latency, 9),
            "deadline_miss": self.deadline_miss,
            "cost": self.cost,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (deterministic)."""
    if not sorted_values:
        return 0.0
    rank = int(q * len(sorted_values) + 99) // 100  # ceil(q * n / 100)
    rank = min(len(sorted_values), max(1, rank))
    return sorted_values[rank - 1]


@dataclass
class ServiceReport:
    """Everything one service run produced: telemetry + real results."""

    config: ServiceConfig
    records: List[RequestRecord]
    results: Dict[str, "InstanceResult"]
    jobs: Dict[str, "ExperimentJob"]

    def slo_summary(self) -> Dict[str, object]:
        """The SLO summary: a pure function of the seed (no wall clock).

        Floats are rounded to 9 decimals so the JSON rendering is stable
        enough to diff byte-for-byte (the CI determinism gate).
        """
        records = self.records
        n = len(records)
        latencies = sorted(r.latency for r in records)
        makespan = max((r.finish for r in records), default=0.0)
        specs: Dict[str, int] = {}
        for r in records:
            specs[r.spec] = specs.get(r.spec, 0) + 1
        return {
            "requests": n,
            "distinct_jobs": len(self.results),
            "virtual_makespan": round(makespan, 9),
            "throughput_rps": round(n / makespan, 9) if makespan else 0.0,
            "latency_p50": round(_percentile(latencies, 50), 9),
            "latency_p99": round(_percentile(latencies, 99), 9),
            "deadline_miss_rate": round(
                sum(1 for r in records if r.deadline_miss) / n, 9
            ) if n else 0.0,
            "cache_hit_rate": round(
                sum(1 for r in records if r.cache_hit) / n, 9
            ) if n else 0.0,
            "spec_requests": {spec: specs[spec] for spec in sorted(specs)},
        }

    def trace_digest(self) -> str:
        """sha256 over the per-request virtual trace (spec choices, times,
        hit/miss flags): two replays are bit-identical iff digests match."""
        payload = [
            [
                r.index,
                r.template,
                r.spec,
                round(r.arrival, 9),
                round(r.start, 9),
                round(r.finish, 9),
                r.queue_depth,
                r.cache_hit,
                r.deadline_miss,
            ]
            for r in self.records
        ]
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def write_requests_jsonl(self, path) -> None:
        """Write the per-request telemetry as JSONL (one record per line)."""
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


class ScheduleService:
    """Runs one arrival trace through the two-phase service loop."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        session: Optional[Session] = None,
        policy=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        self.session = session if session is not None else Session()
        # any object with choose(queue_depth, slack) works; a policy that
        # additionally offers choose_for(features, queue_depth, slack) —
        # e.g. repro.serve.policy.LearnedPolicy — is consulted with the
        # instance features instead (see _simulate)
        self.policy = policy if policy is not None \
            else AdaptivePolicy(self.config.policy)

    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        """Simulate the trace, execute the distinct jobs, join the costs.

        The serve-phase boundaries are traced (``serve.simulate`` /
        ``serve.execute`` / ``serve.join`` spans) when :mod:`repro.obs`
        tracing is on; spans never enter the virtual timeline or the SLO
        summary, which stay pure functions of the seed.
        """
        from repro import obs

        with obs.trace_span(
            "serve.run",
            category="serve",
            requests=self.config.arrivals.requests,
            servers=self.config.servers,
        ) as run_span:
            pool = request_pool(self.config.arrivals)
            requests = generate_requests(self.config.arrivals, len(pool))
            with obs.trace_span("serve.simulate", category="serve") as span:
                records, jobs = self._simulate(pool, requests)
                span.set(records=len(records), distinct_jobs=len(jobs))
            with obs.trace_span(
                "serve.execute", category="serve", distinct_jobs=len(jobs)
            ):
                results = self._execute(jobs)
            with obs.trace_span("serve.join", category="serve"):
                for record in records:
                    result = results[record.key]
                    record.cost = result.extra_costs.get(
                        "member_cost", result.ilp_cost
                    )
            run_span.set(distinct_jobs=len(jobs))
            return ServiceReport(
                config=self.config, records=records, results=results, jobs=jobs
            )

    # ------------------------------------------------------------------
    def _simulate(self, pool, requests):
        """Phase 1: the discrete-event loop in virtual time.

        ``free`` is the min-heap of virtual server availability times;
        ``in_system`` holds the finish times of admitted-but-unfinished
        requests, so popping it at each arrival yields the queue depth the
        policy sees.  Repeat ``(template, spec)`` pairs are answered at
        ``cache_hit_time``.  The simulation deliberately never consults the
        *disk* cache: the timeline must be a pure function of the config —
        byte-identical across repeats even when runs share a cache
        directory — so disk hits accelerate phase 2 (no solving) without
        touching the telemetry.
        """
        from repro.experiments.parallel import ExperimentJob

        cfg = self.config
        # feature-aware policies (duck-typed choose_for, e.g. LearnedPolicy)
        # see the instance features of the request's template; features are
        # deterministic per (dag, config), so one computation per template
        # keeps the timeline pure and the loop cheap
        chooser = getattr(self.policy, "choose_for", None)
        feature_memo: Dict[int, object] = {}
        if chooser is not None:
            from repro.learn.features import instance_features
        free = [0.0] * cfg.servers
        heapq.heapify(free)
        in_system: List[float] = []
        job_memo: Dict[tuple, tuple] = {}
        jobs: Dict[str, "ExperimentJob"] = {}
        hot: set = set()
        records: List[RequestRecord] = []
        for request in requests:
            while in_system and in_system[0] <= request.arrival:
                heapq.heappop(in_system)
            depth = len(in_system)
            if chooser is not None:
                if request.template not in feature_memo:
                    feature_memo[request.template] = instance_features(
                        pool[request.template], cfg.experiment
                    )
                spec = chooser(
                    feature_memo[request.template], depth, request.deadline
                )
            else:
                spec = self.policy.choose(depth, request.deadline)
            memo_key = (request.template, spec)
            if memo_key not in job_memo:
                job = ExperimentJob.make(
                    "portfolio", pool[request.template], cfg.experiment, member=spec
                )
                job_memo[memo_key] = (job, job.key())
            job, key = job_memo[memo_key]
            if key not in jobs:
                jobs[key] = job
            cache_hit = key in hot
            if cache_hit:
                service_time = cfg.cache_hit_time
            else:
                nodes = len(job.dag_data.get("nodes", ()))
                service_time = cfg.service_time_scale * nodes * spec_weight(spec)
                hot.add(key)
            earliest = heapq.heappop(free)
            start = max(request.arrival, earliest)
            finish = start + service_time
            heapq.heappush(free, finish)
            heapq.heappush(in_system, finish)
            records.append(
                RequestRecord(
                    index=request.index,
                    instance=job.instance_name,
                    template=request.template,
                    spec=spec,
                    key=key,
                    arrival=request.arrival,
                    deadline=request.deadline,
                    queue_depth=depth,
                    cache_hit=cache_hit,
                    start=start,
                    finish=finish,
                )
            )
        return records, jobs

    def _execute(self, jobs: Dict[str, "ExperimentJob"]):
        """Phase 2: run the distinct jobs (first-appearance order) as one
        plan through the session; disk-cached keys replay without solving."""
        if not jobs:
            return {}
        plan = RunPlan.from_jobs(list(jobs.values()))
        results = self.session.run(plan)
        return dict(zip(jobs.keys(), results))
