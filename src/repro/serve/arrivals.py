"""Deterministic request arrival processes for the scheduling service.

The online setting of the paper's problem: DAG scheduling requests *arrive
over time* instead of being handed over as one offline batch.  This module
generates such request traces — a Poisson-style arrival process
(exponential inter-arrival times at a configurable mean rate) over a fixed
pool of benchmark DAGs (:mod:`repro.experiments.datasets`), each request
carrying a *relative* deadline drawn uniformly from a configured window.

Everything is driven by one :class:`random.Random` seeded from
:attr:`ArrivalConfig.seed`, so a trace is a pure function of its config:
golden tests pin traces, and the ``repro serve bench`` determinism gate
diffs two runs byte-for-byte.  Times are *virtual* (model time units, not
wall clock) — the service simulator (:mod:`repro.serve.service`) keeps the
whole timeline virtual precisely so replays are bit-identical across
machines and worker counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.graph import ComputationalDag


@dataclass(frozen=True)
class ServeRequest:
    """One scheduling request of the arrival trace.

    ``template`` indexes the DAG pool (requests for the same template are
    the *repeat DAGs* the content-hash cache answers without solving);
    ``deadline`` is relative to ``arrival``: the request misses its SLO
    when it finishes after ``arrival + deadline``.
    """

    index: int
    arrival: float
    deadline: float
    template: int


@dataclass(frozen=True)
class ArrivalConfig:
    """Parameters of one seeded arrival trace.

    ``rate`` is the mean number of arrivals per virtual time unit (the
    Poisson intensity); the relative deadline of each request is uniform in
    ``[deadline_min, deadline_max]``.  The DAG pool is a prefix of one of
    the benchmark datasets (``dataset``/``scale``/``limit`` mirror the CLI
    dataset flags).
    """

    seed: int = 0
    requests: int = 64
    rate: float = 1.0
    deadline_min: float = 0.5
    deadline_max: float = 8.0
    dataset: str = "tiny"
    scale: str = "default"
    limit: int = 6

    def validate(self) -> None:
        if self.requests < 1:
            raise ConfigurationError("arrival trace needs at least 1 request")
        if self.rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.deadline_min <= 0 or self.deadline_max < self.deadline_min:
            raise ConfigurationError(
                "deadline window must satisfy 0 < deadline_min <= deadline_max"
            )
        if self.dataset not in ("tiny", "small"):
            raise ConfigurationError(
                f"unknown dataset {self.dataset!r}; use 'tiny' or 'small'"
            )
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError("dataset limit must be >= 1")


def request_pool(config: ArrivalConfig) -> List["ComputationalDag"]:
    """The DAG templates requests sample from (a seeded dataset prefix)."""
    from repro.experiments.datasets import small_dataset, tiny_dataset

    config.validate()
    build = tiny_dataset if config.dataset == "tiny" else small_dataset
    return build(scale=config.scale, limit=config.limit)


def generate_requests(config: ArrivalConfig, pool_size: int) -> List[ServeRequest]:
    """The seeded arrival trace: ``config.requests`` requests in time order.

    One ``random.Random(seed)`` drives inter-arrival gaps, deadlines and
    template choices in a fixed draw order, so the trace is reproducible
    down to the last bit for a given ``(config, pool_size)``.
    """
    config.validate()
    if pool_size < 1:
        raise ConfigurationError("request pool is empty")
    rng = random.Random(config.seed)
    requests: List[ServeRequest] = []
    clock = 0.0
    for index in range(config.requests):
        clock += rng.expovariate(config.rate)
        deadline = rng.uniform(config.deadline_min, config.deadline_max)
        template = rng.randrange(pool_size)
        requests.append(
            ServeRequest(
                index=index, arrival=clock, deadline=deadline, template=template
            )
        )
    return requests
