"""Online scheduling service over the unified execution core.

The offline->online step of the reproduction: instead of a one-shot batch,
DAG scheduling requests *arrive over time* (a seeded Poisson-style trace,
:mod:`repro.serve.arrivals`), a load-adaptive policy picks a pipeline spec
per request (:mod:`repro.serve.policy`), and a virtual-time service loop
(:mod:`repro.serve.service`) answers repeats from the content-hash cache
while the distinct jobs execute through one :class:`repro.exec.Session`.
SLO reporting and the ``repro serve bench`` load harness live in
:mod:`repro.serve.service` / :mod:`repro.serve.bench`.

Everything is replayable bit-identically per seed — across machines and
across session worker counts — because the timeline is virtual and the
real execution is the session's plan-order-deterministic batch.
"""

from repro.serve.arrivals import ArrivalConfig, ServeRequest, generate_requests, request_pool
from repro.serve.bench import run_serve_bench
from repro.serve.policy import AdaptivePolicy, LearnedPolicy, PolicyConfig
from repro.serve.service import (
    RequestRecord,
    ScheduleService,
    ServiceConfig,
    ServiceReport,
    spec_weight,
)

__all__ = [
    "AdaptivePolicy",
    "ArrivalConfig",
    "LearnedPolicy",
    "PolicyConfig",
    "RequestRecord",
    "ScheduleService",
    "ServeRequest",
    "ServiceConfig",
    "ServiceReport",
    "generate_requests",
    "request_pool",
    "run_serve_bench",
    "spec_weight",
]
