"""Red-blue pebbling primitives of the MBSP model.

A schedule is ultimately a sequence of the four transition rules of
Section 3.1 on each processor:

* ``LOAD(p, v)``    — copy ``v`` from slow memory into the cache of ``p``
  (requires a blue pebble on ``v``), cost ``mu(v) * g``;
* ``SAVE(p, v)``    — copy ``v`` from the cache of ``p`` to slow memory
  (requires a red pebble of ``p`` on ``v``), cost ``mu(v) * g``;
* ``COMPUTE(p, v)`` — execute a non-source node ``v`` on ``p`` (requires red
  pebbles of ``p`` on all parents of ``v``), cost ``omega(v)``;
* ``DELETE(p, v)``  — evict ``v`` from the cache of ``p``, cost 0.

This module defines the operation objects and a :class:`PebblingState` that
replays them while enforcing the rules and the per-processor memory bound.
The validator and the cost evaluators are built on top of it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import InvalidScheduleError


class OpType(enum.Enum):
    """The four transition rules of the MBSP pebbling game."""

    LOAD = "load"
    SAVE = "save"
    COMPUTE = "compute"
    DELETE = "delete"


@dataclass(frozen=True)
class Operation:
    """A single transition rule applied to one node."""

    op_type: OpType
    node: NodeId

    def cost(self, dag: ComputationalDag, g: float) -> float:
        """Cost of the operation under the paper's cost model."""
        if self.op_type is OpType.COMPUTE:
            return dag.omega(self.node)
        if self.op_type in (OpType.LOAD, OpType.SAVE):
            return dag.mu(self.node) * g
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.op_type.name}({self.node})"


def compute_op(node: NodeId) -> Operation:
    """Shorthand constructor for a COMPUTE operation."""
    return Operation(OpType.COMPUTE, node)


def delete_op(node: NodeId) -> Operation:
    """Shorthand constructor for a DELETE operation."""
    return Operation(OpType.DELETE, node)


def save_op(node: NodeId) -> Operation:
    """Shorthand constructor for a SAVE operation."""
    return Operation(OpType.SAVE, node)


def load_op(node: NodeId) -> Operation:
    """Shorthand constructor for a LOAD operation."""
    return Operation(OpType.LOAD, node)


class PebblingState:
    """Current pebbling configuration of a schedule under replay.

    Tracks the red-pebble set (cache contents) of every processor, the used
    cache capacity, and the shared blue-pebble set (slow memory contents).

    Parameters
    ----------
    dag:
        The computational DAG (provides memory weights and parent sets).
    num_processors:
        Number of processors ``P``.
    cache_size:
        Fast memory capacity ``r`` per processor.
    """

    def __init__(self, dag: ComputationalDag, num_processors: int, cache_size: float) -> None:
        self.dag = dag
        self.num_processors = num_processors
        self.cache_size = cache_size
        self.red: List[Set[NodeId]] = [set() for _ in range(num_processors)]
        self.red_usage: List[float] = [0.0 for _ in range(num_processors)]
        self.blue: Set[NodeId] = set(dag.sources())

    # ------------------------------------------------------------------
    def _check_proc(self, proc: int) -> None:
        if not 0 <= proc < self.num_processors:
            raise InvalidScheduleError(f"processor index {proc} out of range")

    def has_red(self, proc: int, node: NodeId) -> bool:
        self._check_proc(proc)
        return node in self.red[proc]

    def has_blue(self, node: NodeId) -> bool:
        return node in self.blue

    def cache_used(self, proc: int) -> float:
        self._check_proc(proc)
        return self.red_usage[proc]

    # ------------------------------------------------------------------
    def _add_red(self, proc: int, node: NodeId, context: str) -> None:
        if node in self.red[proc]:
            return
        self.red[proc].add(node)
        self.red_usage[proc] += self.dag.mu(node)
        if self.red_usage[proc] > self.cache_size + 1e-9:
            raise InvalidScheduleError(
                f"{context}: cache of processor {proc} exceeds capacity "
                f"({self.red_usage[proc]:.6g} > {self.cache_size:.6g})"
            )

    def _remove_red(self, proc: int, node: NodeId) -> None:
        if node in self.red[proc]:
            self.red[proc].remove(node)
            self.red_usage[proc] -= self.dag.mu(node)

    # ------------------------------------------------------------------
    def apply_load(self, proc: int, node: NodeId) -> None:
        """Apply ``LOAD(proc, node)``; requires a blue pebble on ``node``."""
        self._check_proc(proc)
        if node not in self.blue:
            raise InvalidScheduleError(
                f"LOAD({proc}, {node!r}): node has no blue pebble (not in slow memory)"
            )
        self._add_red(proc, node, f"LOAD({proc}, {node!r})")

    def apply_save(self, proc: int, node: NodeId, blue_target: Optional[Set[NodeId]] = None) -> None:
        """Apply ``SAVE(proc, node)``; requires a red pebble of ``proc``.

        If ``blue_target`` is given, the blue pebble is placed into that set
        instead of the live blue set; this implements the superstep semantics
        where the shared slow memory is only updated at the end of the save
        phase (Appendix A).
        """
        self._check_proc(proc)
        if node not in self.red[proc]:
            raise InvalidScheduleError(
                f"SAVE({proc}, {node!r}): node has no red pebble of processor {proc}"
            )
        (blue_target if blue_target is not None else self.blue).add(node)

    def apply_compute(self, proc: int, node: NodeId) -> None:
        """Apply ``COMPUTE(proc, node)``; requires all parents in cache."""
        self._check_proc(proc)
        parents = self.dag.parents(node)
        if not parents:
            raise InvalidScheduleError(
                f"COMPUTE({proc}, {node!r}): source nodes are never computed"
            )
        missing = [u for u in parents if u not in self.red[proc]]
        if missing:
            raise InvalidScheduleError(
                f"COMPUTE({proc}, {node!r}): parents {missing!r} not in cache of "
                f"processor {proc}"
            )
        self._add_red(proc, node, f"COMPUTE({proc}, {node!r})")

    def apply_delete(self, proc: int, node: NodeId) -> None:
        """Apply ``DELETE(proc, node)``; requires a red pebble of ``proc``."""
        self._check_proc(proc)
        if node not in self.red[proc]:
            raise InvalidScheduleError(
                f"DELETE({proc}, {node!r}): node has no red pebble of processor {proc}"
            )
        self._remove_red(proc, node)

    def apply(self, proc: int, op: Operation, blue_target: Optional[Set[NodeId]] = None) -> None:
        """Apply an arbitrary operation."""
        if op.op_type is OpType.LOAD:
            self.apply_load(proc, op.node)
        elif op.op_type is OpType.SAVE:
            self.apply_save(proc, op.node, blue_target=blue_target)
        elif op.op_type is OpType.COMPUTE:
            self.apply_compute(proc, op.node)
        elif op.op_type is OpType.DELETE:
            self.apply_delete(proc, op.node)
        else:  # pragma: no cover - enum is exhaustive
            raise InvalidScheduleError(f"unknown operation type {op.op_type!r}")

    # ------------------------------------------------------------------
    def copy(self) -> "PebblingState":
        """An independent snapshot of this configuration (same DAG object).

        Used by the refinement engine to checkpoint the replay state before
        every superstep so that a local schedule edit only needs a suffix
        replay instead of a full revalidation.
        """
        new = PebblingState.__new__(PebblingState)
        new.dag = self.dag
        new.num_processors = self.num_processors
        new.cache_size = self.cache_size
        new.red = [set(pebbles) for pebbles in self.red]
        new.red_usage = list(self.red_usage)
        new.blue = set(self.blue)
        return new

    def same_configuration(self, other: "PebblingState") -> bool:
        """Whether two states hold exactly the same red and blue pebbles."""
        return (
            self.num_processors == other.num_processors
            and self.blue == other.blue
            and self.red == other.red
        )

    # ------------------------------------------------------------------
    def is_terminal(self) -> bool:
        """Whether all sink nodes carry a blue pebble (terminal configuration)."""
        return all(v in self.blue for v in self.dag.sinks())

    def missing_sinks(self) -> List[NodeId]:
        """Sink nodes that do not yet carry a blue pebble."""
        return [v for v in self.dag.sinks() if v not in self.blue]
