"""Serialization of MBSP schedules.

Schedules can be exported to a plain JSON document (and read back), which is
useful for caching expensive ILP results, for inspecting schedules with
external tooling, and for regression-testing the schedulers against stored
reference schedules.  The format stores the superstep/phase structure
explicitly:

```json
{
  "instance": {"name": ..., "num_processors": 2, "cache_size": 12.0, "g": 1.0, "L": 10.0},
  "supersteps": [
    {"processors": [
        {"compute": [["compute", "b"], ["delete", "a"]],
         "save": ["b"], "delete": [], "load": ["c"]},
        ...
    ]},
    ...
  ]
}
```

The DAG itself is serialized separately (:mod:`repro.dag.io`); loading a
schedule requires the matching instance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import ScheduleError
from repro.model.instance import MbspInstance
from repro.model.pebbling import Operation, OpType
from repro.model.schedule import MbspSchedule, Superstep

PathLike = Union[str, Path]


def schedule_to_dict(schedule: MbspSchedule) -> dict:
    """Plain-dict representation of ``schedule`` (JSON-serializable node ids)."""
    instance = schedule.instance
    return {
        "instance": {
            "name": instance.name,
            "num_processors": instance.num_processors,
            "cache_size": instance.cache_size,
            "g": instance.g,
            "L": instance.L,
        },
        "supersteps": [
            {
                "processors": [
                    {
                        "compute": [[op.op_type.value, op.node] for op in ps.compute_phase],
                        "save": list(ps.save_phase),
                        "delete": list(ps.delete_phase),
                        "load": list(ps.load_phase),
                    }
                    for ps in step.processor_steps
                ]
            }
            for step in schedule.supersteps
        ],
    }


def schedule_from_dict(data: dict, instance: MbspInstance) -> MbspSchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    The ``instance`` must describe the same machine (processor count is
    checked; the DAG is taken from the instance).
    """
    meta = data.get("instance", {})
    num_processors = int(meta.get("num_processors", instance.num_processors))
    if num_processors != instance.num_processors:
        raise ScheduleError(
            f"stored schedule uses {num_processors} processors, instance has "
            f"{instance.num_processors}"
        )
    schedule = MbspSchedule(instance)
    for step_data in data.get("supersteps", []):
        step = Superstep(instance.num_processors)
        processors = step_data.get("processors", [])
        if len(processors) != instance.num_processors:
            raise ScheduleError("superstep entry does not match the processor count")
        for p, ps_data in enumerate(processors):
            ps = step[p]
            for op_type, node in ps_data.get("compute", []):
                ps.compute_phase.append(Operation(OpType(op_type), node))
            ps.save_phase.extend(ps_data.get("save", []))
            ps.delete_phase.extend(ps_data.get("delete", []))
            ps.load_phase.extend(ps_data.get("load", []))
        schedule.append(step)
    return schedule


def save_schedule(schedule: MbspSchedule, path: PathLike) -> None:
    """Write ``schedule`` to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(schedule_to_dict(schedule), indent=2, sort_keys=True)
    )


def load_schedule(path: PathLike, instance: MbspInstance) -> MbspSchedule:
    """Read a schedule written by :func:`save_schedule` for ``instance``."""
    return schedule_from_dict(json.loads(Path(path).read_text()), instance)
