"""The MBSP machine model.

A machine consists of ``P`` identical processors, each with a private fast
memory (cache) of capacity ``r``, a shared slow memory of unlimited capacity,
and the BSP communication parameters ``g`` (cost of moving one unit of data
between fast and slow memory) and ``L`` (synchronization cost per superstep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class MbspArchitecture:
    """Machine description for an MBSP scheduling problem.

    Attributes
    ----------
    num_processors:
        Number of processors ``P`` (positive integer).
    cache_size:
        Fast memory capacity ``r`` per processor (non-negative; ``inf`` allowed).
    g:
        Communication cost per unit of data moved between fast and slow memory.
    L:
        Synchronization cost charged once per superstep (synchronous model).
    """

    num_processors: int
    cache_size: float
    g: float = 1.0
    L: float = 0.0

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ConfigurationError(
                f"num_processors must be at least 1, got {self.num_processors}"
            )
        if self.cache_size < 0:
            raise ConfigurationError(f"cache_size must be non-negative, got {self.cache_size}")
        if self.g < 0:
            raise ConfigurationError(f"g must be non-negative, got {self.g}")
        if self.L < 0:
            raise ConfigurationError(f"L must be non-negative, got {self.L}")

    @property
    def processors(self) -> range:
        """Processor indices ``0 .. P-1``."""
        return range(self.num_processors)

    def with_processors(self, num_processors: int) -> "MbspArchitecture":
        """A copy of this architecture with a different processor count."""
        return MbspArchitecture(
            num_processors=num_processors,
            cache_size=self.cache_size,
            g=self.g,
            L=self.L,
        )

    def with_cache_size(self, cache_size: float) -> "MbspArchitecture":
        """A copy of this architecture with a different fast-memory capacity."""
        return MbspArchitecture(
            num_processors=self.num_processors,
            cache_size=cache_size,
            g=self.g,
            L=self.L,
        )

    def with_bsp_parameters(self, g: float | None = None, L: float | None = None) -> "MbspArchitecture":
        """A copy with different communication/synchronization parameters."""
        return MbspArchitecture(
            num_processors=self.num_processors,
            cache_size=self.cache_size,
            g=self.g if g is None else g,
            L=self.L if L is None else L,
        )
