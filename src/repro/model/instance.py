"""An MBSP problem instance: a weighted DAG together with a machine model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dag.analysis import minimum_cache_size
from repro.dag.graph import ComputationalDag
from repro.exceptions import InfeasibleInstanceError
from repro.model.architecture import MbspArchitecture


@dataclass
class MbspInstance:
    """A complete MBSP scheduling problem.

    Attributes
    ----------
    dag:
        The computational DAG with compute weights ``omega`` and memory
        weights ``mu``.
    architecture:
        The machine model (``P``, ``r``, ``g``, ``L``).
    name:
        Optional instance name; defaults to the DAG's name.
    """

    dag: ComputationalDag
    architecture: MbspArchitecture
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name is None:
            self.name = self.dag.name

    # convenient pass-throughs -----------------------------------------
    @property
    def num_processors(self) -> int:
        return self.architecture.num_processors

    @property
    def cache_size(self) -> float:
        return self.architecture.cache_size

    @property
    def g(self) -> float:
        return self.architecture.g

    @property
    def L(self) -> float:
        return self.architecture.L

    def minimum_cache_size(self) -> float:
        """Minimal fast-memory capacity ``r0`` admitting a valid schedule."""
        return minimum_cache_size(self.dag)

    def is_feasible(self) -> bool:
        """Whether the cache is large enough for any valid schedule to exist."""
        return self.cache_size >= self.minimum_cache_size()

    def require_feasible(self) -> None:
        """Raise :class:`InfeasibleInstanceError` if ``r < r0``."""
        r0 = self.minimum_cache_size()
        if self.cache_size < r0:
            raise InfeasibleInstanceError(
                f"instance {self.name!r}: cache size {self.cache_size} is below "
                f"the minimum required capacity r0={r0}"
            )

    def with_architecture(self, architecture: MbspArchitecture) -> "MbspInstance":
        """A copy of this instance with a different machine."""
        return MbspInstance(dag=self.dag, architecture=architecture, name=self.name)

    def scaled_cache_instance(self, factor: float) -> "MbspInstance":
        """A copy whose cache size is ``factor * r0`` (the paper's convention).

        The paper defines the memory bound of each experiment relative to the
        per-DAG minimum ``r0`` (e.g. ``r = 3 * r0`` for the main experiments).
        """
        r0 = self.minimum_cache_size()
        return self.with_architecture(self.architecture.with_cache_size(factor * r0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MbspInstance(name={self.name!r}, n={self.dag.num_nodes}, "
            f"P={self.num_processors}, r={self.cache_size}, g={self.g}, L={self.L})"
        )


def make_instance(
    dag: ComputationalDag,
    num_processors: int = 4,
    cache_factor: float = 3.0,
    g: float = 1.0,
    L: float = 10.0,
    cache_size: Optional[float] = None,
) -> MbspInstance:
    """Convenience constructor mirroring the paper's experimental setup.

    The cache size defaults to ``cache_factor * r0`` where ``r0`` is the
    minimal capacity required by the DAG; pass ``cache_size`` to override it
    with an absolute value.
    """
    if cache_size is None:
        cache_size = cache_factor * minimum_cache_size(dag)
    arch = MbspArchitecture(
        num_processors=num_processors, cache_size=cache_size, g=g, L=L
    )
    return MbspInstance(dag=dag, architecture=arch)
