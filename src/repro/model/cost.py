"""Cost functions for MBSP schedules (Section 3.3).

Two interpretations of the same schedule are supported:

* the **synchronous** cost, close to the (Multi-)BSP spirit: each superstep
  costs ``max_p cost(compute phase) + max_p cost(save phase) +
  max_p cost(load phase) + L``, and the schedule cost is the sum over
  supersteps;
* the **asynchronous** cost, a makespan-style metric: the finishing time
  ``gamma`` of every transition is computed per processor, where a LOAD of a
  value ``v`` cannot start before ``Gamma(v)``, the time at which ``v`` first
  becomes available in slow memory (the finishing time of its first save).

Both evaluators operate on the schedule object itself, so schedules produced
by any algorithm (two-stage baseline, ILP extraction, divide-and-conquer) are
compared under exactly the same ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dag.graph import NodeId
from repro.model.pebbling import OpType
from repro.model.schedule import MbspSchedule


@dataclass(frozen=True)
class CostBreakdown:
    """Decomposition of a synchronous schedule cost into its components."""

    compute: float
    save: float
    load: float
    synchronization: float

    @property
    def io(self) -> float:
        return self.save + self.load

    @property
    def total(self) -> float:
        return self.compute + self.save + self.load + self.synchronization


def synchronous_cost_breakdown(schedule: MbspSchedule, count_empty: bool = False) -> CostBreakdown:
    """Per-component synchronous cost of ``schedule``.

    Completely empty supersteps are skipped unless ``count_empty`` is set;
    well-formed schedules produced by this library never contain them.
    """
    instance = schedule.instance
    dag = instance.dag
    g, L = instance.g, instance.L
    comp_total = save_total = load_total = sync_total = 0.0
    for step in schedule.supersteps:
        if step.is_empty() and not count_empty:
            continue
        comp_total += max(ps.compute_cost(dag) for ps in step.processor_steps)
        save_total += max(ps.save_cost(dag, g) for ps in step.processor_steps)
        load_total += max(ps.load_cost(dag, g) for ps in step.processor_steps)
        sync_total += L
    return CostBreakdown(
        compute=comp_total, save=save_total, load=load_total, synchronization=sync_total
    )


def synchronous_cost(schedule: MbspSchedule) -> float:
    """Total synchronous cost of ``schedule`` (Section 3.3)."""
    return synchronous_cost_breakdown(schedule).total


def asynchronous_cost(schedule: MbspSchedule) -> float:
    """Asynchronous (makespan) cost of ``schedule`` (Section 3.3).

    The finishing time of each transition is computed per processor in
    superstep order; a LOAD of ``v`` starts no earlier than ``Gamma(v)``, the
    finishing time of the first save of ``v`` (0 for source nodes, which are
    available in slow memory from the start).
    """
    instance = schedule.instance
    dag = instance.dag
    g = instance.g
    num_procs = instance.num_processors

    finish: List[float] = [0.0] * num_procs
    gets_blue: Dict[NodeId, float] = {v: 0.0 for v in dag.sources()}
    first_save_superstep: Dict[NodeId, int] = {}

    for s, step in enumerate(schedule.supersteps):
        # compute phases (also covers in-phase deletes, which are free)
        for p, ps in enumerate(step.processor_steps):
            for op in ps.compute_phase:
                if op.op_type is OpType.COMPUTE:
                    finish[p] += dag.omega(op.node)
        # save phases; record Gamma for first-superstep saves
        for p, ps in enumerate(step.processor_steps):
            for v in ps.save_phase:
                finish[p] += g * dag.mu(v)
                prev_step = first_save_superstep.get(v)
                if prev_step is None:
                    first_save_superstep[v] = s
                    gets_blue[v] = finish[p]
                elif prev_step == s:
                    gets_blue[v] = min(gets_blue[v], finish[p])
        # delete phases are free
        # load phases; respect availability in slow memory
        for p, ps in enumerate(step.processor_steps):
            for v in ps.load_phase:
                available = gets_blue.get(v, 0.0)
                finish[p] = max(finish[p], available) + g * dag.mu(v)
    return max(finish) if finish else 0.0


def schedule_cost(schedule: MbspSchedule, synchronous: bool = True) -> float:
    """Dispatch between the synchronous and asynchronous cost functions."""
    return synchronous_cost(schedule) if synchronous else asynchronous_cost(schedule)
