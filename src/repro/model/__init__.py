"""MBSP model: machine, instance, pebbling rules, schedules, validation, costs."""

from repro.model.architecture import MbspArchitecture
from repro.model.instance import MbspInstance, make_instance
from repro.model.pebbling import (
    Operation,
    OpType,
    PebblingState,
    compute_op,
    delete_op,
    load_op,
    save_op,
)
from repro.model.schedule import MbspSchedule, ProcessorSuperstep, Superstep
from repro.model.validation import ValidationReport, is_valid_schedule, validate_schedule
from repro.model.serialization import load_schedule, save_schedule, schedule_from_dict, schedule_to_dict
from repro.model.visualization import render_gantt, render_superstep_table
from repro.model.cost import (
    CostBreakdown,
    asynchronous_cost,
    schedule_cost,
    synchronous_cost,
    synchronous_cost_breakdown,
)

__all__ = [
    "MbspArchitecture",
    "MbspInstance",
    "make_instance",
    "Operation",
    "OpType",
    "PebblingState",
    "compute_op",
    "delete_op",
    "load_op",
    "save_op",
    "MbspSchedule",
    "ProcessorSuperstep",
    "Superstep",
    "ValidationReport",
    "is_valid_schedule",
    "validate_schedule",
    "CostBreakdown",
    "asynchronous_cost",
    "schedule_cost",
    "synchronous_cost",
    "synchronous_cost_breakdown",
    "load_schedule",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "render_gantt",
    "render_superstep_table",
]
