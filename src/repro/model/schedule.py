"""MBSP schedule representation.

A schedule is a sequence of *supersteps*.  On every processor a superstep
consists of four sub-phases executed in order (Section 3.2):

1. a *compute phase* — an ordered mix of COMPUTE and DELETE operations,
2. a *save phase* — SAVE operations (writing values to slow memory),
3. a *delete phase* — DELETE operations (cache evictions),
4. a *load phase* — LOAD operations (reading values from slow memory).

The shared slow memory is only updated at the end of the save phase, so a
value saved by one processor in superstep ``s`` can be loaded by any
processor in the load phase of superstep ``s`` or later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import ScheduleError
from repro.model.instance import MbspInstance
from repro.model.pebbling import Operation, OpType, compute_op, delete_op


@dataclass
class ProcessorSuperstep:
    """The four sub-phases of one superstep on one processor.

    Attributes
    ----------
    compute_phase:
        Ordered COMPUTE / DELETE operations.
    save_phase:
        Nodes saved to slow memory (order is irrelevant for validity).
    delete_phase:
        Nodes evicted from cache after the save phase.
    load_phase:
        Nodes loaded from slow memory.
    """

    compute_phase: List[Operation] = field(default_factory=list)
    save_phase: List[NodeId] = field(default_factory=list)
    delete_phase: List[NodeId] = field(default_factory=list)
    load_phase: List[NodeId] = field(default_factory=list)

    # ------------------------------------------------------------------
    def computed_nodes(self) -> List[NodeId]:
        """Nodes computed in this superstep, in order."""
        return [op.node for op in self.compute_phase if op.op_type is OpType.COMPUTE]

    def is_empty(self) -> bool:
        return not (
            self.compute_phase or self.save_phase or self.delete_phase or self.load_phase
        )

    def compute_cost(self, dag: ComputationalDag) -> float:
        """Total compute weight executed in the compute phase."""
        return sum(dag.omega(v) for v in self.computed_nodes())

    def save_cost(self, dag: ComputationalDag, g: float) -> float:
        """Total I/O cost of the save phase."""
        return g * sum(dag.mu(v) for v in self.save_phase)

    def load_cost(self, dag: ComputationalDag, g: float) -> float:
        """Total I/O cost of the load phase."""
        return g * sum(dag.mu(v) for v in self.load_phase)

    def io_cost(self, dag: ComputationalDag, g: float) -> float:
        return self.save_cost(dag, g) + self.load_cost(dag, g)

    def validate_phase_types(self) -> None:
        """Check that the compute phase only contains COMPUTE/DELETE ops."""
        for op in self.compute_phase:
            if op.op_type not in (OpType.COMPUTE, OpType.DELETE):
                raise ScheduleError(
                    f"compute phase may only contain COMPUTE/DELETE operations, "
                    f"found {op!r}"
                )

    def copy(self) -> "ProcessorSuperstep":
        return ProcessorSuperstep(
            compute_phase=list(self.compute_phase),
            save_phase=list(self.save_phase),
            delete_phase=list(self.delete_phase),
            load_phase=list(self.load_phase),
        )


class Superstep:
    """One superstep of an MBSP schedule: a per-processor tuple of phases."""

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ScheduleError("a superstep needs at least one processor")
        self.processor_steps: List[ProcessorSuperstep] = [
            ProcessorSuperstep() for _ in range(num_processors)
        ]

    @property
    def num_processors(self) -> int:
        return len(self.processor_steps)

    def __getitem__(self, proc: int) -> ProcessorSuperstep:
        return self.processor_steps[proc]

    def __iter__(self) -> Iterator[ProcessorSuperstep]:
        return iter(self.processor_steps)

    def is_empty(self) -> bool:
        return all(ps.is_empty() for ps in self.processor_steps)

    def computed_nodes(self) -> Set[NodeId]:
        out: Set[NodeId] = set()
        for ps in self.processor_steps:
            out.update(ps.computed_nodes())
        return out

    def copy(self) -> "Superstep":
        step = Superstep(self.num_processors)
        step.processor_steps = [ps.copy() for ps in self.processor_steps]
        return step


class MbspSchedule:
    """A full MBSP schedule: an ordered sequence of supersteps for an instance."""

    def __init__(self, instance: MbspInstance, supersteps: Optional[Sequence[Superstep]] = None) -> None:
        self.instance = instance
        self.supersteps: List[Superstep] = list(supersteps or [])
        for step in self.supersteps:
            self._check_superstep(step)

    # ------------------------------------------------------------------
    def _check_superstep(self, step: Superstep) -> None:
        if step.num_processors != self.instance.num_processors:
            raise ScheduleError(
                f"superstep has {step.num_processors} processors, instance has "
                f"{self.instance.num_processors}"
            )

    def new_superstep(self) -> Superstep:
        """Append and return a fresh empty superstep."""
        step = Superstep(self.instance.num_processors)
        self.supersteps.append(step)
        return step

    def append(self, step: Superstep) -> None:
        self._check_superstep(step)
        self.supersteps.append(step)

    def extend(self, steps: Iterable[Superstep]) -> None:
        for step in steps:
            self.append(step)

    # ------------------------------------------------------------------
    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def dag(self) -> ComputationalDag:
        return self.instance.dag

    def __iter__(self) -> Iterator[Superstep]:
        return iter(self.supersteps)

    def __len__(self) -> int:
        return len(self.supersteps)

    def computed_nodes(self) -> Set[NodeId]:
        """All nodes computed at least once across the schedule."""
        out: Set[NodeId] = set()
        for step in self.supersteps:
            out.update(step.computed_nodes())
        return out

    def compute_assignment(self) -> Dict[NodeId, List[Tuple[int, int]]]:
        """Map node -> list of ``(superstep index, processor)`` compute events."""
        out: Dict[NodeId, List[Tuple[int, int]]] = {}
        for s, step in enumerate(self.supersteps):
            for p, ps in enumerate(step.processor_steps):
                for v in ps.computed_nodes():
                    out.setdefault(v, []).append((s, p))
        return out

    def recomputation_count(self) -> int:
        """Number of extra compute events beyond one per computed node."""
        assignment = self.compute_assignment()
        return sum(len(events) - 1 for events in assignment.values())

    def total_io_volume(self) -> float:
        """Total memory weight moved between fast and slow memory."""
        dag = self.dag
        total = 0.0
        for step in self.supersteps:
            for ps in step.processor_steps:
                total += sum(dag.mu(v) for v in ps.save_phase)
                total += sum(dag.mu(v) for v in ps.load_phase)
        return total

    def operation_counts(self) -> Dict[str, int]:
        """Counts of compute/save/load/delete operations (diagnostics)."""
        counts = {"compute": 0, "save": 0, "load": 0, "delete": 0}
        for step in self.supersteps:
            for ps in step.processor_steps:
                for op in ps.compute_phase:
                    if op.op_type is OpType.COMPUTE:
                        counts["compute"] += 1
                    else:
                        counts["delete"] += 1
                counts["save"] += len(ps.save_phase)
                counts["delete"] += len(ps.delete_phase)
                counts["load"] += len(ps.load_phase)
        return counts

    def drop_empty_supersteps(self) -> "MbspSchedule":
        """Return a copy without completely empty supersteps."""
        kept = [s.copy() for s in self.supersteps if not s.is_empty()]
        return MbspSchedule(self.instance, kept)

    def copy(self) -> "MbspSchedule":
        return MbspSchedule(self.instance, [s.copy() for s in self.supersteps])

    # ------------------------------------------------------------------
    def describe(self, max_supersteps: Optional[int] = None) -> str:
        """Human-readable multi-line description (used by the examples)."""
        lines = [
            f"MBSP schedule for {self.instance.name!r}: "
            f"{self.num_supersteps} supersteps, P={self.instance.num_processors}"
        ]
        steps = self.supersteps if max_supersteps is None else self.supersteps[:max_supersteps]
        for s, step in enumerate(steps):
            lines.append(f"  superstep {s}:")
            for p, ps in enumerate(step.processor_steps):
                if ps.is_empty():
                    continue
                comp = ",".join(str(v) for v in ps.computed_nodes())
                save = ",".join(str(v) for v in ps.save_phase)
                load = ",".join(str(v) for v in ps.load_phase)
                lines.append(
                    f"    p{p}: compute[{comp}] save[{save}] load[{load}]"
                )
        if max_supersteps is not None and self.num_supersteps > max_supersteps:
            lines.append(f"  ... ({self.num_supersteps - max_supersteps} more supersteps)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MbspSchedule(instance={self.instance.name!r}, "
            f"supersteps={self.num_supersteps})"
        )
