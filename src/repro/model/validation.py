"""Validation of MBSP schedules.

The validator replays a schedule through :class:`~repro.model.pebbling.PebblingState`
and enforces every rule of the model definition (Section 3 and Appendix A):

* every operation's precondition (parents in cache, blue pebble present, ...),
* the per-processor memory bound after every cache insertion,
* the superstep semantics (slow memory is only updated at the end of each
  save phase and queried in the load phase),
* the initial configuration (only sources in slow memory, empty caches) and
  the terminal configuration (all sinks in slow memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.dag.graph import NodeId
from repro.exceptions import InvalidScheduleError
from repro.model.pebbling import OpType, PebblingState
from repro.model.schedule import MbspSchedule


@dataclass
class ValidationReport:
    """Summary statistics gathered while replaying a valid schedule."""

    num_supersteps: int = 0
    num_computes: int = 0
    num_loads: int = 0
    num_saves: int = 0
    num_deletes: int = 0
    recomputed_nodes: int = 0
    max_cache_used: float = 0.0
    computed_nodes: Set[NodeId] = field(default_factory=set)
    #: per-node compute event counts (recomputation diagnostics)
    compute_events: Dict[NodeId, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_supersteps": self.num_supersteps,
            "num_computes": self.num_computes,
            "num_loads": self.num_loads,
            "num_saves": self.num_saves,
            "num_deletes": self.num_deletes,
            "recomputed_nodes": self.recomputed_nodes,
            "max_cache_used": self.max_cache_used,
        }


def replay_superstep(
    state: PebblingState,
    step,
    superstep_index: int = 0,
    report: Optional[ValidationReport] = None,
) -> None:
    """Replay one superstep on ``state``, enforcing every model rule.

    This is the single replay primitive shared by :func:`validate_schedule`,
    :func:`replay_final_state` and the incremental revalidation of the
    refinement engine (:mod:`repro.refine`): the four phases are applied in
    order (compute, save, delete, load) with the superstep semantics of the
    save phase (blue pebbles become visible only after *all* saves of the
    step).  Raises :class:`InvalidScheduleError` on any violation; when a
    ``report`` is given, operation counts and peak cache usage are recorded
    on it.
    """
    s = superstep_index
    # 1. compute phases (COMPUTE / DELETE only)
    for p, ps in enumerate(step.processor_steps):
        ps.validate_phase_types()
        for op in ps.compute_phase:
            try:
                state.apply(p, op)
            except InvalidScheduleError as exc:
                raise InvalidScheduleError(f"superstep {s}: {exc}") from None
            if report is not None:
                if op.op_type is OpType.COMPUTE:
                    report.num_computes += 1
                    report.compute_events[op.node] = report.compute_events.get(op.node, 0) + 1
                    report.computed_nodes.add(op.node)
                else:
                    report.num_deletes += 1
                report.max_cache_used = max(report.max_cache_used, state.cache_used(p))
    # 2. save phases: blue pebbles become visible only after all saves
    new_blue: Set[NodeId] = set()
    for p, ps in enumerate(step.processor_steps):
        for v in ps.save_phase:
            try:
                state.apply_save(p, v, blue_target=new_blue)
            except InvalidScheduleError as exc:
                raise InvalidScheduleError(f"superstep {s}: {exc}") from None
            if report is not None:
                report.num_saves += 1
    state.blue.update(new_blue)
    # 3. delete phases
    for p, ps in enumerate(step.processor_steps):
        for v in ps.delete_phase:
            try:
                state.apply_delete(p, v)
            except InvalidScheduleError as exc:
                raise InvalidScheduleError(f"superstep {s}: {exc}") from None
            if report is not None:
                report.num_deletes += 1
    # 4. load phases
    for p, ps in enumerate(step.processor_steps):
        for v in ps.load_phase:
            try:
                state.apply_load(p, v)
            except InvalidScheduleError as exc:
                raise InvalidScheduleError(f"superstep {s}: {exc}") from None
            if report is not None:
                report.num_loads += 1
                report.max_cache_used = max(report.max_cache_used, state.cache_used(p))


def validate_schedule(schedule: MbspSchedule, require_all_computed: bool = True) -> ValidationReport:
    """Replay ``schedule`` and raise :class:`InvalidScheduleError` on any violation.

    Parameters
    ----------
    schedule:
        The MBSP schedule to check.
    require_all_computed:
        When true (default), additionally require that every non-source node
        is computed at least once.  The bare model only requires the sinks to
        end up in slow memory, but all schedules produced by this library
        compute every node, and requiring it catches converter bugs early.

    Returns
    -------
    ValidationReport
        Operation counts and peak cache usage of the (valid) schedule.
    """
    instance = schedule.instance
    dag = instance.dag
    state = PebblingState(dag, instance.num_processors, instance.cache_size)
    report = ValidationReport(num_supersteps=schedule.num_supersteps)

    for s, step in enumerate(schedule.supersteps):
        if step.num_processors != instance.num_processors:
            raise InvalidScheduleError(
                f"superstep {s} has {step.num_processors} processor entries, "
                f"expected {instance.num_processors}"
            )
        replay_superstep(state, step, s, report=report)

    missing = state.missing_sinks()
    if missing:
        raise InvalidScheduleError(
            f"terminal configuration violated: sink nodes {missing!r} never "
            f"saved to slow memory"
        )
    if require_all_computed:
        not_computed = [
            v for v in dag.nodes if not dag.is_source(v) and v not in report.computed_nodes
        ]
        if not_computed:
            raise InvalidScheduleError(
                f"nodes never computed anywhere in the schedule: {not_computed!r}"
            )
    report.recomputed_nodes = sum(1 for c in report.compute_events.values() if c > 1)
    return report


def replay_final_state(schedule: MbspSchedule) -> PebblingState:
    """Replay a schedule (assumed valid) and return the final pebbling state.

    Used by the divide-and-conquer scheduler to find which values are left in
    each processor's cache at the end of a sub-schedule (they must be evicted
    before the next sub-problem starts so the memory bound keeps holding).
    """
    instance = schedule.instance
    state = PebblingState(instance.dag, instance.num_processors, instance.cache_size)
    for s, step in enumerate(schedule.supersteps):
        replay_superstep(state, step, s)
    return state


def is_valid_schedule(schedule: MbspSchedule, require_all_computed: bool = True) -> bool:
    """Boolean convenience wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, require_all_computed=require_all_computed)
        return True
    except InvalidScheduleError:
        return False
