"""Text-based visualization of MBSP schedules.

Two renderers are provided, both dependency-free (plain text) so they can be
used in examples, notebooks and terminal debugging sessions:

* :func:`render_superstep_table` — one row per superstep, one column per
  processor, showing the computed nodes and the I/O volume of every phase;
* :func:`render_gantt` — an ASCII Gantt chart of the *asynchronous* execution
  (each processor is a lane; compute time is drawn with ``#``, I/O with
  ``~``, idle/waiting time with ``.``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dag.graph import NodeId
from repro.model.pebbling import OpType
from repro.model.schedule import MbspSchedule


def render_superstep_table(schedule: MbspSchedule, max_nodes_per_cell: int = 6) -> str:
    """A fixed-width per-superstep summary table of ``schedule``."""
    instance = schedule.instance
    dag = instance.dag
    g = instance.g
    width = 28
    header_cells = [f"p{p}".center(width) for p in range(instance.num_processors)]
    lines = ["superstep | " + " | ".join(header_cells)]
    lines.append("-" * len(lines[0]))
    for s, step in enumerate(schedule.supersteps):
        cells = []
        for ps in step.processor_steps:
            computed = ps.computed_nodes()
            shown = ",".join(str(v) for v in computed[:max_nodes_per_cell])
            if len(computed) > max_nodes_per_cell:
                shown += ",..."
            io = ps.io_cost(dag, g)
            cell = f"c[{shown}] io={io:g}"
            cells.append(cell[:width].ljust(width))
        lines.append(f"{s:>9d} | " + " | ".join(cells))
    return "\n".join(lines)


def _asynchronous_timeline(schedule: MbspSchedule) -> List[List[Tuple[float, float, str]]]:
    """Per-processor list of (start, end, kind) intervals, kind in {comp, io, wait}."""
    instance = schedule.instance
    dag = instance.dag
    g = instance.g
    P = instance.num_processors
    finish = [0.0] * P
    gets_blue: Dict[NodeId, float] = {v: 0.0 for v in dag.sources()}
    first_save_superstep: Dict[NodeId, int] = {}
    lanes: List[List[Tuple[float, float, str]]] = [[] for _ in range(P)]

    for s, step in enumerate(schedule.supersteps):
        for p, ps in enumerate(step.processor_steps):
            for op in ps.compute_phase:
                if op.op_type is OpType.COMPUTE:
                    start = finish[p]
                    finish[p] += dag.omega(op.node)
                    lanes[p].append((start, finish[p], "comp"))
        for p, ps in enumerate(step.processor_steps):
            for v in ps.save_phase:
                start = finish[p]
                finish[p] += g * dag.mu(v)
                lanes[p].append((start, finish[p], "io"))
                prev = first_save_superstep.get(v)
                if prev is None:
                    first_save_superstep[v] = s
                    gets_blue[v] = finish[p]
                elif prev == s:
                    gets_blue[v] = min(gets_blue[v], finish[p])
        for p, ps in enumerate(step.processor_steps):
            for v in ps.load_phase:
                available = gets_blue.get(v, 0.0)
                if available > finish[p]:
                    lanes[p].append((finish[p], available, "wait"))
                    finish[p] = available
                start = finish[p]
                finish[p] += g * dag.mu(v)
                lanes[p].append((start, finish[p], "io"))
    return lanes


def render_gantt(schedule: MbspSchedule, width: int = 72) -> str:
    """ASCII Gantt chart of the asynchronous execution of ``schedule``."""
    lanes = _asynchronous_timeline(schedule)
    makespan = max((interval[1] for lane in lanes for interval in lane), default=0.0)
    if makespan <= 0:
        return "(empty schedule)"
    scale = width / makespan
    symbols = {"comp": "#", "io": "~", "wait": "."}
    lines = [f"asynchronous makespan: {makespan:g}   (# compute, ~ I/O, . waiting)"]
    for p, lane in enumerate(lanes):
        row = [" "] * width
        for start, end, kind in lane:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(round(end * scale))))
            for i in range(lo, hi):
                row[i] = symbols[kind]
        lines.append(f"p{p:<2d} |" + "".join(row) + "|")
    return "\n".join(lines)
