"""Deterministic instance features for learned member selection.

The adaptive portfolio (:mod:`repro.learn.select`) predicts which pipeline
members are worth running on an instance *before* running anything, so the
features it predicts from must be

* **cheap** — nothing here may schedule or solve; every quantity is a
  linear-time pass over the DAG (:mod:`repro.dag.analysis`) or a field of
  the :class:`~repro.experiments.runner.ExperimentConfig`;
* **deterministic** — the vector is a pure function of (DAG, config):
  no wall clock, no randomness, no hash-salted iteration order (all node
  iteration happens over the DAG's ordered node list).

The schema is versioned and ordered: :data:`FEATURE_NAMES` pins the name
and position of every feature, and :meth:`FeatureVector.fingerprint`
hashes ``(schema version, names, rounded values)`` so any drift in the
feature definitions changes the fingerprint (and therefore invalidates
mined histories loudly instead of silently mispredicting).

Coarse log-scale *buckets* (:func:`feature_bucket`) group instances whose
members are expected to behave alike; the history miner aggregates win/cost
statistics per (bucket, canonical spec).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dag.analysis import (
    critical_path_length,
    minimum_cache_size,
    node_levels,
)
from repro.dag.graph import ComputationalDag
from repro.experiments.runner import ExperimentConfig

#: Version of the feature-vector schema.  Bump when :data:`FEATURE_NAMES`
#: or any feature definition changes; mined histories carry the version and
#: refuse to mix schemas.
SCHEMA_VERSION = 1

#: Ordered feature names (the stable schema of the vector).
FEATURE_NAMES: Tuple[str, ...] = (
    "nodes",
    "edges",
    "avg_fanout",
    "max_fanout",
    "depth",
    "depth_ratio",
    "sources",
    "sinks",
    "total_work",
    "critical_path",
    "parallelism",
    "total_memory",
    "r0",
    "memory_pressure",
    "processors",
    "g",
    "L",
)


@dataclass(frozen=True)
class FeatureVector:
    """One instance's feature values in :data:`FEATURE_NAMES` order."""

    values: Tuple[float, ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return FEATURE_NAMES

    def __getitem__(self, name: str) -> float:
        return self.values[FEATURE_NAMES.index(name)]

    def to_dict(self) -> Dict[str, float]:
        return {name: value for name, value in zip(FEATURE_NAMES, self.values)}

    def fingerprint(self) -> str:
        """sha256 over (schema version, names, rounded values).

        Values are rounded to 12 significant decimals before hashing so the
        fingerprint is robust to last-bit float formatting differences while
        still detecting any real change of a feature definition.
        """
        payload = [
            SCHEMA_VERSION,
            list(FEATURE_NAMES),
            [round(value, 12) for value in self.values],
        ]
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def instance_features(
    dag: ComputationalDag, config: ExperimentConfig
) -> FeatureVector:
    """The feature vector of one ``(dag, config)`` instance.

    Every quantity is computed by iterating the DAG's *ordered* node list
    (never a set), so the vector is bit-identical across processes, worker
    counts and ``PYTHONHASHSEED`` values.
    """
    nodes = float(dag.num_nodes)
    edges = float(dag.num_edges)
    levels = node_levels(dag)
    depth = float(max(levels.values()) + 1) if levels else 0.0
    max_fanout = 0.0
    for v in dag.nodes:
        max_fanout = max(max_fanout, float(len(dag.children(v))))
    critical_path = critical_path_length(dag)
    total_work = dag.total_work()
    total_memory = dag.total_memory()
    r0 = minimum_cache_size(dag)
    processors = float(config.num_processors)
    # aggregate fast memory of the machine (the paper's r = cache_factor*r0
    # per processor); how far the instance's data footprint exceeds it is
    # the pressure the cache-eviction policies actually feel
    machine_memory = config.cache_factor * r0 * processors
    memory_pressure = total_memory / machine_memory if machine_memory > 0 else 0.0
    return FeatureVector(values=(
        nodes,
        edges,
        edges / nodes if nodes else 0.0,
        max_fanout,
        depth,
        depth / nodes if nodes else 0.0,
        float(len(dag.sources())),
        float(len(dag.sinks())),
        total_work,
        critical_path,
        total_work / critical_path if critical_path > 0 else 1.0,
        total_memory,
        r0,
        memory_pressure,
        processors,
        float(config.g),
        float(config.L),
    ))


def _log2_bucket(value: float) -> int:
    """Coarse log2 bucket of a non-negative magnitude (0 for values < 1)."""
    if value < 1.0:
        return 0
    return int(math.floor(math.log2(value)))


def feature_bucket(features: FeatureVector) -> str:
    """The coarse bucket key the history aggregates under.

    Buckets are deliberately coarse — log2 of the node count, of the
    available parallelism and of the memory pressure, plus the exact
    processor count — so a small mined history still covers unseen
    instances of similar shape.
    """
    return "|".join((
        f"n{_log2_bucket(features['nodes'])}",
        f"par{_log2_bucket(features['parallelism'])}",
        f"mem{_log2_bucket(features['memory_pressure'])}",
        f"P{int(features['processors'])}",
    ))
