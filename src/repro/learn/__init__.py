"""Learned member selection over mined run history (the adaptive portfolio).

The learning subsystem of the reproduction: every portfolio/exec/serve run
already streams per-member telemetry to JSONL results files; this package
turns that logged history into *predictions* of which pipeline members are
worth running on an unseen instance, so the portfolio stops paying for
members it can predict will lose.

* :mod:`repro.learn.features` — cheap deterministic instance features
  (versioned schema, stable fingerprint, coarse feature buckets);
* :mod:`repro.learn.history` — the miner: results JSONLs -> a byte-stable
  per-(bucket, canonical-spec) win/cost table;
* :mod:`repro.learn.model` — two dependency-free selectors (per-bucket
  greedy bandit, k-NN over feature vectors), pure functions of
  (history, instance, seed);
* :mod:`repro.learn.select` — top-k selection plans plus the regret report
  consumed by ``Portfolio(select="adaptive")``;
* :mod:`repro.learn.report` — Figure-4-style per-member cost-distribution
  reporting (``repro learn report``).

Everything is deterministic and cache-key-safe: adaptive runs submit a
strict subset of the exhaustive jobs (same parameters, same content
hashes), and ``top_k >= len(members)`` reproduces the exhaustive run
byte-identically.
"""

from repro.learn.features import (
    FEATURE_NAMES,
    SCHEMA_VERSION,
    FeatureVector,
    feature_bucket,
    instance_features,
)
from repro.learn.history import (
    HISTORY_SCHEMA_VERSION,
    BucketStats,
    InstanceHistory,
    LearnedHistory,
    MemberObservation,
    MiningStats,
    mine_history,
)
from repro.learn.model import SELECTORS, rank_greedy, rank_knn, rank_members
from repro.learn.report import (
    distributions_to_json,
    format_distribution_table,
    member_distributions,
)
from repro.learn.select import (
    InstanceSelection,
    SelectionReport,
    plan_selection,
)

__all__ = [
    "FEATURE_NAMES",
    "HISTORY_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "SELECTORS",
    "BucketStats",
    "FeatureVector",
    "InstanceHistory",
    "InstanceSelection",
    "LearnedHistory",
    "MemberObservation",
    "MiningStats",
    "SelectionReport",
    "distributions_to_json",
    "feature_bucket",
    "format_distribution_table",
    "instance_features",
    "member_distributions",
    "mine_history",
    "plan_selection",
    "rank_greedy",
    "rank_knn",
    "rank_members",
]
