"""Mining past results into a per-(feature-bucket, spec) win/cost table.

Every portfolio/exec/serve run since the streaming store landed appends
JSONL records carrying the canonical member spec, the achieved cost and the
per-job solver telemetry.  :func:`mine_history` streams those files
(:func:`repro.experiments.reporting.iter_jsonl_records` — malformed lines
are skipped, nothing is ever held in memory) into a
:class:`LearnedHistory`: per benchmark instance, the best observed cost of
every canonical spec, keyed by the instance's feature bucket
(:func:`repro.learn.features.feature_bucket`).

The history is the single input of both selectors
(:mod:`repro.learn.model`) and of the regret report: the *true best* cost
of an instance is the minimum over all mined specs, so an adaptive run can
report per-instance regret without ever running the exhaustive sweep again.

Determinism contract: the serialized history is **byte-stable** — the JSON
rendering uses sorted keys everywhere, observations deduplicate
order-independently (minimum cost, maximum solver calls), and no wall-clock
quantity (``solve_time``, ``solver_time``) is ever stored.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentConfig
from repro.learn.features import (
    FEATURE_NAMES,
    SCHEMA_VERSION as FEATURE_SCHEMA_VERSION,
    FeatureVector,
    feature_bucket,
    instance_features,
)

PathLike = Union[str, Path]

#: Version of the serialized history layout.
HISTORY_SCHEMA_VERSION = 1


@dataclass
class MemberObservation:
    """Best observed outcome of one canonical spec on one instance."""

    cost: float
    solver_calls: float = 0.0

    def merge(self, cost: float, solver_calls: float) -> None:
        # order-independent reduction: re-mining the same files in any
        # order (or twice) yields byte-identical tables
        self.cost = min(self.cost, cost)
        self.solver_calls = max(self.solver_calls, solver_calls)


@dataclass
class InstanceHistory:
    """Everything mined about one benchmark instance."""

    bucket: str
    features: List[float]
    num_nodes: int
    members: Dict[str, MemberObservation] = field(default_factory=dict)

    @property
    def best_cost(self) -> float:
        """True-best (minimum mined) cost; ``inf`` with no observations."""
        best = math.inf
        for spec in sorted(self.members):
            best = min(best, self.members[spec].cost)
        return best


@dataclass
class BucketStats:
    """Aggregated win/cost statistics of one spec within one bucket."""

    count: int = 0
    wins: int = 0
    rel_cost_sum: float = 0.0
    solver_calls_sum: float = 0.0

    @property
    def mean_rel_cost(self) -> float:
        return self.rel_cost_sum / self.count if self.count else math.inf

    @property
    def mean_solver_calls(self) -> float:
        return self.solver_calls_sum / self.count if self.count else 0.0

    @property
    def win_rate(self) -> float:
        return self.wins / self.count if self.count else 0.0


@dataclass
class MiningStats:
    """What one :func:`mine_history` pass consumed and skipped."""

    records: int = 0
    observations: int = 0
    skipped_no_member: int = 0
    skipped_unknown_instance: int = 0
    skipped_nonfinite: int = 0

    def describe(self) -> str:
        return (
            f"{self.observations} observation(s) from {self.records} record(s)"
            f" ({self.skipped_no_member} without a member spec, "
            f"{self.skipped_unknown_instance} of unknown instances, "
            f"{self.skipped_nonfinite} non-finite skipped)"
        )


class LearnedHistory:
    """The mined per-instance cost table plus its bucketed aggregation."""

    def __init__(self, processors: int = 4) -> None:
        self.schema_version = HISTORY_SCHEMA_VERSION
        self.feature_schema = FEATURE_SCHEMA_VERSION
        self.processors = int(processors)
        self.instances: Dict[str, InstanceHistory] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def observe(
        self,
        instance: str,
        features: FeatureVector,
        num_nodes: int,
        spec: str,
        cost: float,
        solver_calls: float = 0.0,
    ) -> None:
        """Record one (instance, spec) outcome (deduplicated, order-free)."""
        if not math.isfinite(cost):
            return
        entry = self.instances.get(instance)
        if entry is None:
            entry = InstanceHistory(
                bucket=feature_bucket(features),
                features=[float(v) for v in features.values],
                num_nodes=int(num_nodes),
            )
            self.instances[instance] = entry
        seen = entry.members.get(spec)
        if seen is None:
            entry.members[spec] = MemberObservation(
                cost=float(cost), solver_calls=float(solver_calls)
            )
        else:
            seen.merge(float(cost), float(solver_calls))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_observations(self) -> int:
        return sum(
            len(self.instances[name].members) for name in sorted(self.instances)
        )

    def specs(self) -> List[str]:
        """Every canonical spec with at least one observation (sorted)."""
        seen: List[str] = []
        for name in sorted(self.instances):
            for spec in sorted(self.instances[name].members):
                if spec not in seen:
                    seen.append(spec)
        return sorted(seen)

    def best_cost(self, instance: str) -> Optional[float]:
        """True-best mined cost of ``instance`` (``None`` if unknown)."""
        entry = self.instances.get(instance)
        if entry is None or not entry.members:
            return None
        best = entry.best_cost
        return best if math.isfinite(best) else None

    def bucket_table(self) -> Dict[str, Dict[str, BucketStats]]:
        """``bucket -> spec -> BucketStats`` aggregation of the history.

        Relative costs are computed within each instance (cost over the
        instance's best mined cost), so specs are comparable across
        instances of very different absolute cost.  A spec ties for the win
        when its cost matches the instance best exactly.
        """
        table: Dict[str, Dict[str, BucketStats]] = {}
        for name in sorted(self.instances):
            entry = self.instances[name]
            best = entry.best_cost
            if not math.isfinite(best):
                continue
            per_bucket = table.setdefault(entry.bucket, {})
            for spec in sorted(entry.members):
                observation = entry.members[spec]
                stats = per_bucket.setdefault(spec, BucketStats())
                stats.count += 1
                stats.wins += 1 if observation.cost == best else 0
                stats.rel_cost_sum += (
                    observation.cost / best if best > 0 else 1.0
                )
                stats.solver_calls_sum += observation.solver_calls
        return table

    # ------------------------------------------------------------------
    # serialization (byte-stable)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "feature_schema": self.feature_schema,
            "feature_names": list(FEATURE_NAMES),
            "processors": self.processors,
            "instances": {
                name: {
                    "bucket": entry.bucket,
                    "features": entry.features,
                    "num_nodes": entry.num_nodes,
                    "members": {
                        spec: {
                            "cost": observation.cost,
                            "solver_calls": observation.solver_calls,
                        }
                        for spec, observation in sorted(entry.members.items())
                    },
                }
                for name, entry in sorted(self.instances.items())
            },
        }

    def to_json(self) -> str:
        """Byte-stable JSON rendering (sorted keys, fixed indent)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def digest(self) -> str:
        """sha256 of the serialized history (the provenance fingerprint)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def save(self, path: PathLike) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LearnedHistory":
        schema = int(data.get("schema_version", -1))
        if schema != HISTORY_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported history schema version {schema} "
                f"(this build reads version {HISTORY_SCHEMA_VERSION})"
            )
        feature_schema = int(data.get("feature_schema", -1))
        if feature_schema != FEATURE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"history was mined under feature schema {feature_schema}, "
                f"this build computes schema {FEATURE_SCHEMA_VERSION}; "
                f"re-mine the history (repro learn mine)"
            )
        history = cls(processors=int(data.get("processors", 4)))
        for name, entry in dict(data.get("instances", {})).items():
            record = InstanceHistory(
                bucket=str(entry["bucket"]),
                features=[float(v) for v in entry["features"]],
                num_nodes=int(entry["num_nodes"]),
            )
            for spec, observation in dict(entry.get("members", {})).items():
                record.members[str(spec)] = MemberObservation(
                    cost=float(observation["cost"]),
                    solver_calls=float(observation.get("solver_calls", 0.0)),
                )
            history.instances[str(name)] = record
        return history

    @classmethod
    def load(cls, path: PathLike) -> "LearnedHistory":
        """Parse a saved history; malformed files raise
        :class:`~repro.exceptions.ConfigurationError` (callers wanting the
        warn-and-fall-back convention catch it, see the portfolio CLI)."""
        try:
            data = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ConfigurationError(f"cannot read history file {path}: {exc}")
        except ValueError as exc:
            raise ConfigurationError(f"malformed history file {path}: {exc}")
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"malformed history file {path}: expected a JSON object"
            )
        try:
            return cls.from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed history file {path}: {exc}")


def mine_history(
    results_paths: Sequence[PathLike],
    dags: Iterable[ComputationalDag],
    config: ExperimentConfig,
    history: Optional[LearnedHistory] = None,
) -> "tuple[LearnedHistory, MiningStats]":
    """Stream results JSONLs into a :class:`LearnedHistory`.

    ``dags`` supplies the instances whose features the miner can compute;
    records of instances outside this set are counted and skipped (the
    JSONL row alone does not describe the graph).  Only ``portfolio``-kind
    records carrying a ``member`` spec contribute — older files written
    before the spec landed in the record simply mine to nothing, they do
    not error.
    """
    from repro.experiments.reporting import iter_jsonl_records

    history = history if history is not None else LearnedHistory(
        processors=config.num_processors
    )
    stats = MiningStats()
    known = {dag.name: dag for dag in dags}
    features: Dict[str, FeatureVector] = {}
    for path in results_paths:
        for record in iter_jsonl_records(path):
            stats.records += 1
            spec = record.get("member")
            if not spec:
                stats.skipped_no_member += 1
                continue
            name = str(record.get("instance", ""))
            dag = known.get(name)
            if dag is None:
                stats.skipped_unknown_instance += 1
                continue
            result = record["result"]
            try:
                extra = dict(result.get("extra_costs", {}))
                cost = float(extra.get("member_cost", result["ilp_cost"]))
                solver_calls = float(
                    dict(result.get("solver_stats", {})).get("solver_calls", 0.0)
                )
                num_nodes = int(result.get("num_nodes", dag.num_nodes))
            except (KeyError, TypeError, ValueError):
                stats.skipped_nonfinite += 1
                continue
            if not math.isfinite(cost):
                stats.skipped_nonfinite += 1
                continue
            if name not in features:
                features[name] = instance_features(dag, config)
            history.observe(
                name, features[name], num_nodes, str(spec), cost, solver_calls
            )
            stats.observations += 1
    return history, stats
