"""Adaptive top-k member selection for the portfolio.

:func:`plan_selection` turns a mined :class:`~repro.learn.history.
LearnedHistory` plus the portfolio's member list into a per-instance plan:
which members to *run* (the predicted top-k) and which to skip.  The
portfolio then submits exactly the chosen jobs — with the same parameters
and therefore the same content-hash keys as an exhaustive run, so adaptive
and exhaustive runs share cache entries.

After the run, :meth:`SelectionReport.finalize` joins the achieved best
costs back in and computes **regret**: the achieved best cost minus the
instance's *true best* mined cost (the minimum over all specs in the
history).  Regret is only defined for instances the history knows; unknown
instances are counted separately instead of polluting the aggregate.
``top_k >= len(members)`` degenerates to the exhaustive plan (same jobs,
same order) — the golden guarantee that adaptive mode is a strict subset
of exhaustive work, never different work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentConfig
from repro.learn.features import instance_features
from repro.learn.history import LearnedHistory
from repro.learn.model import SELECTORS, rank_members


@dataclass
class InstanceSelection:
    """The per-instance decision: predicted ranking, chosen subset, regret."""

    instance: str
    ranking: List[str]
    chosen: List[str]
    skipped: List[str]
    #: true-best mined cost (``None`` when the history has no truth)
    true_best: Optional[float] = None
    #: best cost actually achieved by the chosen members (set by finalize)
    achieved: float = math.inf

    @property
    def regret(self) -> Optional[float]:
        """Achieved minus true-best cost; ``None`` without mined truth."""
        if self.true_best is None or not math.isfinite(self.achieved):
            return None
        return self.achieved - self.true_best


@dataclass
class SelectionReport:
    """Everything one adaptive selection decided (and later achieved)."""

    selector: str
    top_k: int
    seed: int
    history_digest: str
    selections: List[InstanceSelection] = field(default_factory=list)
    predicted_calls_saved: float = 0.0

    @property
    def jobs_total(self) -> int:
        return sum(len(s.chosen) + len(s.skipped) for s in self.selections)

    @property
    def jobs_run(self) -> int:
        return sum(len(s.chosen) for s in self.selections)

    @property
    def jobs_skipped(self) -> int:
        return self.jobs_total - self.jobs_run

    def finalize(self, rows) -> None:
        """Join achieved best costs from the portfolio rows (plan order)."""
        for selection, row in zip(self.selections, rows):
            selection.achieved = row.best_cost

    def aggregate_regret(self) -> Dict[str, float]:
        """Summed regret over the instances with mined truth.

        ``relative`` is the regret as a fraction of the summed true-best
        cost (0.0 = the adaptive run matched the mined optimum everywhere).
        """
        total = 0.0
        truth = 0.0
        known = 0
        unknown = 0
        for selection in self.selections:
            regret = selection.regret
            if regret is None:
                unknown += 1
                continue
            known += 1
            total += regret
            truth += selection.true_best or 0.0
        return {
            "regret": round(total, 9),
            "relative": round(total / truth, 9) if truth > 0 else 0.0,
            "instances_known": float(known),
            "instances_unknown": float(unknown),
        }

    def footer_lines(self) -> List[str]:
        """The portfolio-table footer rendering of this report."""
        aggregate = self.aggregate_regret()
        lines = [
            f"~ adaptive selection ({self.selector}, top-{self.top_k}): "
            f"ran {self.jobs_run}/{self.jobs_total} member job(s), "
            f"{self.jobs_skipped} skipped "
            f"(history predicts ~{self.predicted_calls_saved:g} solver "
            f"call(s) saved)",
            f"~ aggregate regret: {aggregate['regret']:g} "
            f"({aggregate['relative'] * 100:+.2f}% vs true best) over "
            f"{int(aggregate['instances_known'])} instance(s) with mined "
            f"truth, {int(aggregate['instances_unknown'])} without",
        ]
        return lines


def plan_selection(
    history: LearnedHistory,
    dags: Sequence[ComputationalDag],
    config: ExperimentConfig,
    members: Sequence[str],
    canonical: Dict[str, str],
    top_k: Optional[int] = None,
    selector: str = "greedy",
    seed: int = 0,
) -> SelectionReport:
    """Decide, per instance, which ``top_k`` members to run.

    ``canonical`` maps every member to its canonical spec (the portfolio
    already resolved it); the ranking happens over canonical specs (what
    the history stores) and is mapped back to member names.  The chosen
    subset preserves the portfolio's member order, so ``top_k >=
    len(members)`` reproduces the exhaustive job list exactly.
    """
    if selector not in SELECTORS:
        raise ConfigurationError(
            f"unknown selector {selector!r}; available: {SELECTORS}"
        )
    members = list(members)
    k = len(members) if top_k is None else int(top_k)
    if k < 1:
        raise ConfigurationError(f"top_k must be >= 1 (got {k})")
    # first member of a canonical spec represents it in the ranking (two
    # spellings of one pipeline are one candidate, like one cache entry)
    spec_owner: Dict[str, str] = {}
    for member in members:
        spec_owner.setdefault(canonical[member], member)
    candidates = list(spec_owner)
    report = SelectionReport(
        selector=selector,
        top_k=min(k, len(members)),
        seed=seed,
        history_digest=history.digest(),
    )
    for dag in dags:
        features = instance_features(dag, config)
        ranked_specs = rank_members(
            history, features, candidates, selector=selector, seed=seed
        )
        ranking = [spec_owner[spec] for spec in ranked_specs]
        keep = set(ranking[:k])
        # duplicate spellings ride along with their canonical representative
        chosen = [m for m in members if spec_owner[canonical[m]] in keep]
        skipped = [m for m in members if m not in chosen]
        entry = history.instances.get(dag.name)
        for member in skipped:
            if entry is not None:
                observation = entry.members.get(canonical[member])
                if observation is not None:
                    report.predicted_calls_saved += observation.solver_calls
        report.selections.append(
            InstanceSelection(
                instance=dag.name,
                ranking=ranking,
                chosen=chosen,
                skipped=skipped,
                true_best=history.best_cost(dag.name),
            )
        )
    return report
