"""Figure-4-style per-member cost-distribution reporting from a history.

The paper's Figure 4 characterizes each configuration by the *distribution*
of its cost ratios over the benchmark set, not by a single mean.  The mined
:class:`~repro.learn.history.LearnedHistory` holds exactly the data needed
to reproduce that view for portfolio members: per instance, every spec's
cost relative to the instance's true best.  ``repro learn report`` renders
the distribution (min / p25 / median / p75 / max, nearest-rank) plus win
counts and mean solver calls per canonical spec.

Everything is a pure function of the history: the JSON form is byte-stable
(sorted keys, rounded floats) and the text table derives from it.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from repro.learn.history import LearnedHistory


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (deterministic)."""
    if not sorted_values:
        return 0.0
    rank = int(q * len(sorted_values) + 99) // 100  # ceil(q * n / 100)
    rank = min(len(sorted_values), max(1, rank))
    return sorted_values[rank - 1]


def member_distributions(history: LearnedHistory) -> Dict[str, Dict[str, float]]:
    """Per-spec distribution of relative costs across mined instances.

    Relative cost is ``cost / true best`` within each instance (1.0 = the
    spec achieved the instance's best mined cost); ``wins`` counts exact
    ties with the best.  Specs are keyed canonically and sorted, floats are
    rounded to 9 decimals: the dict renders byte-stably.
    """
    ratios: Dict[str, List[float]] = {}
    wins: Dict[str, int] = {}
    calls: Dict[str, List[float]] = {}
    for name in sorted(history.instances):
        entry = history.instances[name]
        best = entry.best_cost
        if not math.isfinite(best):
            continue
        for spec in sorted(entry.members):
            observation = entry.members[spec]
            ratios.setdefault(spec, []).append(
                observation.cost / best if best > 0 else 1.0
            )
            wins[spec] = wins.get(spec, 0) + (
                1 if observation.cost == best else 0
            )
            calls.setdefault(spec, []).append(observation.solver_calls)
    out: Dict[str, Dict[str, float]] = {}
    for spec in sorted(ratios):
        values = sorted(ratios[spec])
        out[spec] = {
            "instances": float(len(values)),
            "wins": float(wins[spec]),
            "rel_cost_min": round(values[0], 9),
            "rel_cost_p25": round(_percentile(values, 25), 9),
            "rel_cost_median": round(_percentile(values, 50), 9),
            "rel_cost_p75": round(_percentile(values, 75), 9),
            "rel_cost_max": round(values[-1], 9),
            "mean_solver_calls": round(
                sum(calls[spec]) / len(calls[spec]), 9
            ),
        }
    return out


def distributions_to_json(history: LearnedHistory) -> str:
    """Byte-stable JSON rendering of :func:`member_distributions`."""
    payload = {
        "history_digest": history.digest(),
        "instances": len(history.instances),
        "members": member_distributions(history),
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def format_distribution_table(history: LearnedHistory) -> str:
    """Fixed-width text table of the per-member cost distributions."""
    distributions = member_distributions(history)
    header = (
        f"{'member (canonical spec)':<44s} {'inst':>4s} {'wins':>4s} "
        f"{'min':>7s} {'p25':>7s} {'med':>7s} {'p75':>7s} {'max':>7s} "
        f"{'calls':>7s}"
    )
    lines = [header, "-" * len(header)]
    for spec, row in distributions.items():
        lines.append(
            f"{spec:<44s} {int(row['instances']):>4d} {int(row['wins']):>4d} "
            f"{row['rel_cost_min']:>7.3f} {row['rel_cost_p25']:>7.3f} "
            f"{row['rel_cost_median']:>7.3f} {row['rel_cost_p75']:>7.3f} "
            f"{row['rel_cost_max']:>7.3f} {row['mean_solver_calls']:>7.1f}"
        )
    if not distributions:
        lines.append("(empty history: no member observations mined)")
    lines.append(
        f"relative member cost over {len(history.instances)} mined "
        f"instance(s); 1.000 = the instance's best mined cost"
    )
    return "\n".join(lines)
