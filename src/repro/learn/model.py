"""Dependency-free selectors over a mined :class:`LearnedHistory`.

Two models, both **pure functions of (history, instance features, seed)**:
no global state, no randomness beyond the explicit seed (which only breaks
otherwise-exact ties, see below), no wall clock.  Determinism is what makes
learned selection *cache-key-safe*: the adaptive portfolio submits exactly
the jobs the ranking picks, so two runs with the same history pick the same
jobs and therefore share the same content-hash cache entries.

* :func:`rank_greedy` — a per-bucket epsilon-free greedy bandit: within the
  instance's feature bucket, specs are ordered by mean relative cost
  (exploit), with mean solver calls as the tie-breaker (prefer the cheaper
  spec on equal quality) and the canonical spec name as the final total
  order.  Unseen specs rank after seen ones.  Falling back from an unseen
  bucket to the global table is the only "exploration" — no epsilon, no
  randomness.
* :func:`rank_knn` — k-nearest-neighbour over the mined feature vectors:
  the ``k`` closest instances (normalized Euclidean distance, ties broken
  by instance name) vote with their relative costs.

Both return a ranking of the *caller's* candidate list (best first); the
portfolio keeps its own member order when materializing the chosen subset.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.learn.features import FeatureVector, feature_bucket
from repro.learn.history import BucketStats, LearnedHistory

#: Selector names accepted by :func:`rank_members`.
SELECTORS = ("greedy", "knn")


def _order(
    candidates: Sequence[str],
    keyed: Dict[str, Tuple[float, float]],
    seed: int,
) -> List[str]:
    """Total order over candidates from (quality, cost) keys.

    Candidates without a key (never observed) rank after all observed ones,
    in their original order.  The seed only rotates the order of *exactly
    tied* observed candidates, so any seed yields the same set for any
    ``top_k`` cut — selection quality never depends on it.
    """
    observed = [c for c in candidates if c in keyed]
    unobserved = [c for c in candidates if c not in keyed]
    groups: Dict[Tuple[float, float], List[str]] = {}
    for candidate in observed:
        groups.setdefault(keyed[candidate], []).append(candidate)
    ranked: List[str] = []
    for key in sorted(groups):
        group = sorted(groups[key])
        pivot = seed % len(group)
        ranked.extend(group[pivot:] + group[:pivot])
    return ranked + unobserved


def rank_greedy(
    history: LearnedHistory,
    features: FeatureVector,
    candidates: Sequence[str],
    seed: int = 0,
) -> List[str]:
    """Per-bucket greedy ranking of canonical ``candidates`` (best first)."""
    table = history.bucket_table()
    bucket = table.get(feature_bucket(features))
    if not bucket:
        # unseen bucket: fall back to the global aggregate over all buckets
        bucket = {}
        for key in sorted(table):
            for spec in sorted(table[key]):
                stats = table[key][spec]
                merged = bucket.setdefault(spec, BucketStats())
                merged.count += stats.count
                merged.wins += stats.wins
                merged.rel_cost_sum += stats.rel_cost_sum
                merged.solver_calls_sum += stats.solver_calls_sum
    keyed = {
        spec: (
            round(bucket[spec].mean_rel_cost, 9),
            round(bucket[spec].mean_solver_calls, 9),
        )
        for spec in candidates
        if spec in bucket
    }
    return _order(candidates, keyed, seed)


def rank_knn(
    history: LearnedHistory,
    features: FeatureVector,
    candidates: Sequence[str],
    seed: int = 0,
    k: int = 5,
) -> List[str]:
    """k-NN ranking: the nearest mined instances vote with relative costs."""
    names = sorted(history.instances)
    if not names:
        return list(candidates)
    # per-feature scale from the history (max magnitude; 1.0 when flat) so
    # large-magnitude features (total_work) don't drown the small ones
    width = len(features.values)
    scales = [1.0] * width
    for name in names:
        vector = history.instances[name].features
        for i in range(min(width, len(vector))):
            scales[i] = max(scales[i], abs(vector[i]))
    target = [value / scales[i] for i, value in enumerate(features.values)]
    distances: List[Tuple[float, str]] = []
    for name in names:
        vector = history.instances[name].features
        if len(vector) != width:
            continue
        gap = 0.0
        for i in range(width):
            diff = vector[i] / scales[i] - target[i]
            gap += diff * diff
        distances.append((round(math.sqrt(gap), 9), name))
    distances.sort()  # ties resolved by instance name: deterministic
    neighbours = distances[: max(1, int(k))]
    votes: Dict[str, List[float]] = {}
    calls: Dict[str, List[float]] = {}
    for _, name in neighbours:
        entry = history.instances[name]
        best = entry.best_cost
        if not math.isfinite(best):
            continue
        for spec in sorted(entry.members):
            observation = entry.members[spec]
            votes.setdefault(spec, []).append(
                observation.cost / best if best > 0 else 1.0
            )
            calls.setdefault(spec, []).append(observation.solver_calls)
    keyed = {
        spec: (
            round(sum(votes[spec]) / len(votes[spec]), 9),
            round(sum(calls[spec]) / len(calls[spec]), 9),
        )
        for spec in candidates
        if spec in votes
    }
    return _order(candidates, keyed, seed)


def rank_members(
    history: LearnedHistory,
    features: FeatureVector,
    candidates: Sequence[str],
    selector: str = "greedy",
    seed: int = 0,
) -> List[str]:
    """Rank canonical ``candidates`` for an instance (best first)."""
    if selector == "greedy":
        return rank_greedy(history, features, candidates, seed=seed)
    if selector == "knn":
        return rank_knn(history, features, candidates, seed=seed)
    raise ConfigurationError(
        f"unknown selector {selector!r}; available: {SELECTORS}"
    )
