"""Simple lower bounds on MBSP schedule costs.

These bounds are used in tests (no scheduler may beat them), in the theory
benchmark (to report optimality gaps), and as sanity checks in the experiment
harness.  They are deliberately elementary — the point of the paper is that
good *upper* bounds require solving the holistic problem.
"""

from __future__ import annotations

from typing import Dict

from repro.dag.analysis import critical_path_length
from repro.model.instance import MbspInstance


def compute_lower_bound(instance: MbspInstance) -> float:
    """Work/critical-path lower bound on the compute part of any schedule.

    Every non-source node must be computed at least once, so the compute time
    of the busiest processor is at least ``total_work / P``; it is also at
    least the weighted critical path (chains cannot be parallelised).
    """
    dag = instance.dag
    return max(
        dag.total_work() / instance.num_processors,
        critical_path_length(dag),
    )


def io_lower_bound(instance: MbspInstance) -> float:
    """I/O lower bound: inputs must be loaded and outputs saved at least once.

    Every source value is needed by at least one processor and only exists in
    slow memory initially, and every *computed* sink value must be written
    back, each at cost ``g * mu`` (a sink that is itself a source already
    lives in slow memory and needs no save).  (Sharper red-blue pebbling
    bounds exist for specific DAGs; this generic bound suffices for validity
    checks.)
    """
    dag = instance.dag
    g = instance.g
    loads = sum(dag.mu(v) for v in dag.sources() if dag.children(v))
    saves = sum(dag.mu(v) for v in dag.sinks() if not dag.is_source(v))
    return g * (loads + saves)


def minimum_supersteps(instance: MbspInstance) -> int:
    """Lower bound on the number of (non-empty) supersteps of any schedule.

    Loads land in cache only at the *end* of a superstep (the load phase
    follows the compute phase), and caches start empty, so computing any
    node — some computable node always has only source parents — requires a
    load in a strictly earlier superstep: at least two supersteps.  A DAG
    with no computable nodes needs none.
    """
    dag = instance.dag
    return 2 if any(not dag.is_source(v) for v in dag.nodes) else 0


def synchronous_lower_bound(instance: MbspInstance) -> float:
    """Combined lower bound on the synchronous cost of any valid schedule.

    The compute and I/O terms of the synchronous cost are additive across
    supersteps and each is individually bounded from below; every required
    superstep (see :func:`minimum_supersteps`) contributes one ``L``.
    """
    return compute_lower_bound(instance) + io_lower_bound(instance) / max(
        instance.num_processors, 1
    ) + instance.L * minimum_supersteps(instance)


def asynchronous_lower_bound(instance: MbspInstance) -> float:
    """Lower bound on the asynchronous (makespan) cost of any valid schedule."""
    dag = instance.dag
    per_processor_io = io_lower_bound(instance) / max(instance.num_processors, 1)
    return max(compute_lower_bound(instance), per_processor_io)


def instance_lower_bound(instance: MbspInstance, synchronous: bool = True) -> float:
    """The lower bound matching the cost model used (sync or async).

    This is the bound the portfolio's bound-aware pruning compares baseline
    costs against: a baseline within the configured gap of this value is
    provably near-optimal and the ILP solve can be skipped.
    """
    if synchronous:
        return synchronous_lower_bound(instance)
    return asynchronous_lower_bound(instance)


def lower_bound_report(instance: MbspInstance) -> Dict[str, float]:
    """All bounds in one dictionary (used by the theory benchmark)."""
    return {
        "compute": compute_lower_bound(instance),
        "io": io_lower_bound(instance),
        "synchronous": synchronous_lower_bound(instance),
        "asynchronous": asynchronous_lower_bound(instance),
    }
