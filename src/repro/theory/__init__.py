"""Executable versions of the paper's theoretical constructions and bounds."""

from repro.theory.constructions import (
    TwoStageGapConstruction,
    chain_per_processor_bsp_schedule,
    optimal_gap_schedule,
    partition_reduction_dag,
    sync_async_gap_construction,
    sync_vs_async_small_gap_construction,
    two_stage_gap_construction,
    zipper_gadget,
)
from repro.theory.bounds import (
    asynchronous_lower_bound,
    compute_lower_bound,
    instance_lower_bound,
    io_lower_bound,
    lower_bound_report,
    minimum_supersteps,
    synchronous_lower_bound,
)

__all__ = [
    "TwoStageGapConstruction",
    "chain_per_processor_bsp_schedule",
    "optimal_gap_schedule",
    "partition_reduction_dag",
    "sync_async_gap_construction",
    "sync_vs_async_small_gap_construction",
    "two_stage_gap_construction",
    "zipper_gadget",
    "asynchronous_lower_bound",
    "compute_lower_bound",
    "instance_lower_bound",
    "io_lower_bound",
    "lower_bound_report",
    "minimum_supersteps",
    "synchronous_lower_bound",
]
