"""Gadget constructions from the paper's theoretical results.

These DAG families are used in the proofs of the paper and serve three
purposes in this repository: they make the theoretical statements executable
(property-based tests check the claimed cost gaps), they provide adversarial
workloads for the schedulers, and the theory benchmark regenerates the
Figure 1 / Figure 2 comparison of the two-stage approach versus the optimum.

* :func:`two_stage_gap_construction` — Theorem 4.1: two source groups and two
  chains with alternating group dependencies; the best BSP-first schedule is
  forced into ``d * m`` I/O operations while the MBSP optimum needs only
  ``2 m + O(d)``.
* :func:`partition_reduction_dag` — Lemma 5.1: memory management with general
  weights encodes number partitioning.
* :func:`sync_async_gap_construction` — Lemma 5.3: optimising the
  asynchronous cost can be a factor ``P/2`` worse synchronously.
* :func:`sync_vs_async_small_gap_construction` — Lemma 5.4: optimising the
  synchronous cost can be a factor 4/3 worse asynchronously.
* :func:`zipper_gadget` — Lemma 6.1: an ILP schedule with empty steps can
  still be suboptimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dag.graph import ComputationalDag
from repro.model.architecture import MbspArchitecture
from repro.model.instance import MbspInstance
from repro.model.pebbling import compute_op, delete_op
from repro.model.schedule import MbspSchedule, Superstep


# ----------------------------------------------------------------------
# Theorem 4.1 — the two-stage approach can be a linear factor off
# ----------------------------------------------------------------------
@dataclass
class TwoStageGapConstruction:
    """The Theorem 4.1 gadget together with handles to its node groups."""

    dag: ComputationalDag
    group1: List[str]
    group2: List[str]
    chain_v: List[str]
    chain_u: List[str]
    d: int
    m: int

    def instance(self, g: float = 1.0, L: float = 0.0) -> MbspInstance:
        """The instance used in the proof: P=2 and cache size ``d + 2``."""
        arch = MbspArchitecture(num_processors=2, cache_size=self.d + 2, g=g, L=L)
        return MbspInstance(dag=self.dag, architecture=arch)


def two_stage_gap_construction(d: int, m: int) -> TwoStageGapConstruction:
    """Build the Figure 1 construction with group size ``d`` and chain length ``m``.

    Two groups ``H1``, ``H2`` of ``d`` source nodes each, and two chains
    ``v_1..v_m`` and ``u_1..u_m``.  Chain node ``v_i`` additionally reads all
    of ``H2`` when ``i`` is odd and all of ``H1`` when ``i`` is even; ``u_i``
    reads the other group.  All weights are 1.
    """
    if d < 1 or m < 1:
        raise ValueError("d and m must be at least 1")
    dag = ComputationalDag(name=f"two_stage_gap_d{d}_m{m}")
    group1 = [f"h1_{i}" for i in range(d)]
    group2 = [f"h2_{i}" for i in range(d)]
    for h in group1 + group2:
        dag.add_node(h, omega=1.0, mu=1.0)
    chain_v = [f"v_{i}" for i in range(1, m + 1)]
    chain_u = [f"u_{i}" for i in range(1, m + 1)]
    for node in chain_v + chain_u:
        dag.add_node(node, omega=1.0, mu=1.0)
    for i in range(1, m):
        dag.add_edge(chain_v[i - 1], chain_v[i])
        dag.add_edge(chain_u[i - 1], chain_u[i])
    for i in range(1, m + 1):
        # odd i: u_i reads H1 and v_i reads H2; even i: the other way round
        v_sources = group2 if i % 2 == 1 else group1
        u_sources = group1 if i % 2 == 1 else group2
        for h in v_sources:
            dag.add_edge(h, chain_v[i - 1])
        for h in u_sources:
            dag.add_edge(h, chain_u[i - 1])
    return TwoStageGapConstruction(
        dag=dag, group1=group1, group2=group2, chain_v=chain_v, chain_u=chain_u, d=d, m=m
    )


def optimal_gap_schedule(construction: TwoStageGapConstruction, g: float = 1.0, L: float = 0.0) -> MbspSchedule:
    """Hand-built near-optimal MBSP schedule for the Theorem 4.1 gadget.

    Processor 0 computes all children of ``H1`` and processor 1 all children
    of ``H2`` (Figure 2, right): each processor keeps its own group cached the
    whole time and the two processors exchange exactly one chain value per
    superstep through slow memory, so the total I/O is ``2m + 2d + O(1)``.
    """
    instance = construction.instance(g=g, L=L)
    schedule = MbspSchedule(instance)
    m = construction.m

    # superstep 0: processor 0 loads H1, processor 1 loads H2
    step = schedule.new_superstep()
    step[0].load_phase.extend(construction.group1)
    step[1].load_phase.extend(construction.group2)

    for i in range(1, m + 1):
        v_node = construction.chain_v[i - 1]
        u_node = construction.chain_u[i - 1]
        # odd i: u_i reads H1 (processor 0), v_i reads H2 (processor 1);
        # even i: the assignments swap — every chain node's predecessor lives
        # on the other processor, so one value is exchanged per superstep
        if i % 2 == 1:
            assignment = {0: u_node, 1: v_node}
        else:
            assignment = {0: v_node, 1: u_node}
        prev_nodes = (
            {0: None, 1: None}
            if i == 1
            else {
                p: (construction.chain_v[i - 2] if assignment[p] == construction.chain_v[i - 1] else construction.chain_u[i - 2])
                for p in (0, 1)
            }
        )
        step = schedule.new_superstep()
        for p in (0, 1):
            own = assignment[p]
            partner = assignment[1 - p]
            step[p].compute_phase.append(compute_op(own))
            step[p].save_phase.append(own)
            if i < m:
                # the freshly computed value is only needed by the other
                # processor, and the consumed predecessor is dead: evict both
                # and fetch the partner's value for the next superstep
                step[p].delete_phase.append(own)
                if prev_nodes[p] is not None:
                    step[p].delete_phase.append(prev_nodes[p])
                step[p].load_phase.append(partner)
    return schedule


def chain_per_processor_bsp_schedule(construction: TwoStageGapConstruction):
    """The BSP-optimal first-stage schedule of Theorem 4.1 (Figure 2, left).

    Chain ``v`` is computed entirely on processor 0 and chain ``u`` entirely
    on processor 1 — the communication-free assignment that any BSP-only
    scheduler prefers, but which forces the memory-management stage into
    ``d * m`` load operations because the cache cannot hold both groups.
    """
    from repro.bsp.schedule import BspSchedule

    bsp = BspSchedule(construction.dag, 2)
    for i, node in enumerate(construction.chain_v):
        bsp.assign(node, 0, 0, order=i)
    for i, node in enumerate(construction.chain_u):
        bsp.assign(node, 1, 0, order=i)
    bsp.validate()
    return bsp


# ----------------------------------------------------------------------
# Lemma 5.1 — memory management with weights encodes number partitioning
# ----------------------------------------------------------------------
def partition_reduction_dag(weights: Sequence[float]) -> Tuple[ComputationalDag, float]:
    """The Lemma 5.1 reduction DAG for a number-partitioning instance.

    Nodes ``v_1..v_m`` (memory weights ``a_i``) and ``v'`` (weight ``alpha/2``)
    are sources; three compute nodes ``c1, c2, c3`` require, in order, all of
    ``v_1..v_m``, then ``v'``, then all of ``v_1..v_m`` again.  Returns the
    DAG and the cache size ``alpha`` used in the reduction.
    """
    weights = list(weights)
    if not weights:
        raise ValueError("need at least one weight")
    alpha = float(sum(weights))
    dag = ComputationalDag(name=f"partition_reduction_{len(weights)}")
    value_nodes = []
    for i, w in enumerate(weights):
        dag.add_node(f"v_{i}", omega=1.0, mu=float(w))
        value_nodes.append(f"v_{i}")
    dag.add_node("v_prime", omega=1.0, mu=alpha / 2.0)
    dag.add_node("c1", omega=1.0, mu=0.0)
    dag.add_node("c2", omega=1.0, mu=0.0)
    dag.add_node("c3", omega=1.0, mu=0.0)
    for v in value_nodes:
        dag.add_edge(v, "c1")
        dag.add_edge(v, "c3")
    dag.add_edge("v_prime", "c2")
    # enforce the order c1 -> c2 -> c3
    dag.add_edge("c1", "c2")
    dag.add_edge("c2", "c3")
    return dag, alpha


# ----------------------------------------------------------------------
# Lemma 5.3 — async-optimal schedules can be P/2 worse synchronously
# ----------------------------------------------------------------------
def sync_async_gap_construction(num_processors: int, heavy_weight: float = 100.0) -> ComputationalDag:
    """The Lemma 5.3 gadget for an even number of processors.

    For every processor pair ``i`` there are two parallel chains of length
    ``P/2``; exactly the ``i``-th position of pair ``i`` carries the heavy
    compute weight ``Z``, every other node weight 1.  A single artificial
    source feeds all chain heads.
    """
    if num_processors < 2 or num_processors % 2 != 0:
        raise ValueError("num_processors must be an even integer >= 2")
    half = num_processors // 2
    dag = ComputationalDag(name=f"sync_async_gap_P{num_processors}")
    dag.add_node("s", omega=1.0, mu=1.0)
    for i in range(half):
        prev_u = prev_v = "s"
        for j in range(half):
            weight = heavy_weight if i == j else 1.0
            u = f"u_{i}_{j}"
            v = f"v_{i}_{j}"
            dag.add_node(u, omega=weight, mu=1.0)
            dag.add_node(v, omega=weight, mu=1.0)
            dag.add_edge(prev_u, u)
            dag.add_edge(prev_v, v)
            if j > 0:
                # the Lemma's construction also crosses the two chains of a pair
                dag.add_edge(f"u_{i}_{j-1}", v)
                dag.add_edge(f"v_{i}_{j-1}", u)
            prev_u, prev_v = u, v
    return dag


# ----------------------------------------------------------------------
# Lemma 5.4 — sync-optimal schedules can be 4/3 worse asynchronously
# ----------------------------------------------------------------------
def sync_vs_async_small_gap_construction(heavy_weight: float = 100.0) -> ComputationalDag:
    """The Lemma 5.4 gadget (P=5): two heavy diamonds plus a fan-out and an
    isolated node, all hanging off an artificial source."""
    Z = float(heavy_weight)
    dag = ComputationalDag(name="sync_vs_async_small_gap")
    dag.add_node("s", omega=1.0, mu=1.0)
    for name, weight in [
        ("u1", Z - 1), ("u2", Z - 1), ("u3", 2 * Z), ("u4", 2 * Z),
        ("x1", 2 * Z), ("x2", Z - 1), ("x3", Z - 1), ("x4", Z - 1),
        ("w", Z - 1),
    ]:
        dag.add_node(name, omega=weight, mu=1.0)
    for tail, head in [
        ("s", "u1"), ("s", "u2"), ("s", "x1"), ("s", "w"),
        ("u1", "u3"), ("u1", "u4"), ("u2", "u3"), ("u2", "u4"),
        ("x1", "x2"), ("x1", "x3"), ("x1", "x4"),
    ]:
        dag.add_edge(tail, head)
    return dag


# ----------------------------------------------------------------------
# Lemma 6.1 — empty ILP steps do not certify optimality
# ----------------------------------------------------------------------
def zipper_gadget(d: int, m: int) -> ComputationalDag:
    """The modified zipper gadget of Lemma 6.1 (single processor, r = 4).

    Two chains ``a_1..a_d`` and ``b_1..b_d`` feed a long chain
    ``c_0..c_m``; chain node ``c_i`` additionally reads ``a_d`` for odd ``i``
    and ``b_d`` for even ``i >= 2``; a single source ``w`` feeds every node.
    Recomputing one of the short chains can replace an I/O step when ``g`` is
    large, which requires extra (non-mergeable) time steps.
    """
    if d < 2 or m < 1:
        raise ValueError("d must be >= 2 and m >= 1")
    dag = ComputationalDag(name=f"zipper_d{d}_m{m}")
    dag.add_node("w", omega=1.0, mu=1.0)
    for prefix in ("a", "b"):
        prev = "w"
        for i in range(1, d + 1):
            node = f"{prefix}_{i}"
            dag.add_node(node, omega=1.0, mu=1.0)
            dag.add_edge(prev, node)
            if prev != "w":
                pass
            dag.add_edge("w", node)
            prev = node
    prev = None
    for i in range(0, m + 1):
        node = f"c_{i}"
        dag.add_node(node, omega=1.0, mu=1.0)
        dag.add_edge("w", node)
        if i == 0:
            dag.add_edge(f"a_{d}", node)
            dag.add_edge(f"b_{d}", node)
        elif i % 2 == 1:
            dag.add_edge(f"a_{d}", node)
        else:
            dag.add_edge(f"b_{d}", node)
        if prev is not None:
            dag.add_edge(prev, node)
        prev = node
    return dag
