"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for malformed computational DAGs (cycles, unknown nodes, ...)."""


class CycleError(GraphError):
    """Raised when a graph that must be acyclic contains a cycle."""


class ScheduleError(ReproError):
    """Raised for structurally malformed schedules."""


class InvalidScheduleError(ScheduleError):
    """Raised when a schedule violates the MBSP pebbling or memory rules."""


class InfeasibleInstanceError(ReproError):
    """Raised when an instance admits no valid schedule (e.g. ``r < r0``)."""


class IlpError(ReproError):
    """Raised for errors in ILP model construction."""


class SolverError(IlpError):
    """Raised when an ILP solver backend fails unexpectedly."""


class InfeasibleModelError(SolverError):
    """Raised when an ILP model is proven infeasible by the solver."""


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied configuration values."""
