"""Command-line interface for the MBSP scheduling library.

Three sub-commands are provided:

* ``schedule``   — generate (or load) a DAG, schedule it with a chosen method
  and print costs, validation results and an optional schedule rendering;
* ``dataset``    — list the benchmark datasets (instance names, sizes, r0);
* ``experiment`` — run one of the paper's table experiments and print the
  comparison against the paper's reference values.

Examples
--------
```
python -m repro.cli schedule --generator spmv --size 5 --processors 2 --method ilp --time-limit 10
python -m repro.cli schedule --dag-file my_graph.json --processors 4 --method baseline --render
python -m repro.cli dataset --which tiny --scale default
python -m repro.cli experiment --table 1 --limit 3 --time-limit 5
```
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dag import io as dag_io
from repro.dag.analysis import assign_random_memory_weights, dag_statistics
from repro.dag.generators import (
    bicgstab,
    conjugate_gradient,
    iterated_spmv,
    kmeans,
    knn_iteration,
    pregel,
    random_layered_dag,
    simple_pagerank,
    snni_graphchallenge,
    spmv,
)
from repro.dag.graph import ComputationalDag
from repro.ilp import SolverOptions
from repro.model import (
    asynchronous_cost,
    make_instance,
    render_gantt,
    render_superstep_table,
    synchronous_cost,
    validate_schedule,
)
from repro.core import MbspIlpConfig, schedule_mbsp

GENERATORS = {
    "spmv": lambda size, seed: spmv(size, seed=seed),
    "iterated_spmv": lambda size, seed: iterated_spmv(size, 2, seed=seed),
    "cg": lambda size, seed: conjugate_gradient(max(size // 2, 2), 1, seed=seed),
    "knn": lambda size, seed: knn_iteration(size, 2, seed=seed),
    "bicgstab": lambda size, seed: bicgstab(iterations=max(size // 4, 1)),
    "kmeans": lambda size, seed: kmeans(max(size // 4, 2), 2, 2),
    "pregel": lambda size, seed: pregel(max(size // 4, 2), 3),
    "pagerank": lambda size, seed: simple_pagerank(max(size // 2, 2), 4, seed=seed),
    "snni": lambda size, seed: snni_graphchallenge(max(size // 2, 2), 4, seed=seed),
    "random": lambda size, seed: random_layered_dag(4, max(size // 4, 2), seed=seed),
}


def _build_dag(args: argparse.Namespace) -> ComputationalDag:
    if args.dag_file:
        return dag_io.load(args.dag_file)
    if args.generator not in GENERATORS:
        raise SystemExit(
            f"unknown generator {args.generator!r}; available: {sorted(GENERATORS)}"
        )
    dag = GENERATORS[args.generator](args.size, args.seed)
    assign_random_memory_weights(dag, low=1, high=5, seed=args.seed)
    return dag


def _cmd_schedule(args: argparse.Namespace) -> int:
    dag = _build_dag(args)
    stats = dag_statistics(dag)
    print(f"DAG {dag.name}: {int(stats['nodes'])} nodes, {int(stats['edges'])} edges, "
          f"r0 = {stats['r0']:g}")
    instance = make_instance(
        dag,
        num_processors=args.processors,
        cache_factor=args.cache_factor,
        g=args.g,
        L=args.latency,
    )
    config = MbspIlpConfig(
        synchronous=not args.asynchronous,
        solver_options=SolverOptions(time_limit=args.time_limit),
    )
    schedule = schedule_mbsp(instance, method=args.method, config=config,
                             synchronous=not args.asynchronous, seed=args.seed)
    validate_schedule(schedule, require_all_computed=False)
    print(f"method: {args.method}   supersteps: {schedule.num_supersteps}")
    print(f"synchronous cost : {synchronous_cost(schedule):.2f}")
    print(f"asynchronous cost: {asynchronous_cost(schedule):.2f}")
    if args.render:
        print()
        print(render_superstep_table(schedule))
        print()
        print(render_gantt(schedule))
    if args.output:
        from repro.model import save_schedule

        save_schedule(schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import small_dataset_specs, tiny_dataset_specs

    specs = tiny_dataset_specs(args.scale) if args.which == "tiny" else small_dataset_specs(args.scale)
    print(f"{args.which} dataset ({args.scale} scale): {len(specs)} instances")
    header = f"{'instance':<20s} {'family':<8s} {'nodes':>6s} {'edges':>6s} {'r0':>5s}"
    print(header)
    print("-" * len(header))
    for spec in specs:
        dag = spec.build()
        stats = dag_statistics(dag)
        print(f"{spec.name:<20s} {spec.family:<8s} {int(stats['nodes']):>6d} "
              f"{int(stats['edges']):>6d} {stats['r0']:>5.0f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import paper_reference
    from repro.experiments.reporting import format_results_table
    from repro.experiments.runner import ExperimentConfig
    from repro.experiments.tables import table1, table2, table4

    config = ExperimentConfig(ilp_time_limit=args.time_limit)
    if args.table == 1:
        results = table1(config=config, limit=args.limit)
        print(format_results_table(results, "Table 1", paper_reference.TABLE1))
    elif args.table == 2:
        results = table2(limit=args.limit,
                         config=ExperimentConfig(cache_factor=5.0, ilp_time_limit=args.time_limit))
        print(format_results_table(results, "Table 2", paper_reference.TABLE2))
    elif args.table == 4:
        by_config = table4(base_config=config, limit=args.limit)
        for name, results in by_config.items():
            ref = paper_reference.TABLE4.get(name, paper_reference.TABLE1)
            print(format_results_table(results, f"Table 4 [{name}]", ref))
            print()
    else:
        raise SystemExit("only tables 1, 2 and 4 are runnable from the CLI")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sched = sub.add_parser("schedule", help="schedule one DAG")
    sched.add_argument("--generator", default="spmv", help=f"workload family ({sorted(GENERATORS)})")
    sched.add_argument("--size", type=int, default=5, help="generator size parameter")
    sched.add_argument("--seed", type=int, default=0)
    sched.add_argument("--dag-file", default=None, help="load the DAG from a .json/.dag file instead")
    sched.add_argument("--processors", "-p", type=int, default=2)
    sched.add_argument("--cache-factor", type=float, default=3.0, help="cache size as a multiple of r0")
    sched.add_argument("--g", type=float, default=1.0)
    sched.add_argument("--latency", "-L", type=float, default=10.0)
    sched.add_argument("--method", default="baseline",
                       choices=["baseline", "practical", "ilp", "divide-and-conquer"])
    sched.add_argument("--time-limit", type=float, default=10.0)
    sched.add_argument("--asynchronous", action="store_true", help="optimise the asynchronous cost")
    sched.add_argument("--render", action="store_true", help="print superstep table and Gantt chart")
    sched.add_argument("--output", default=None, help="write the schedule to a JSON file")
    sched.set_defaults(func=_cmd_schedule)

    data = sub.add_parser("dataset", help="list the benchmark datasets")
    data.add_argument("--which", choices=["tiny", "small"], default="tiny")
    data.add_argument("--scale", choices=["default", "paper"], default="default")
    data.set_defaults(func=_cmd_dataset)

    exp = sub.add_parser("experiment", help="run one of the paper's table experiments")
    exp.add_argument("--table", type=int, choices=[1, 2, 4], default=1)
    exp.add_argument("--limit", type=int, default=None, help="only the first N instances")
    exp.add_argument("--time-limit", type=float, default=5.0)
    exp.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
