"""Command-line interface for the MBSP scheduling library.

Five sub-commands are provided:

* ``schedule``   — generate (or load) a DAG, schedule it with a chosen method
  and print costs, validation results and an optional schedule rendering;
* ``refine``     — schedule a DAG and post-optimize the schedule with the
  local-search refinement engine, printing the before/after costs and the
  accepted-move trace;
* ``dataset``    — list the benchmark datasets (instance names, sizes, r0);
* ``experiment`` — run one of the paper's table experiments and print the
  comparison against the paper's reference values;
* ``portfolio``  — run a scheduler portfolio over a dataset and report the
  best pipeline per instance.

Refinement threads through everything: ``schedule --refine`` post-optimizes
the produced schedule, ``experiment --refine`` refines every per-instance
result, and ``portfolio --refine`` adds a ``"<member>+refine"`` variant for
every requested member (``--refine-budget`` bounds the move proposals per
schedule, ``--refine-strategy hill|anneal`` picks the search strategy).

The ``experiment`` and ``portfolio`` commands submit through the parallel
experiment engine: ``--workers N`` fans instances out over N processes,
``--cache-dir DIR`` caches results on disk (a repeated invocation performs
zero solver calls), and ``--results FILE.jsonl`` / ``--resume`` stream
results and resume interrupted sweeps.  Add ``--node-limit`` to bound ILP
solves by branch-and-bound nodes instead of wall clock when a sweep must be
exactly reproducible regardless of machine load.

Every ILP solve goes through the pluggable backend registry
(:mod:`repro.ilp.backends`): ``--backend scipy|bnb|auto`` selects the solver
per command (default: ``REPRO_ILP_BACKEND`` or ``scipy``).  The portfolio
additionally supports bound-aware pruning: ``--prune-gap G`` skips the
warm-started ``ilp`` member's solve when its baseline is provably within
``G`` of the theory lower bound (default ``0.0`` — skip only provably
optimal baselines, which never changes the reported best costs;
``--no-prune`` disables the check).

Examples
--------
```
python -m repro.cli schedule --generator spmv --size 5 --processors 2 --method ilp --time-limit 10
python -m repro.cli schedule --dag-file my_graph.json --processors 4 --method baseline --render
python -m repro.cli refine --generator spmv --size 6 --processors 4 --refine-budget 5000 --trace
python -m repro.cli portfolio --refine --members bspg+clairvoyant,cilk+lru --limit 4
python -m repro.cli dataset --which tiny --scale default
python -m repro.cli experiment --table 1 --limit 3 --time-limit 5 --workers 4 --cache-dir .repro-cache
python -m repro.cli experiment --table 1 --backend auto --workers 4
python -m repro.cli portfolio --members bspg+clairvoyant,cilk+lru,ilp --limit 4 --workers 4
python -m repro.cli portfolio --backend auto --prune-gap 0.05 --processors 1
```
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dag import io as dag_io
from repro.dag.analysis import assign_random_memory_weights, dag_statistics
from repro.dag.generators import (
    bicgstab,
    conjugate_gradient,
    iterated_spmv,
    kmeans,
    knn_iteration,
    pregel,
    random_layered_dag,
    simple_pagerank,
    snni_graphchallenge,
    spmv,
)
from repro.dag.graph import ComputationalDag
from repro.ilp import SolverOptions
from repro.model import (
    asynchronous_cost,
    make_instance,
    render_gantt,
    render_superstep_table,
    synchronous_cost,
    validate_schedule,
)
from repro.core import MbspIlpConfig, schedule_mbsp

GENERATORS = {
    "spmv": lambda size, seed: spmv(size, seed=seed),
    "iterated_spmv": lambda size, seed: iterated_spmv(size, 2, seed=seed),
    "cg": lambda size, seed: conjugate_gradient(max(size // 2, 2), 1, seed=seed),
    "knn": lambda size, seed: knn_iteration(size, 2, seed=seed),
    "bicgstab": lambda size, seed: bicgstab(iterations=max(size // 4, 1)),
    "kmeans": lambda size, seed: kmeans(max(size // 4, 2), 2, 2),
    "pregel": lambda size, seed: pregel(max(size // 4, 2), 3),
    "pagerank": lambda size, seed: simple_pagerank(max(size // 2, 2), 4, seed=seed),
    "snni": lambda size, seed: snni_graphchallenge(max(size // 2, 2), 4, seed=seed),
    "random": lambda size, seed: random_layered_dag(4, max(size // 4, 2), seed=seed),
}


def _build_dag(args: argparse.Namespace) -> ComputationalDag:
    if args.dag_file:
        return dag_io.load(args.dag_file)
    if args.generator not in GENERATORS:
        raise SystemExit(
            f"unknown generator {args.generator!r}; available: {sorted(GENERATORS)}"
        )
    dag = GENERATORS[args.generator](args.size, args.seed)
    assign_random_memory_weights(dag, low=1, high=5, seed=args.seed)
    return dag


def _refine_config_from_args(args: argparse.Namespace, enabled: bool = True):
    from repro.refine import RefineConfig

    return RefineConfig(
        enabled=enabled,
        budget=args.refine_budget,
        seed=getattr(args, "seed", 0),
        strategy=args.refine_strategy,
    )


def _schedule_dag(args: argparse.Namespace):
    """Shared by ``schedule`` and ``refine``: build DAG, instance, schedule."""
    dag = _build_dag(args)
    stats = dag_statistics(dag)
    print(f"DAG {dag.name}: {int(stats['nodes'])} nodes, {int(stats['edges'])} edges, "
          f"r0 = {stats['r0']:g}")
    instance = make_instance(
        dag,
        num_processors=args.processors,
        cache_factor=args.cache_factor,
        g=args.g,
        L=args.latency,
    )
    config = MbspIlpConfig(
        synchronous=not args.asynchronous,
        solver_options=SolverOptions(time_limit=args.time_limit),
        backend=args.backend,
    )
    schedule = schedule_mbsp(instance, method=args.method, config=config,
                             synchronous=not args.asynchronous, seed=args.seed)
    validate_schedule(schedule, require_all_computed=False)
    return schedule


def _finish_schedule_output(args: argparse.Namespace, schedule) -> int:
    if args.render:
        print()
        print(render_superstep_table(schedule))
        print()
        print(render_gantt(schedule))
    if args.output:
        from repro.model import save_schedule

        save_schedule(schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    schedule = _schedule_dag(args)
    print(f"method: {args.method}   supersteps: {schedule.num_supersteps}")
    print(f"synchronous cost : {synchronous_cost(schedule):.2f}")
    print(f"asynchronous cost: {asynchronous_cost(schedule):.2f}")
    if args.refine:
        from repro.refine import Refiner

        result = Refiner(_refine_config_from_args(args)).refine(
            schedule, synchronous=not args.asynchronous
        )
        schedule = result.schedule
        print(result.summary())
        print(f"refined synchronous cost : {synchronous_cost(schedule):.2f}")
        print(f"refined asynchronous cost: {asynchronous_cost(schedule):.2f}")
    return _finish_schedule_output(args, schedule)


def _cmd_refine(args: argparse.Namespace) -> int:
    from repro.refine import Refiner

    schedule = _schedule_dag(args)
    synchronous = not args.asynchronous
    before = synchronous_cost(schedule) if synchronous else asynchronous_cost(schedule)
    print(f"method: {args.method}   supersteps: {schedule.num_supersteps}   "
          f"cost: {before:.2f}")
    result = Refiner(_refine_config_from_args(args)).refine(
        schedule, synchronous=synchronous
    )
    print(result.summary())
    if args.trace:
        for entry in result.trace:
            print(f"  #{entry.proposal:<6d} {entry.move:<10s} "
                  f"delta={entry.delta:+9.2f} cost={entry.cost:10.2f}")
    schedule = result.schedule
    validate_schedule(schedule, require_all_computed=False)
    print(f"refined supersteps: {schedule.num_supersteps}")
    print(f"refined synchronous cost : {synchronous_cost(schedule):.2f}")
    print(f"refined asynchronous cost: {asynchronous_cost(schedule):.2f}")
    return _finish_schedule_output(args, schedule)


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import small_dataset_specs, tiny_dataset_specs

    specs = tiny_dataset_specs(args.scale) if args.which == "tiny" else small_dataset_specs(args.scale)
    print(f"{args.which} dataset ({args.scale} scale): {len(specs)} instances")
    header = f"{'instance':<20s} {'family':<8s} {'nodes':>6s} {'edges':>6s} {'r0':>5s}"
    print(header)
    print("-" * len(header))
    for spec in specs:
        dag = spec.build()
        stats = dag_statistics(dag)
        print(f"{spec.name:<20s} {spec.family:<8s} {int(stats['nodes']):>6d} "
              f"{int(stats['edges']):>6d} {stats['r0']:>5.0f}")
    return 0


def _make_engine(args: argparse.Namespace):
    from repro.experiments.parallel import ExperimentEngine

    return ExperimentEngine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        results_path=args.results,
        resume=args.resume,
    )


def _backend_kwargs(args: argparse.Namespace) -> dict:
    """``ilp_backend`` keyword for ExperimentConfig when ``--backend`` was
    given (otherwise the config falls back to REPRO_ILP_BACKEND / scipy)."""
    return {"ilp_backend": args.backend} if args.backend else {}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import paper_reference
    from repro.experiments.reporting import format_results_table
    from repro.experiments.runner import ExperimentConfig
    from repro.experiments.tables import table1, table2, table4

    engine = _make_engine(args)
    refine_kwargs = (
        {"refine": _refine_config_from_args(args)} if args.refine else {}
    )
    config = ExperimentConfig(
        ilp_time_limit=args.time_limit,
        ilp_node_limit=args.node_limit,
        **_backend_kwargs(args),
        **refine_kwargs,
    )
    if args.table == 1:
        results = table1(config=config, limit=args.limit, engine=engine)
        print(format_results_table(results, "Table 1", paper_reference.TABLE1))
    elif args.table == 2:
        results = table2(limit=args.limit,
                         config=ExperimentConfig(cache_factor=5.0,
                                                 ilp_time_limit=args.time_limit,
                                                 ilp_node_limit=args.node_limit,
                                                 **_backend_kwargs(args),
                                                 **refine_kwargs),
                         engine=engine)
        print(format_results_table(results, "Table 2", paper_reference.TABLE2))
    elif args.table == 4:
        by_config = table4(base_config=config, limit=args.limit, engine=engine)
        for name, results in by_config.items():
            ref = paper_reference.TABLE4.get(name, paper_reference.TABLE1)
            print(format_results_table(results, f"Table 4 [{name}]", ref))
            print()
    else:
        raise SystemExit("only tables 1, 2 and 4 are runnable from the CLI")
    print(f"engine: {engine.stats.describe()}")
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import small_dataset, tiny_dataset
    from repro.experiments.runner import ExperimentConfig
    from repro.portfolio import DEFAULT_MEMBERS, Portfolio, format_portfolio_table

    from repro.portfolio import REFINE_SUFFIX, is_refined_member

    members = [m.strip() for m in args.members.split(",") if m.strip()] \
        if args.members else list(DEFAULT_MEMBERS)
    if args.refine:
        members += [
            member + REFINE_SUFFIX
            for member in members
            if not is_refined_member(member)
        ]
    dags = (tiny_dataset(scale=args.scale, limit=args.limit) if args.which == "tiny"
            else small_dataset(scale=args.scale, limit=args.limit))
    engine = _make_engine(args)
    # only thread the refine knobs into the config (and therefore into the
    # engine's job hashes) when a refined member actually consumes them, so
    # that runs without refined members keep cache keys independent of the
    # knobs.  (With refined members present the knobs are part of every job
    # hash by design — ExperimentConfig.refine is covered by the content
    # hash so sweeps with different refinement settings never collide.)
    uses_refine = any(is_refined_member(member) for member in members)
    config = ExperimentConfig(
        name="portfolio",
        num_processors=args.processors,
        ilp_time_limit=args.time_limit,
        ilp_node_limit=args.node_limit,
        **({"refine": _refine_config_from_args(args, enabled=False)}
           if uses_refine else {}),
        **_backend_kwargs(args),
    )
    prune_gap = None if args.no_prune else args.prune_gap
    portfolio = Portfolio(config=config, prune_gap=prune_gap)
    rows = portfolio.run(members, dags, engine=engine)
    print(format_portfolio_table(rows))
    wins: dict = {}
    for row in rows:
        winner = row.best_member if row.has_winner else "(none applicable)"
        wins[winner] = wins.get(winner, 0) + 1
    summary = ", ".join(f"{member}: {count}" for member, count in sorted(wins.items()))
    print(f"wins per member: {summary}")
    pruned = sum(row.num_pruned for row in rows)
    if prune_gap is None:
        print("bound pruning: disabled")
    else:
        print(f"bound pruning: {pruned} ILP solve(s) skipped (gap {prune_gap:g})")
    print(f"ilp backend: {config.ilp_backend}")
    print(f"engine: {engine.stats.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_argument(p: argparse.ArgumentParser) -> None:
        from repro.ilp import available_backends

        p.add_argument("--backend", default=None, choices=available_backends(),
                       help="ILP solver backend for every solve of this command "
                            "(default: REPRO_ILP_BACKEND or 'scipy'; 'auto' picks "
                            "per model by size/structure)")

    def add_refine_arguments(p: argparse.ArgumentParser, with_switch: bool = True) -> None:
        from repro.refine import RefineConfig

        defaults = RefineConfig()
        if with_switch:
            p.add_argument("--refine", action="store_true",
                           help="post-optimize schedules with the local-search "
                                "refinement engine (repro.refine)")
        p.add_argument("--refine-budget", type=int, default=defaults.budget,
                       help="max move proposals per refined schedule "
                            f"(default {defaults.budget})")
        p.add_argument("--refine-strategy", choices=["hill", "anneal"],
                       default=defaults.strategy,
                       help="hill climbing (default) or simulated annealing")

    def add_dag_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--generator", default="spmv",
                       help=f"workload family ({sorted(GENERATORS)})")
        p.add_argument("--size", type=int, default=5, help="generator size parameter")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--dag-file", default=None,
                       help="load the DAG from a .json/.dag file instead")
        p.add_argument("--processors", "-p", type=int, default=2)
        p.add_argument("--cache-factor", type=float, default=3.0,
                       help="cache size as a multiple of r0")
        p.add_argument("--g", type=float, default=1.0)
        p.add_argument("--latency", "-L", type=float, default=10.0)
        p.add_argument("--time-limit", type=float, default=10.0)
        add_backend_argument(p)
        p.add_argument("--asynchronous", action="store_true",
                       help="optimise the asynchronous cost")
        p.add_argument("--render", action="store_true",
                       help="print superstep table and Gantt chart")
        p.add_argument("--output", default=None, help="write the schedule to a JSON file")

    sched = sub.add_parser("schedule", help="schedule one DAG")
    add_dag_arguments(sched)
    sched.add_argument("--method", default="baseline",
                       choices=["baseline", "practical", "ilp", "divide-and-conquer"])
    add_refine_arguments(sched)
    sched.set_defaults(func=_cmd_schedule)

    refine = sub.add_parser(
        "refine", help="schedule one DAG and post-optimize it with local search"
    )
    add_dag_arguments(refine)
    refine.add_argument("--method", default="baseline",
                        choices=["baseline", "practical", "ilp", "divide-and-conquer"],
                        help="pipeline producing the schedule to refine")
    add_refine_arguments(refine, with_switch=False)
    refine.add_argument("--trace", action="store_true",
                        help="print every accepted move of the refinement")
    refine.set_defaults(func=_cmd_refine)

    data = sub.add_parser("dataset", help="list the benchmark datasets")
    data.add_argument("--which", choices=["tiny", "small"], default="tiny")
    data.add_argument("--scale", choices=["default", "paper"], default="default")
    data.set_defaults(func=_cmd_dataset)

    def add_engine_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for the experiment engine (1 = serial)")
        p.add_argument("--cache-dir", default=None,
                       help="on-disk result cache; repeated runs become free")
        p.add_argument("--results", default=None,
                       help="stream results to this JSONL file as they complete")
        p.add_argument("--resume", action="store_true",
                       help="skip jobs already recorded in the --results file")
        p.add_argument("--node-limit", type=int, default=None,
                       help="bound ILP solves by branch-and-bound nodes: results "
                            "become exactly reproducible even under CPU contention "
                            "(parallel workers, loaded hosts), provided --time-limit "
                            "is generous enough that the node limit is what binds")

    exp = sub.add_parser("experiment", help="run one of the paper's table experiments")
    exp.add_argument("--table", type=int, choices=[1, 2, 4], default=1)
    exp.add_argument("--limit", type=int, default=None, help="only the first N instances")
    exp.add_argument("--time-limit", type=float, default=5.0)
    add_backend_argument(exp)
    add_engine_arguments(exp)
    add_refine_arguments(exp)
    exp.set_defaults(func=_cmd_experiment)

    port = sub.add_parser("portfolio", help="run a scheduler portfolio over a dataset")
    port.add_argument("--members", default=None,
                      help="comma-separated member pipelines, e.g. "
                           "'bspg+clairvoyant,cilk+lru,ilp,dac'")
    port.add_argument("--which", choices=["tiny", "small"], default="tiny")
    port.add_argument("--scale", choices=["default", "paper"], default="default")
    port.add_argument("--limit", type=int, default=None, help="only the first N instances")
    port.add_argument("--processors", "-p", type=int, default=4)
    port.add_argument("--time-limit", type=float, default=5.0)
    add_backend_argument(port)
    port.add_argument("--prune-gap", type=float, default=0.0,
                      help="skip ILP members whose baseline is provably within "
                           "this relative gap of the theory lower bound "
                           "(default 0.0 = only provably optimal baselines, "
                           "which never changes the reported best costs)")
    port.add_argument("--no-prune", action="store_true",
                      help="disable bound-aware ILP pruning entirely")
    add_engine_arguments(port)
    add_refine_arguments(port)
    port.set_defaults(func=_cmd_portfolio)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
