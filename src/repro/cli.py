"""Command-line interface for the MBSP scheduling library.

Nine sub-commands are provided:

* ``schedule``   — generate (or load) a DAG, schedule it with a chosen method
  and print costs, validation results and an optional schedule rendering;
* ``refine``     — schedule a DAG and post-optimize the schedule with the
  local-search refinement engine, printing the before/after costs and the
  accepted-move trace;
* ``pipeline``   — the composable scheduler pipelines (:mod:`repro.pipeline`):
  ``pipeline list`` prints the registered stages and the member spec table,
  ``pipeline run --spec "bspg+clairvoyant|refine|ilp"`` runs one pipeline on
  one DAG and prints per-stage telemetry (cost in/out, wall time, solver
  calls);
* ``dataset``    — list the benchmark datasets (instance names, sizes, r0);
* ``exec``       — the unified async execution core (:mod:`repro.exec`):
  ``exec run`` executes pipeline specs over a dataset through one
  ``Session``, streaming per-job results as they complete and reducing to
  the best-per-instance table.  Specs support ``race(a,b,...)`` (concurrent
  branches, deterministic winner), ``stage@backend`` pins, per-stage
  ``budget=<s>s`` wall-clock limits (``--budget`` applies a default to
  every stage) and the ``key={a,b,c}`` sweep syntax expanding to member
  families.  Plans also shard across processes or machines:
  ``exec run --spawn-shards N`` fork-joins locally, ``exec run --shards N
  --shard-id I`` runs one worker shard (share ``--cache-dir``; each shard
  writes ``FILE.jsonl.shard<I>of<N>``), and ``exec merge`` stable-merges
  the per-shard files back into plan order — byte-identical to a
  single-process run;
* ``serve``      — the online scheduling service (:mod:`repro.serve`):
  ``serve bench`` replays a seeded Poisson-style arrival trace of DAG
  scheduling requests through the load-adaptive service loop and prints
  the SLO summary (p50/p99 latency, throughput, deadline-miss rate,
  cache-hit rate).  The timeline is virtual, so the JSON summary
  (``--output FILE.json``) is byte-identical across repeats, machines and
  ``--workers`` counts — the CI determinism gate diffs two runs;
* ``experiment`` — run one of the paper's table experiments and print the
  comparison against the paper's reference values;
* ``obs``        — the unified tracing & metrics layer (:mod:`repro.obs`):
  ``obs export`` merges the per-process spill files of a run traced with
  ``REPRO_TRACE=<dir>`` into one Chrome trace-event file (Perfetto /
  ``chrome://tracing``) or a flat metrics dump.  ``exec run``,
  ``pipeline run`` and ``serve bench`` also accept ``--trace FILE`` for
  the end-to-end shortcut, and ``exec run`` / ``experiment`` /
  ``serve bench`` accept ``--progress`` for a live stderr progress line
  (TTY only).  Tracing never changes results: spans and metrics stay out
  of job fingerprints, cache keys and the serve virtual timeline;
* ``portfolio``  — run a scheduler portfolio over a dataset and report the
  best pipeline per instance.  Members are pipeline specs: pass legacy names
  through ``--members`` and/or full specs through repeatable ``--pipeline``
  flags; ``--list-members`` prints every known member with its canonical
  pipeline.  Unknown member names warn and are skipped (matching the
  ``REPRO_*`` environment-knob convention) instead of failing the sweep.

Refinement threads through everything: ``schedule --refine`` post-optimizes
the produced schedule, ``experiment --refine`` refines every per-instance
result, and ``portfolio --refine`` adds a refined variant for every
requested member (``"<member>+refine"`` for legacy names, ``"<spec>|refine"``
for pipeline specs; ``--refine-budget`` bounds the move proposals per
schedule, ``--refine-strategy hill|anneal`` picks the search strategy).

The ``experiment`` and ``portfolio`` commands submit through the parallel
experiment engine: ``--workers N`` fans instances out over N processes,
``--cache-dir DIR`` caches results on disk (a repeated invocation performs
zero solver calls), and ``--results FILE.jsonl`` / ``--resume`` stream
results and resume interrupted sweeps.  Add ``--node-limit`` to bound ILP
solves by branch-and-bound nodes instead of wall clock when a sweep must be
exactly reproducible regardless of machine load.

Every ILP solve goes through the pluggable backend registry
(:mod:`repro.ilp.backends`): ``--backend scipy|bnb|auto`` selects the solver
per command (default: ``REPRO_ILP_BACKEND`` or ``scipy``).  The portfolio
additionally supports bound-aware pruning: ``--prune-gap G`` skips the
warm-started ``ilp`` member's solve when its baseline is provably within
``G`` of the theory lower bound (default ``0.0`` — skip only provably
optimal baselines, which never changes the reported best costs;
``--no-prune`` disables the check).

Examples
--------
```
python -m repro.cli schedule --generator spmv --size 5 --processors 2 --method ilp --time-limit 10
python -m repro.cli schedule --dag-file my_graph.json --processors 4 --method baseline --render
python -m repro.cli refine --generator spmv --size 6 --processors 4 --refine-budget 5000 --trace
python -m repro.cli pipeline list
python -m repro.cli pipeline run --spec "bspg+clairvoyant|refine|ilp" --generator spmv --size 4
python -m repro.cli portfolio --refine --members bspg+clairvoyant,cilk+lru --limit 4
python -m repro.cli portfolio --pipeline "bspg+clairvoyant|refine|ilp" --limit 4
python -m repro.cli portfolio --list-members
python -m repro.cli dataset --which tiny --scale default
python -m repro.cli serve bench --seed 7 --requests 5000 --rate 4 --output serve.json
python -m repro.cli experiment --table 1 --limit 3 --time-limit 5 --workers 4 --cache-dir .repro-cache
python -m repro.cli experiment --table 1 --backend auto --workers 4
python -m repro.cli portfolio --members bspg+clairvoyant,cilk+lru,ilp --limit 4 --workers 4
python -m repro.cli portfolio --backend auto --prune-gap 0.05 --processors 1
```
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dag import io as dag_io
from repro.dag.analysis import assign_random_memory_weights, dag_statistics
from repro.dag.generators import (
    bicgstab,
    conjugate_gradient,
    iterated_spmv,
    kmeans,
    knn_iteration,
    pregel,
    random_layered_dag,
    simple_pagerank,
    snni_graphchallenge,
    spmv,
)
from repro.dag.graph import ComputationalDag
from repro.ilp import SolverOptions
from repro.model import (
    asynchronous_cost,
    make_instance,
    render_gantt,
    render_superstep_table,
    synchronous_cost,
    validate_schedule,
)
from repro.core import MbspIlpConfig, schedule_mbsp

GENERATORS = {
    "spmv": lambda size, seed: spmv(size, seed=seed),
    "iterated_spmv": lambda size, seed: iterated_spmv(size, 2, seed=seed),
    "cg": lambda size, seed: conjugate_gradient(max(size // 2, 2), 1, seed=seed),
    "knn": lambda size, seed: knn_iteration(size, 2, seed=seed),
    "bicgstab": lambda size, seed: bicgstab(iterations=max(size // 4, 1)),
    "kmeans": lambda size, seed: kmeans(max(size // 4, 2), 2, 2),
    "pregel": lambda size, seed: pregel(max(size // 4, 2), 3),
    "pagerank": lambda size, seed: simple_pagerank(max(size // 2, 2), 4, seed=seed),
    "snni": lambda size, seed: snni_graphchallenge(max(size // 2, 2), 4, seed=seed),
    "random": lambda size, seed: random_layered_dag(4, max(size // 4, 2), seed=seed),
}


def _build_dag(args: argparse.Namespace) -> ComputationalDag:
    if args.dag_file:
        return dag_io.load(args.dag_file)
    if args.generator not in GENERATORS:
        raise SystemExit(
            f"unknown generator {args.generator!r}; available: {sorted(GENERATORS)}"
        )
    dag = GENERATORS[args.generator](args.size, args.seed)
    assign_random_memory_weights(dag, low=1, high=5, seed=args.seed)
    return dag


def _refine_config_from_args(args: argparse.Namespace, enabled: bool = True):
    from repro.refine import RefineConfig

    return RefineConfig(
        enabled=enabled,
        budget=args.refine_budget,
        seed=getattr(args, "seed", 0),
        strategy=args.refine_strategy,
    )


def _schedule_dag(args: argparse.Namespace):
    """Shared by ``schedule`` and ``refine``: build DAG, instance, schedule."""
    dag = _build_dag(args)
    stats = dag_statistics(dag)
    print(f"DAG {dag.name}: {int(stats['nodes'])} nodes, {int(stats['edges'])} edges, "
          f"r0 = {stats['r0']:g}")
    instance = make_instance(
        dag,
        num_processors=args.processors,
        cache_factor=args.cache_factor,
        g=args.g,
        L=args.latency,
    )
    config = MbspIlpConfig(
        synchronous=not args.asynchronous,
        solver_options=SolverOptions(time_limit=args.time_limit),
        backend=args.backend,
    )
    schedule = schedule_mbsp(instance, method=args.method, config=config,
                             synchronous=not args.asynchronous, seed=args.seed)
    validate_schedule(schedule, require_all_computed=False)
    return schedule


def _finish_schedule_output(args: argparse.Namespace, schedule) -> int:
    if args.render:
        print()
        print(render_superstep_table(schedule))
        print()
        print(render_gantt(schedule))
    if args.output:
        from repro.model import save_schedule

        save_schedule(schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    schedule = _schedule_dag(args)
    print(f"method: {args.method}   supersteps: {schedule.num_supersteps}")
    print(f"synchronous cost : {synchronous_cost(schedule):.2f}")
    print(f"asynchronous cost: {asynchronous_cost(schedule):.2f}")
    if args.refine:
        from repro.refine import Refiner

        result = Refiner(_refine_config_from_args(args)).refine(
            schedule, synchronous=not args.asynchronous
        )
        schedule = result.schedule
        print(result.summary())
        print(f"refined synchronous cost : {synchronous_cost(schedule):.2f}")
        print(f"refined asynchronous cost: {asynchronous_cost(schedule):.2f}")
    return _finish_schedule_output(args, schedule)


def _cmd_refine(args: argparse.Namespace) -> int:
    from repro.refine import Refiner

    schedule = _schedule_dag(args)
    synchronous = not args.asynchronous
    before = synchronous_cost(schedule) if synchronous else asynchronous_cost(schedule)
    print(f"method: {args.method}   supersteps: {schedule.num_supersteps}   "
          f"cost: {before:.2f}")
    result = Refiner(_refine_config_from_args(args)).refine(
        schedule, synchronous=synchronous
    )
    print(result.summary())
    if args.trace:
        for entry in result.trace:
            print(f"  #{entry.proposal:<6d} {entry.move:<10s} "
                  f"delta={entry.delta:+9.2f} cost={entry.cost:10.2f}")
    schedule = result.schedule
    validate_schedule(schedule, require_all_computed=False)
    print(f"refined supersteps: {schedule.num_supersteps}")
    print(f"refined synchronous cost : {synchronous_cost(schedule):.2f}")
    print(f"refined asynchronous cost: {asynchronous_cost(schedule):.2f}")
    return _finish_schedule_output(args, schedule)


def _cmd_pipeline_list(args: argparse.Namespace) -> int:
    from repro.pipeline import EXAMPLE_RACE_SPECS, stage_descriptions
    from repro.portfolio import member_descriptions

    print("registered pipeline stages (compose with '|'):")
    for name, description in stage_descriptions():
        print(f"  {name:<12s} {description}")
    print()
    print("portfolio member specs (legacy name -> canonical pipeline):")
    for member, spec in member_descriptions():
        print(f"  {member:<28s} {spec}")
    print()
    print('spec grammar: stage["("key=value,...")"] joined by "|", e.g. '
          '"bspg+clairvoyant|refine|ilp"')
    print("  stage@backend   pins one stage's ILP backend, e.g. 'ilp@bnb'")
    print("  budget=<s>s     wall-clock stage budget (note the 's'), "
          "e.g. 'ilp(budget=2s)'")
    print("  race(a,b,...)   concurrent branch race; deterministic winner "
          "(cost, then canonical branch order)")
    print("  key={a,b,c}     sweep syntax: --pipeline expands to one member "
          "per value, e.g. 'dac(max_part_size={2,4,8})'")
    print()
    print("example race members:")
    for label, spec in EXAMPLE_RACE_SPECS.items():
        print(f"  {label:<18s} {spec}")
    return 0


def _with_trace(args: argparse.Namespace, body) -> int:
    """Run ``body()``; with ``--trace FILE`` the run is traced end to end
    (temporary spill directory, so pool/shard worker processes join in)
    and the merged Chrome trace-event file is written on the way out."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return body()
    from repro.obs import chrome_trace_file

    with chrome_trace_file(trace_path) as trace:
        code = body()
    print(f"chrome trace written to {trace_path} ({trace.span_count} spans; "
          f"load it in Perfetto or chrome://tracing)")
    return code


def _make_progress(args: argparse.Namespace):
    """The opt-in ``--progress`` live stderr renderer (``None`` unless
    asked; the renderer itself is a no-op when stderr is not a TTY)."""
    if not getattr(args, "progress", False):
        return None
    from repro.obs import ProgressRenderer

    return ProgressRenderer()


def _cmd_pipeline_run(args: argparse.Namespace) -> int:
    return _with_trace(args, lambda: _pipeline_run_body(args))


def _pipeline_run_body(args: argparse.Namespace) -> int:
    from repro.exec import Session
    from repro.experiments.runner import ExperimentConfig
    from repro.pipeline import canonicalize, with_default_budget
    from repro.portfolio import resolve_member

    dag = _build_dag(args)
    stats = dag_statistics(dag)
    print(f"DAG {dag.name}: {int(stats['nodes'])} nodes, {int(stats['edges'])} edges, "
          f"r0 = {stats['r0']:g}")
    config = ExperimentConfig(
        name="pipeline",
        num_processors=args.processors,
        cache_factor=args.cache_factor,
        g=args.g,
        L=args.latency,
        synchronous=not args.asynchronous,
        ilp_time_limit=args.time_limit,
        seed=args.seed,
        refine=_refine_config_from_args(args, enabled=False),
        **_backend_kwargs(args),
    )
    spec = resolve_member(args.spec)
    if getattr(args, "budget", None) is not None:
        spec = with_default_budget(spec, args.budget)
    print(f"canonical spec: {canonicalize(spec)}")
    prune_gap = None if args.no_prune else args.prune_gap
    # the session grants its worker slots to the pipeline, so race(...)
    # stages fan their branches out over --workers threads
    session = Session(workers=getattr(args, "workers", 1))
    result = session.run_pipeline(spec, dag, config, prune_gap=prune_gap)
    print(result.describe())
    if result.applicable and result.schedule is not None:
        validate_schedule(result.schedule, require_all_computed=False)
        print(f"status: {result.status()}")
        return _finish_schedule_output(args, result.schedule)
    print(f"status: {result.status()}")
    return 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    return _with_trace(args, lambda: _serve_bench_body(args))


def _serve_bench_body(args: argparse.Namespace) -> int:
    """Replay a seeded arrival trace through the online scheduling service
    and report the SLO summary; --output writes the byte-stable JSON
    summary the CI determinism gate diffs."""
    import json as _json
    from contextlib import nullcontext

    from repro.experiments.reporting import format_slo_table
    from repro.serve import run_serve_bench

    progress = _make_progress(args)
    with progress if progress is not None else nullcontext():
        summary = run_serve_bench(
            seed=args.seed,
            requests=args.requests,
            rate=args.rate,
            servers=args.servers,
            workers=args.workers,
            cache_dir=args.cache_dir,
            results_path=args.results,
            dataset=args.which,
            scale=args.scale,
            limit=args.limit,
            progress=progress,
        )
    text = _json.dumps(summary, sort_keys=True, indent=2)
    if args.json:
        print(text)
    else:
        print(format_slo_table(
            summary["slo"],
            title=f"serve bench (seed {args.seed}, rate {args.rate:g}, "
                  f"{args.servers} virtual server(s))",
        ))
        print(f"trace digest: {summary['trace_digest']}")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"summary written to {args.output}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import small_dataset_specs, tiny_dataset_specs

    specs = tiny_dataset_specs(args.scale) if args.which == "tiny" else small_dataset_specs(args.scale)
    print(f"{args.which} dataset ({args.scale} scale): {len(specs)} instances")
    header = f"{'instance':<20s} {'family':<8s} {'nodes':>6s} {'edges':>6s} {'r0':>5s}"
    print(header)
    print("-" * len(header))
    for spec in specs:
        dag = spec.build()
        stats = dag_statistics(dag)
        print(f"{spec.name:<20s} {spec.family:<8s} {int(stats['nodes']):>6d} "
              f"{int(stats['edges']):>6d} {stats['r0']:>5.0f}")
    return 0


def _make_engine(args: argparse.Namespace):
    from repro.experiments.parallel import ExperimentEngine

    return ExperimentEngine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        results_path=args.results,
        resume=args.resume,
    )


def _backend_kwargs(args: argparse.Namespace) -> dict:
    """``ilp_backend`` keyword for ExperimentConfig when ``--backend`` was
    given (otherwise the config falls back to REPRO_ILP_BACKEND / scipy)."""
    return {"ilp_backend": args.backend} if args.backend else {}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import paper_reference
    from repro.experiments.reporting import format_results_table
    from repro.experiments.runner import ExperimentConfig
    from repro.experiments.tables import table1, table2, table4

    engine = _make_engine(args)
    progress = _make_progress(args)
    if progress is not None:
        progress.attach(engine.session)
    refine_kwargs = (
        {"refine": _refine_config_from_args(args)} if args.refine else {}
    )
    config = ExperimentConfig(
        ilp_time_limit=args.time_limit,
        ilp_node_limit=args.node_limit,
        **_backend_kwargs(args),
        **refine_kwargs,
    )
    if args.table == 1:
        results = table1(config=config, limit=args.limit, engine=engine)
        print(format_results_table(results, "Table 1", paper_reference.TABLE1))
    elif args.table == 2:
        results = table2(limit=args.limit,
                         config=ExperimentConfig(cache_factor=5.0,
                                                 ilp_time_limit=args.time_limit,
                                                 ilp_node_limit=args.node_limit,
                                                 **_backend_kwargs(args),
                                                 **refine_kwargs),
                         engine=engine)
        print(format_results_table(results, "Table 2", paper_reference.TABLE2))
    elif args.table == 4:
        by_config = table4(base_config=config, limit=args.limit, engine=engine)
        for name, results in by_config.items():
            ref = paper_reference.TABLE4.get(name, paper_reference.TABLE1)
            print(format_results_table(results, f"Table 4 [{name}]", ref))
            print()
    else:
        raise SystemExit("only tables 1, 2 and 4 are runnable from the CLI")
    if progress is not None:
        progress.close()
    print(f"engine: {engine.stats.describe()}")
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    import warnings as _warnings

    from repro.exceptions import ConfigurationError
    from repro.experiments.datasets import small_dataset, tiny_dataset
    from repro.experiments.runner import ExperimentConfig
    from repro.portfolio import (
        DEFAULT_MEMBERS,
        MEMBER_SPECS,
        Portfolio,
        format_portfolio_table,
        is_refined_member,
        member_descriptions,
        resolve_member,
    )
    from repro.portfolio import REFINE_SUFFIX

    if args.list_members:
        print("portfolio members (legacy name -> canonical pipeline spec):")
        for member, spec in member_descriptions():
            print(f"  {member:<28s} {spec}")
        print("any pipeline spec is a valid member too "
              "(see 'repro pipeline list' for the stages)")
        print("sweep syntax: --pipeline 'dac(max_part_size={2,4,8})' expands "
              "to one member per value (cartesian across several sweeps)")
        print("races: --pipeline 'baseline|race(ilp@bnb,ilp@scipy)' — "
              "deterministic winner, losers cancelled; budget=<s>s adds "
              "wall-clock stage budgets")
        return 0

    members = [m.strip() for m in args.members.split(",") if m.strip()] \
        if args.members else list(DEFAULT_MEMBERS)
    # --pipeline accepts full specs including race(...), budget=<s>s and the
    # sweep syntax key={a,b,c}, which expands to one member per combination
    members += _expand_pipeline_specs(args.pipeline, _warnings)
    # unknown member names warn and are skipped (matching the REPRO_* env
    # knob convention) so one typo cannot fail a long sweep — validated
    # before the --refine expansion, so a typo warns once, not twice; an
    # all-unknown list is still an error
    members, resolved = _validate_members(members, _warnings)
    if not members:
        raise ConfigurationError(
            "no valid portfolio members left after skipping unknown names; "
            "see 'repro portfolio --list-members'"
        )
    if args.refine:
        from repro.pipeline import parse as parse_spec

        def ends_refined(member):
            # legacy "+refine" names and raw specs whose last stage already
            # is a refine pass gain nothing from a second one
            return is_refined_member(member) or \
                parse_spec(member).stages[-1].name == "refine"

        for member in list(members):
            if ends_refined(member):
                continue
            # legacy names take the historical "+refine" suffix; raw
            # pipeline specs are extended with an explicit refine stage
            variant = member + REFINE_SUFFIX if member in MEMBER_SPECS \
                else member + "|refine"
            members.append(variant)
            resolved[variant] = resolve_member(variant)
    dags = (tiny_dataset(scale=args.scale, limit=args.limit) if args.which == "tiny"
            else small_dataset(scale=args.scale, limit=args.limit))
    engine = _make_engine(args)
    # only thread the refine knobs into the config (and therefore into the
    # engine's job hashes) when a refined member actually consumes them, so
    # that runs without refined members keep cache keys independent of the
    # knobs.  (With refined members present the knobs are part of every job
    # hash by design — ExperimentConfig.refine is covered by the content
    # hash so sweeps with different refinement settings never collide.)
    uses_refine = any("refine" in spec for spec in resolved.values())
    config = ExperimentConfig(
        name="portfolio",
        num_processors=args.processors,
        ilp_time_limit=args.time_limit,
        ilp_node_limit=args.node_limit,
        **({"refine": _refine_config_from_args(args, enabled=False)}
           if uses_refine else {}),
        **_backend_kwargs(args),
    )
    prune_gap = None if args.no_prune else args.prune_gap
    # adaptive member selection (repro.learn): an unreadable or malformed
    # history file warns and falls back to exhaustive evaluation (matching
    # the REPRO_* env-knob convention); a missing --history likewise warns
    # inside Portfolio — an adaptive request never crashes a sweep
    history = None
    if args.select == "adaptive" and args.history:
        from repro.learn import LearnedHistory

        try:
            history = LearnedHistory.load(args.history)
        except ConfigurationError as exc:
            _warnings.warn(
                f"ignoring unusable history file ({exc}); "
                f"falling back to exhaustive evaluation",
                UserWarning,
            )
    portfolio = Portfolio(
        config=config,
        prune_gap=prune_gap,
        select=args.select,
        top_k=args.top_k,
        history=history,
        selector=args.selector,
    )
    rows = portfolio.run(members, dags, engine=engine)
    print(format_portfolio_table(
        rows, reuse=portfolio.last_reuse, selection=portfolio.last_selection
    ))
    wins: dict = {}
    for row in rows:
        winner = row.best_member if row.has_winner else "(none applicable)"
        wins[winner] = wins.get(winner, 0) + 1
    summary = ", ".join(f"{member}: {count}" for member, count in sorted(wins.items()))
    print(f"wins per member: {summary}")
    pruned = sum(row.num_pruned for row in rows)
    if prune_gap is None:
        print("bound pruning: disabled")
    else:
        print(f"bound pruning: {pruned} ILP solve(s) skipped (gap {prune_gap:g})")
    print(f"ilp backend: {config.ilp_backend}")
    print(f"engine: {engine.stats.describe()}")
    return 0


def _learn_dataset(args):
    from repro.experiments.datasets import small_dataset, tiny_dataset

    return (tiny_dataset(scale=args.scale, limit=args.limit)
            if args.which == "tiny"
            else small_dataset(scale=args.scale, limit=args.limit))


def _cmd_learn_mine(args: argparse.Namespace) -> int:
    from repro.experiments.runner import ExperimentConfig
    from repro.learn import mine_history

    config = ExperimentConfig(name="learn", num_processors=args.processors)
    dags = _learn_dataset(args)
    history, stats = mine_history(args.results, dags, config)
    history.save(args.output)
    print(f"mined: {stats.describe()}")
    print(f"history: {len(history.instances)} instance(s), "
          f"{history.num_observations} (instance, member) entr(ies), "
          f"{len(history.bucket_table())} feature bucket(s)")
    print(f"digest: {history.digest()}")
    print(f"written to {args.output}")
    return 0


def _cmd_learn_select(args: argparse.Namespace) -> int:
    import warnings as _warnings

    from repro.exceptions import ConfigurationError
    from repro.experiments.runner import ExperimentConfig
    from repro.learn import LearnedHistory, plan_selection
    from repro.portfolio import DEFAULT_MEMBERS

    history = LearnedHistory.load(args.history)
    members = [m.strip() for m in args.members.split(",") if m.strip()] \
        if args.members else list(DEFAULT_MEMBERS)
    members, canonical = _validate_members(members, _warnings)
    if not members:
        raise ConfigurationError(
            "no valid portfolio members left after skipping unknown names; "
            "see 'repro portfolio --list-members'"
        )
    config = ExperimentConfig(name="learn", num_processors=args.processors)
    dags = _learn_dataset(args)
    report = plan_selection(
        history, dags, config, members, canonical,
        top_k=args.top_k, selector=args.selector, seed=args.seed,
    )
    print(f"predicted top-{report.top_k} members per instance "
          f"({args.selector} selector, history {history.digest()[:16]}):")
    for selection in report.selections:
        truth = ("true best {:g}".format(selection.true_best)
                 if selection.true_best is not None else "no mined truth")
        print(f"  {selection.instance:<20s} run {', '.join(selection.chosen)} "
              f"| skip {', '.join(selection.skipped) or '(none)'} [{truth}]")
    print(f"would run {report.jobs_run}/{report.jobs_total} member job(s); "
          f"history predicts ~{report.predicted_calls_saved:g} solver "
          f"call(s) saved")
    return 0


def _cmd_learn_report(args: argparse.Namespace) -> int:
    from repro.learn import (
        LearnedHistory,
        distributions_to_json,
        format_distribution_table,
    )

    history = LearnedHistory.load(args.history)
    text = (distributions_to_json(history) if args.format == "json"
            else format_distribution_table(history) + "\n")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _expand_pipeline_specs(specs, _warnings) -> List[str]:
    """Expand ``--pipeline`` values (sweep syntax included) into members.

    Malformed specs warn and are skipped, matching the unknown-member
    convention, so one typo cannot fail a long sweep.
    """
    from repro.exceptions import ConfigurationError
    from repro.pipeline import expand_spec

    members: List[str] = []
    for spec in specs or []:
        spec = spec.strip()
        if not spec:
            continue
        try:
            members += expand_spec(spec)
        except ConfigurationError as exc:
            _warnings.warn(
                f"ignoring malformed pipeline spec {spec!r} ({exc})",
                UserWarning,
                stacklevel=3,
            )
    return members


def _validate_members(members, _warnings):
    """Resolve member names/specs, warning-and-skipping unknown ones.

    The shared warn-and-skip convention of ``portfolio`` and ``exec run``:
    one typo cannot fail a long sweep, but an all-unknown list is still an
    error (handled by the callers, whose wording differs).  Returns the
    valid members plus their canonical specs.
    """
    from repro.exceptions import ConfigurationError
    from repro.portfolio import resolve_member

    valid: List[str] = []
    resolved = {}
    for member in members:
        try:
            resolved[member] = resolve_member(member)
            valid.append(member)
        except ConfigurationError:
            _warnings.warn(
                f"ignoring unknown portfolio member {member!r}; see "
                f"'repro portfolio --list-members' and 'repro pipeline list'",
                UserWarning,
                stacklevel=3,
            )
    return valid, resolved


def _exec_plan_from_args(args: argparse.Namespace):
    """Shared by ``exec run`` and ``exec merge``: resolve the members, the
    dataset and the config, and build the (deterministic) run plan.  The
    merge command rebuilds the exact plan of the shard runs from the same
    flags, because both shard assignment and the merged record order are
    functions of the plan."""
    import warnings as _warnings

    from repro.exceptions import ConfigurationError
    from repro.exec import plan_pipelines
    from repro.experiments.datasets import small_dataset, tiny_dataset
    from repro.experiments.runner import ExperimentConfig
    from repro.pipeline import with_default_budget
    from repro.portfolio import DEFAULT_MEMBERS

    if args.budget is not None and args.budget <= 0:
        raise ConfigurationError("--budget must be positive (seconds)")
    requested = bool(args.members) or bool(args.pipeline)
    members = [m.strip() for m in args.members.split(",") if m.strip()] \
        if args.members else []
    members += _expand_pipeline_specs(args.pipeline, _warnings)
    if not members:
        if requested:
            # every explicitly requested spec was malformed and skipped; a
            # silent fall-back to the default portfolio would run entirely
            # different (and possibly expensive) work than asked for
            raise ConfigurationError(
                "no valid pipeline specs left after skipping malformed "
                "--pipeline/--members values; see 'repro pipeline list'"
            )
        members = list(DEFAULT_MEMBERS)
    members, _ = _validate_members(members, _warnings)
    if not members:
        raise ConfigurationError(
            "no valid pipeline specs left after skipping unknown ones; "
            "see 'repro pipeline list'"
        )
    if args.budget is not None:
        members = [with_default_budget(member, args.budget) for member in members]
    uses_refine = any("refine" in member for member in members)
    config = ExperimentConfig(
        name="exec",
        num_processors=args.processors,
        ilp_time_limit=args.time_limit,
        ilp_node_limit=args.node_limit,
        **({"refine": _refine_config_from_args(args, enabled=False)}
           if uses_refine else {}),
        **_backend_kwargs(args),
    )
    dags = (tiny_dataset(scale=args.scale, limit=args.limit) if args.which == "tiny"
            else small_dataset(scale=args.scale, limit=args.limit))
    prune_gap = None if args.no_prune else args.prune_gap
    plan = plan_pipelines(members, dags, config, prune_gap=prune_gap)
    return members, dags, config, plan, prune_gap


def _event_line(done, total, instance, member, result, source) -> str:
    cost = result.extra_costs.get("member_cost", result.ilp_cost)
    return (f"  [{done:>3d}/{total}] {instance:<20s} "
            f"{member:<44s} cost={cost:<10g} ({source}) "
            f"{result.solver_status}")


def _validate_shard_args(args) -> None:
    from repro.exceptions import ConfigurationError

    if args.spawn_shards is not None:
        if args.shards is not None or args.shard_id is not None:
            raise ConfigurationError(
                "--spawn-shards is the local fork-join mode and excludes the "
                "manual --shards/--shard-id worker mode"
            )
        if args.spawn_shards < 1:
            raise ConfigurationError("--spawn-shards must be >= 1")
        return
    if args.shard_id is not None and args.shards is None:
        raise ConfigurationError("--shard-id requires --shards N")
    if args.shards is not None:
        if args.shard_id is None:
            raise ConfigurationError(
                "--shards needs --shard-id I (run one worker shard per "
                "invocation, then 'repro exec merge'); for a local "
                "fork-join use --spawn-shards N instead"
            )
        if not args.results:
            raise ConfigurationError(
                "--shards/--shard-id requires --results FILE.jsonl: the "
                "shard writes FILE.jsonl.shard<I>of<N> for the merge"
            )


def _cmd_exec_run(args: argparse.Namespace) -> int:
    return _with_trace(args, lambda: _exec_run_body(args))


def _exec_run_body(args: argparse.Namespace) -> int:
    """Run pipeline specs over a dataset through one Session, streaming
    per-job results as they complete and reducing to the best-per-instance
    table at the end (the portfolio view).  With --shards/--shard-id the
    invocation becomes one worker shard of the plan; with --spawn-shards N
    it becomes the local fork-join coordinator."""
    from repro.exec import Session, shard_plan, shard_results_path
    from repro.portfolio import format_portfolio_table, reduce_to_portfolio_rows

    _validate_shard_args(args)
    members, dags, config, plan, prune_gap = _exec_plan_from_args(args)
    progress = _make_progress(args)

    if args.shards is not None:
        # worker mode: execute exactly this shard's sub-plan, writing the
        # per-shard JSONL file next to the merged --results path
        shard = shard_plan(plan, args.shards, args.shard_id)
        shard_path = shard_results_path(args.results, args.shards, args.shard_id)
        session = Session(
            workers=args.workers,
            cache_dir=args.cache_dir,
            results_path=shard_path,
            resume=args.resume,
        )
        if progress is not None:
            progress.attach(session)
        print(f"shard {args.shard_id} of {args.shards}: "
              f"{len(shard.plan)}/{len(plan)} jobs ({len(dags)} instances x "
              f"{len(members)} pipelines), {session.workers} worker slot(s) "
              f"-> {shard_path}")
        done = 0
        for event in session.stream(shard.plan):
            done += 1
            member = members[shard.indices[event.index] % len(members)]
            print(_event_line(done, len(shard.plan), event.instance, member,
                              event.result, event.source))
        if progress is not None:
            progress.close()
        print(f"session: {session.stats.describe()}")
        print(f"merge once every shard has run: repro exec merge "
              f"--shards {args.shards} --results {args.results} "
              f"(+ the same spec/dataset flags)")
        return 0

    session = Session(
        workers=args.workers,
        cache_dir=args.cache_dir,
        results_path=args.results,
        resume=args.resume,
    )
    if progress is not None:
        progress.attach(session)
    results = [None] * len(plan)
    if args.spawn_shards is not None:
        # coordinator mode: fork-join the plan over shard processes, then
        # stable-merge the per-shard JSONL files back into --results
        from repro.exec import shard_assignment

        assignment = shard_assignment(plan, args.spawn_shards)
        print(f"session: {len(plan)} jobs ({len(dags)} instances x "
              f"{len(members)} pipelines), {args.spawn_shards} shard "
              f"process(es) x {session.workers} worker slot(s)")
        results = session.run_sharded(plan, args.spawn_shards)
        for i, result in enumerate(results):
            member = members[i % len(members)]
            print(_event_line(i + 1, len(plan), result.instance_name, member,
                              result, f"shard {assignment[i]}"))
        if args.results:
            print(f"merged {args.spawn_shards} shard file(s) into "
                  f"{args.results} (plan order, byte-stable)")
    else:
        print(f"session: {len(plan)} jobs ({len(dags)} instances x "
              f"{len(members)} pipelines), {session.workers} worker slot(s)")
        done = 0
        for event in session.stream(plan):
            results[event.index] = event.result
            done += 1
            member = members[event.index % len(members)]
            print(_event_line(done, len(plan), event.instance, member,
                              event.result, event.source))
    if progress is not None:
        progress.close()
    print()
    print(format_portfolio_table(reduce_to_portfolio_rows(members, dags, results)))
    if args.budget is not None:
        print(f"stage budget: {args.budget:g}s per stage "
              f"(spec overrides win; part of the job hash)")
    print(f"ilp backend: {config.ilp_backend}")
    print(f"session: {session.stats.describe()}")
    return 0


def _cmd_exec_merge(args: argparse.Namespace) -> int:
    """Stable-merge the per-shard JSONL files of a manual sharded run
    (``exec run --shards N --shard-id I`` per shard) back into plan order,
    then print the portfolio reduction of the merged results."""
    from repro.exceptions import ConfigurationError
    from repro.exec import merge_shard_logs
    from repro.experiments.reporting import iter_jsonl_records
    from repro.experiments.runner import InstanceResult
    from repro.portfolio import format_portfolio_table, reduce_to_portfolio_rows

    if not args.results:
        raise ConfigurationError(
            "--results FILE.jsonl is required: it is the merge target and "
            "the prefix of the per-shard files (FILE.jsonl.shard<I>of<N>)"
        )
    members, dags, config, plan, _ = _exec_plan_from_args(args)
    target = merge_shard_logs(plan, args.results, args.shards)
    print(f"merged {args.shards} shard file(s) into {target} "
          f"({len(plan)} plan jobs, plan order, byte-stable)")
    recorded = {
        str(record["key"]): record["result"]
        for record in iter_jsonl_records(target)
    }
    results = [
        InstanceResult.from_dict(recorded[node.job.key()]) for node in plan
    ]
    print()
    print(format_portfolio_table(reduce_to_portfolio_rows(members, dags, results)))
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Export the observability data a traced run spilled to disk.

    Reads the ``spans-<pid>.jsonl`` / ``metrics-<pid>.jsonl`` files a run
    traced with ``REPRO_TRACE=<dir>`` left behind (every process of a
    sharded or pooled run spills into the same directory) and writes one
    merged artifact: a Chrome trace-event file or a metrics dump."""
    import os

    from repro import obs
    from repro.exceptions import ConfigurationError

    spill = args.spill
    if spill is None:
        env = os.environ.get(obs.ENV_TRACE, "").strip()
        if env and env.lower() not in ("1", "true") and os.path.isdir(env):
            spill = env
    if spill is None:
        raise ConfigurationError(
            "no spill directory: pass --spill DIR, or set REPRO_TRACE=<dir> "
            "(the directory a traced run spilled its spans/metrics into)"
        )
    if args.format == "metrics" and args.output is None:
        for line in obs.format_metrics_table(obs.collect_metrics(spill)):
            print(line)
        return 0
    if args.output is None:
        raise ConfigurationError("--output FILE is required for this format")
    count = obs.export_trace(args.output, spill_dir=spill, fmt=args.format)
    what = "span(s)" if args.format == "chrome-trace" else "metric name(s)"
    print(f"exported {count} {what} from {spill} to {args.output}")
    if args.format == "chrome-trace":
        ok, errors = obs.validate_chrome_trace_file(args.output)
        if not ok:
            print("trace failed schema validation:")
            for error in errors[:10]:
                print(f"  {error}")
            return 1
    return 0


def _report_findings(findings, args, *, baselined: int = 0) -> int:
    """Shared reporter of ``lint`` and ``check``: render to --output or
    stdout in the requested format, return the stable exit code."""
    import contextlib

    from repro.lint import exit_code, render_json, render_text

    with contextlib.ExitStack() as stack:
        if args.output:
            out = stack.enter_context(open(args.output, "w"))
        else:
            out = sys.stdout
        if args.format == "json":
            render_json(findings, out, baselined=baselined)
        else:
            render_text(findings, out)
            if baselined:
                out.write(f"({baselined} baselined finding(s) not shown)\n")
    if args.output:
        print(f"wrote {args.format} report to {args.output}")
    return exit_code(findings)


def _cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint [PATHS]``: the AST determinism/concurrency analyzer."""
    import os

    from repro import lint
    from repro.exceptions import ConfigurationError

    if args.list_rules:
        print(f"{'rule':<10s} {'severity':<9s} description")
        for rule_id, severity, description in lint.rule_descriptions():
            print(f"{rule_id:<10s} {severity:<9s} {description}")
        return lint.EXIT_OK

    rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()] \
        if args.rules else None
    try:
        findings = lint.lint_paths(args.paths or ["src"], rule_ids)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return lint.EXIT_USAGE

    if args.write_baseline:
        baseline_path = args.baseline or lint.DEFAULT_BASELINE
        lint.write_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to baseline {baseline_path}")
        return lint.EXIT_OK

    baselined = 0
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and os.path.exists(lint.DEFAULT_BASELINE):
        baseline_path = lint.DEFAULT_BASELINE
    if baseline_path is not None and not args.no_baseline:
        try:
            keys = lint.load_baseline(baseline_path)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return lint.EXIT_USAGE
        before = len(findings)
        findings = lint.filter_baselined(findings, keys)
        baselined = before - len(findings)
    return _report_findings(findings, args, baselined=baselined)


def _cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: validate specs/plans/policies without executing.

    With no explicit specs, checks the default portfolio members, the
    documented example race specs and the shipped serve policy tiers —
    the exact set the CI smoke gate runs.
    """
    import warnings as _warnings

    from repro import lint
    from repro.exceptions import ConfigurationError
    from repro.pipeline.composite import EXAMPLE_RACE_SPECS
    from repro.portfolio import DEFAULT_MEMBERS, resolve_member

    specs = [m.strip() for m in args.members.split(",") if m.strip()] \
        if args.members else []
    specs += [s.strip() for s in (args.pipeline or []) if s.strip()]
    check_policy = args.policy or any(
        (args.policy_cheap, args.policy_steady, args.policy_rich)
    )
    if not specs and not check_policy:
        # the default smoke set: portfolio members + documented races +
        # the shipped policy tiers
        specs = list(DEFAULT_MEMBERS) + list(EXAMPLE_RACE_SPECS.values())
        check_policy = True

    findings = []
    for spec in specs:
        findings += lint.check_spec(
            spec, processors=args.processors, max_sweep=args.max_sweep
        )
    if check_policy:
        findings += lint.check_policy(
            cheap=args.policy_cheap,
            steady=args.policy_steady,
            rich=args.policy_rich,
            processors=args.processors,
        )

    if args.shards is not None:
        # dry-run the deterministic shard assignment over the real plan
        # the specs × dataset fan-out would execute
        from repro.exec import plan_pipelines
        from repro.experiments.datasets import small_dataset, tiny_dataset
        from repro.experiments.runner import ExperimentConfig

        resolvable = []
        for spec in specs:
            try:
                resolve_member(spec)
                resolvable.append(spec)
            except ConfigurationError:
                pass  # already reported as a REP-S01/REP-S06 finding
        if resolvable:
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore")
                config = ExperimentConfig(
                    name="check", num_processors=args.processors
                )
                dags = (
                    tiny_dataset(scale=args.scale, limit=args.limit)
                    if args.which == "tiny"
                    else small_dataset(scale=args.scale, limit=args.limit)
                )
                plan = plan_pipelines(resolvable, dags, config)
            findings += lint.check_shards(
                plan,
                args.shards,
                source=f"plan:{len(plan)} nodes",
            )

    checked = len(specs) + (3 if check_policy else 0)
    if not findings:
        print(f"checked {checked} spec(s): all statically valid")
    return _report_findings(findings, args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_argument(p: argparse.ArgumentParser) -> None:
        from repro.ilp import available_backends

        p.add_argument("--backend", default=None, choices=available_backends(),
                       help="ILP solver backend for every solve of this command "
                            "(default: REPRO_ILP_BACKEND or 'scipy'; 'auto' picks "
                            "per model by size/structure)")

    def add_refine_arguments(p: argparse.ArgumentParser, with_switch: bool = True) -> None:
        from repro.refine import RefineConfig

        defaults = RefineConfig()
        if with_switch:
            p.add_argument("--refine", action="store_true",
                           help="post-optimize schedules with the local-search "
                                "refinement engine (repro.refine)")
        p.add_argument("--refine-budget", type=int, default=defaults.budget,
                       help="max move proposals per refined schedule "
                            f"(default {defaults.budget})")
        p.add_argument("--refine-strategy", choices=["hill", "anneal"],
                       default=defaults.strategy,
                       help="hill climbing (default) or simulated annealing")

    def add_dag_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--generator", default="spmv",
                       help=f"workload family ({sorted(GENERATORS)})")
        p.add_argument("--size", type=int, default=5, help="generator size parameter")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--dag-file", default=None,
                       help="load the DAG from a .json/.dag file instead")
        p.add_argument("--processors", "-p", type=int, default=2)
        p.add_argument("--cache-factor", type=float, default=3.0,
                       help="cache size as a multiple of r0")
        p.add_argument("--g", type=float, default=1.0)
        p.add_argument("--latency", "-L", type=float, default=10.0)
        p.add_argument("--time-limit", type=float, default=10.0)
        add_backend_argument(p)
        p.add_argument("--asynchronous", action="store_true",
                       help="optimise the asynchronous cost")
        p.add_argument("--render", action="store_true",
                       help="print superstep table and Gantt chart")
        p.add_argument("--output", default=None, help="write the schedule to a JSON file")

    sched = sub.add_parser("schedule", help="schedule one DAG")
    add_dag_arguments(sched)
    sched.add_argument("--method", default="baseline",
                       choices=["baseline", "practical", "ilp", "divide-and-conquer"])
    add_refine_arguments(sched)
    sched.set_defaults(func=_cmd_schedule)

    refine = sub.add_parser(
        "refine", help="schedule one DAG and post-optimize it with local search"
    )
    add_dag_arguments(refine)
    refine.add_argument("--method", default="baseline",
                        choices=["baseline", "practical", "ilp", "divide-and-conquer"],
                        help="pipeline producing the schedule to refine")
    add_refine_arguments(refine, with_switch=False)
    refine.add_argument("--trace", action="store_true",
                        help="print every accepted move of the refinement")
    refine.set_defaults(func=_cmd_refine)

    pipe = sub.add_parser(
        "pipeline", help="composable scheduler pipelines (repro.pipeline)"
    )
    pipe_sub = pipe.add_subparsers(dest="action", required=True)
    pipe_list = pipe_sub.add_parser(
        "list", help="print the registered stages and the member spec table"
    )
    pipe_list.set_defaults(func=_cmd_pipeline_list)
    pipe_run = pipe_sub.add_parser(
        "run", help="run one pipeline spec on one DAG with per-stage telemetry"
    )
    pipe_run.add_argument(
        "--spec", required=True,
        help="pipeline spec or member name, e.g. 'bspg+clairvoyant|refine|ilp' "
             "or 'baseline|race(ilp@bnb,ilp@scipy)'"
    )
    add_dag_arguments(pipe_run)
    add_refine_arguments(pipe_run, with_switch=False)
    pipe_run.add_argument("--prune-gap", type=float, default=None,
                          help="bound-aware per-stage pruning gap "
                               "(default: no pruning)")
    pipe_run.add_argument("--no-prune", action="store_true",
                          help="disable bound-aware pruning")
    pipe_run.add_argument("--workers", type=int, default=1,
                          help="session worker slots: race(...) stages fan "
                               "branches out over this many threads")
    pipe_run.add_argument("--budget", type=float, default=None,
                          help="wall-clock budget in seconds for every stage "
                               "without an explicit budget=<s>s option")
    pipe_run.add_argument("--trace", default=None, metavar="FILE",
                          help="trace the run (stages, race branches, ILP "
                               "solves) and write a Chrome trace-event file "
                               "loadable in Perfetto")
    pipe_run.set_defaults(func=_cmd_pipeline_run)

    data = sub.add_parser("dataset", help="list the benchmark datasets")
    data.add_argument("--which", choices=["tiny", "small"], default="tiny")
    data.add_argument("--scale", choices=["default", "paper"], default="default")
    data.set_defaults(func=_cmd_dataset)

    serve = sub.add_parser(
        "serve", help="the online scheduling service (repro.serve)"
    )
    serve_sub = serve.add_subparsers(dest="action", required=True)
    serve_bench = serve_sub.add_parser(
        "bench",
        help="replay a seeded arrival trace through the service loop and "
             "print the SLO summary (virtual timeline: byte-identical "
             "across repeats and --workers counts)",
    )
    serve_bench.add_argument("--seed", type=int, default=0,
                             help="arrival-trace seed (trace, deadlines and "
                                  "template choices are a pure function of it)")
    serve_bench.add_argument("--requests", type=int, default=100_000,
                             help="trace length (default 100000; repeats of "
                                  "the template pool stay cache-hot, so only "
                                  "a few dozen distinct jobs solve)")
    serve_bench.add_argument("--rate", type=float, default=4.0,
                             help="mean arrivals per virtual time unit "
                                  "(Poisson intensity)")
    serve_bench.add_argument("--servers", type=int, default=2,
                             help="virtual service capacity (shapes the "
                                  "simulated queueing; independent of "
                                  "--workers by design)")
    serve_bench.add_argument("--which", choices=["tiny", "small"],
                             default="tiny", help="template pool dataset")
    serve_bench.add_argument("--scale", choices=["default", "paper"],
                             default="default")
    serve_bench.add_argument("--limit", type=int, default=6,
                             help="template pool size (first N instances)")
    serve_bench.add_argument("--workers", type=int, default=1,
                             help="session worker slots for the distinct-job "
                                  "execution (cannot change the summary)")
    serve_bench.add_argument("--cache-dir", default=None,
                             help="content-hash result cache shared with the "
                                  "other commands; hot keys skip solving")
    serve_bench.add_argument("--results", default=None,
                             help="stream the distinct-job results to this "
                                  "JSONL file (plan order)")
    serve_bench.add_argument("--output", default=None,
                             help="write the JSON summary to this file "
                                  "(byte-stable; the CI gate diffs two runs)")
    serve_bench.add_argument("--json", action="store_true",
                             help="print the JSON summary instead of the "
                                  "SLO table")
    serve_bench.add_argument("--trace", default=None, metavar="FILE",
                             help="trace the run (serve phases, session "
                                  "jobs, solver calls) and write a Chrome "
                                  "trace-event file; never changes the "
                                  "summary")
    serve_bench.add_argument("--progress", action="store_true",
                             help="live stderr progress line for the "
                                  "distinct-job execution (TTY only)")
    serve_bench.set_defaults(func=_cmd_serve_bench)

    def add_engine_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for the experiment engine (1 = serial)")
        p.add_argument("--cache-dir", default=None,
                       help="on-disk result cache; repeated runs become free")
        p.add_argument("--results", default=None,
                       help="stream results to this JSONL file as they complete")
        p.add_argument("--resume", action="store_true",
                       help="skip jobs already recorded in the --results file")
        p.add_argument("--node-limit", type=int, default=None,
                       help="bound ILP solves by branch-and-bound nodes: results "
                            "become exactly reproducible even under CPU contention "
                            "(parallel workers, loaded hosts), provided --time-limit "
                            "is generous enough that the node limit is what binds")

    exp = sub.add_parser("experiment", help="run one of the paper's table experiments")
    exp.add_argument("--table", type=int, choices=[1, 2, 4], default=1)
    exp.add_argument("--limit", type=int, default=None, help="only the first N instances")
    exp.add_argument("--time-limit", type=float, default=5.0)
    add_backend_argument(exp)
    add_engine_arguments(exp)
    add_refine_arguments(exp)
    exp.add_argument("--progress", action="store_true",
                     help="live stderr progress line (TTY only)")
    exp.set_defaults(func=_cmd_experiment)

    execp = sub.add_parser(
        "exec", help="the unified async execution core (repro.exec)"
    )
    exec_sub = execp.add_subparsers(dest="action", required=True)

    def add_exec_plan_arguments(p: argparse.ArgumentParser) -> None:
        """The plan-defining flags shared by `exec run` and `exec merge`
        (the merge rebuilds the shard runs' plan from the same flags)."""
        p.add_argument("--pipeline", action="append", default=None,
                       metavar="SPEC",
                       help="add one pipeline spec (repeatable); supports "
                            "race(a,b,...), budget=<s>s, stage@backend and "
                            "the sweep syntax key={a,b,c}")
        p.add_argument("--members", default=None,
                       help="comma-separated legacy member names to add "
                            "(default when nothing is given: the default "
                            "portfolio members)")
        p.add_argument("--which", choices=["tiny", "small"], default="tiny")
        p.add_argument("--scale", choices=["default", "paper"], default="default")
        p.add_argument("--limit", type=int, default=None,
                       help="only the first N instances")
        p.add_argument("--processors", "-p", type=int, default=4)
        p.add_argument("--time-limit", type=float, default=5.0)
        add_backend_argument(p)
        p.add_argument("--budget", type=float, default=None,
                       help="wall-clock budget in seconds applied to every "
                            "stage lacking an explicit budget=<s>s option "
                            "(part of the canonical spec and job hash)")
        p.add_argument("--prune-gap", type=float, default=0.0,
                       help="bound-aware per-stage pruning gap "
                            "(default 0.0 = skip only provably optimal "
                            "incumbents)")
        p.add_argument("--no-prune", action="store_true",
                       help="disable bound-aware pruning")
        add_engine_arguments(p)
        add_refine_arguments(p, with_switch=False)

    exec_run = exec_sub.add_parser(
        "run",
        help="run pipeline specs over a dataset through one Session, "
             "streaming per-job results as they complete (optionally as "
             "one worker shard, or fork-joined over shard processes)",
    )
    add_exec_plan_arguments(exec_run)
    exec_run.add_argument("--shards", type=int, default=None, metavar="N",
                          help="worker mode: split the plan into N shards by "
                               "job index (dependency chains stay within one "
                               "shard) and run only --shard-id; requires "
                               "--results (the shard writes "
                               "FILE.jsonl.shard<I>of<N>); share --cache-dir "
                               "across shards, then 'repro exec merge'")
    exec_run.add_argument("--shard-id", type=int, default=None, metavar="I",
                          help="which shard (0-based) this invocation runs")
    exec_run.add_argument("--spawn-shards", type=int, default=None,
                          metavar="N",
                          help="local fork-join: run the plan as N shard "
                               "processes (each with --workers slots) and "
                               "stable-merge the per-shard JSONL files back "
                               "into --results (byte-identical to a "
                               "single-process run)")
    exec_run.add_argument("--trace", default=None, metavar="FILE",
                          help="trace the run (session jobs, pipeline "
                               "stages, race branches, ILP solves — across "
                               "worker and shard processes) and write a "
                               "Chrome trace-event file loadable in "
                               "Perfetto; results stay byte-identical")
    exec_run.add_argument("--progress", action="store_true",
                          help="live stderr progress line with jobs "
                               "done/total and cache hits (TTY only)")
    exec_run.set_defaults(func=_cmd_exec_run)

    exec_merge = exec_sub.add_parser(
        "merge",
        help="stable-merge the per-shard JSONL files of a manual sharded "
             "run back into plan order (pass the same spec/dataset flags "
             "as the shard runs, plus --shards and --results)",
    )
    add_exec_plan_arguments(exec_merge)
    exec_merge.add_argument("--shards", type=int, required=True, metavar="N",
                            help="shard count the plan was split into")
    exec_merge.set_defaults(func=_cmd_exec_merge)

    obs_parser = sub.add_parser(
        "obs", help="observability: export traces and metrics (repro.obs)"
    )
    obs_sub = obs_parser.add_subparsers(dest="action", required=True)
    obs_export = obs_sub.add_parser(
        "export",
        help="merge the spill files of a run traced with REPRO_TRACE=<dir> "
             "into one Chrome trace-event file or metrics dump",
    )
    obs_export.add_argument("--spill", default=None, metavar="DIR",
                            help="spill directory holding the per-process "
                                 "spans-<pid>.jsonl / metrics-<pid>.jsonl "
                                 "files (default: REPRO_TRACE when it names "
                                 "a directory)")
    obs_export.add_argument("--format", default="chrome-trace",
                            choices=["chrome-trace", "metrics", "metrics-json"],
                            help="chrome-trace = Perfetto-loadable trace-event "
                                 "JSON; metrics = flat text table; "
                                 "metrics-json = the summary object")
    obs_export.add_argument("--output", default=None, metavar="FILE",
                            help="output file (--format metrics prints to "
                                 "stdout when omitted)")
    obs_export.set_defaults(func=_cmd_obs_export)

    def add_report_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--format", choices=["text", "json"], default="text",
                       help="report format (json is byte-stable: sorted "
                            "keys, stable finding order)")
        p.add_argument("--output", default=None, metavar="FILE",
                       help="write the report to FILE instead of stdout")

    lint_parser = sub.add_parser(
        "lint",
        help="static determinism/concurrency analysis over Python sources "
             "(AST rules; exit 0 = clean, 1 = findings, 2 = usage error)",
    )
    lint_parser.add_argument("paths", nargs="*", default=None, metavar="PATH",
                             help="files or directories to lint "
                                  "(default: src)")
    lint_parser.add_argument("--rules", default=None, metavar="IDS",
                             help="comma-separated rule ids to run "
                                  "(default: all; see --list-rules)")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print the rule table and exit")
    lint_parser.add_argument("--baseline", default=None, metavar="FILE",
                             help="baseline file grandfathering known "
                                  "findings (default: lint-baseline.json "
                                  "when it exists)")
    lint_parser.add_argument("--no-baseline", action="store_true",
                             help="ignore any baseline file (report "
                                  "everything)")
    lint_parser.add_argument("--write-baseline", action="store_true",
                             help="write the current findings to the "
                                  "baseline file and exit 0")
    add_report_arguments(lint_parser)
    lint_parser.set_defaults(func=_cmd_lint)

    check = sub.add_parser(
        "check",
        help="statically validate pipeline specs, serve policies and plan "
             "shardability without executing anything (fails in "
             "milliseconds where a run would fail mid-flight)",
    )
    check.add_argument("--pipeline", action="append", default=None,
                       metavar="SPEC",
                       help="check one pipeline spec (repeatable; sweeps, "
                            "race(...), budget=<s>s and @backend included)")
    check.add_argument("--members", default=None,
                       help="comma-separated member names/specs to check")
    check.add_argument("--policy", action="store_true",
                       help="check the serve policy tiers (the shipped "
                            "defaults unless overridden)")
    check.add_argument("--policy-cheap", default=None, metavar="SPEC",
                       help="override the cheap policy tier spec")
    check.add_argument("--policy-steady", default=None, metavar="SPEC",
                       help="override the steady policy tier spec")
    check.add_argument("--policy-rich", default=None, metavar="SPEC",
                       help="override the rich policy tier spec")
    check.add_argument("--shards", type=int, default=None, metavar="N",
                       help="also dry-run the deterministic shard "
                            "assignment of the specs x dataset plan "
                            "(catches the coordinator's "
                            "ConfigurationError without starting workers)")
    check.add_argument("--which", choices=["tiny", "small"], default="tiny",
                       help="dataset for the --shards plan dry-run")
    check.add_argument("--scale", choices=["default", "paper"],
                       default="default")
    check.add_argument("--limit", type=int, default=None,
                       help="only the first N instances of the dataset")
    check.add_argument("--processors", "-p", type=int, default=4,
                       help="processor count assumed by the incumbent "
                            "analysis (dfs applies only to P = 1)")
    check.add_argument("--max-sweep", type=int, default=16,
                       help="sweep cardinality above which REP-S05 warns "
                            "(default 16)")
    add_report_arguments(check)
    check.set_defaults(func=_cmd_check)

    learn_parser = sub.add_parser(
        "learn",
        help="learned member selection: mine run history into per-feature "
             "win/cost tables and predict which portfolio members to run "
             "(repro.learn)",
    )
    learn_sub = learn_parser.add_subparsers(dest="action", required=True)

    def add_learn_dataset_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--which", choices=["tiny", "small"], default="tiny")
        p.add_argument("--scale", choices=["default", "paper"],
                       default="default")
        p.add_argument("--limit", type=int, default=None,
                       help="only the first N instances of the dataset")
        p.add_argument("--processors", "-p", type=int, default=4,
                       help="processor count the features are computed for "
                            "(must match the runs being mined/planned)")

    learn_mine = learn_sub.add_parser(
        "mine",
        help="mine one or more JSONL results files (from runs with "
             "--results) into a byte-stable learned history",
    )
    learn_mine.add_argument("--results", action="append", required=True,
                            metavar="FILE",
                            help="JSONL results file to mine (repeatable; "
                                 "only records carrying a member spec "
                                 "contribute)")
    add_learn_dataset_arguments(learn_mine)
    learn_mine.add_argument("--output", default="history.json", metavar="FILE",
                            help="learned-history JSON to write "
                                 "(default: history.json)")
    learn_mine.set_defaults(func=_cmd_learn_mine)

    learn_select = learn_sub.add_parser(
        "select",
        help="predict the top-k members per instance from a mined history "
             "without executing anything",
    )
    learn_select.add_argument("--history", required=True, metavar="FILE",
                              help="learned history from 'repro learn mine'")
    learn_select.add_argument("--members", default=None,
                              help="comma-separated member names/specs "
                                   "(default: the portfolio defaults)")
    add_learn_dataset_arguments(learn_select)
    learn_select.add_argument("--top-k", type=int, default=3,
                              help="members to keep per instance (default 3)")
    learn_select.add_argument("--selector", choices=["greedy", "knn"],
                              default="greedy",
                              help="ranking model: per-bucket greedy table "
                                   "or k-NN over feature vectors")
    learn_select.add_argument("--seed", type=int, default=0,
                              help="tie-breaking seed (identical ranking "
                                   "for identical history regardless)")
    learn_select.set_defaults(func=_cmd_learn_select)

    learn_report = learn_sub.add_parser(
        "report",
        help="Figure-4-style per-member cost-distribution table from a "
             "mined history",
    )
    learn_report.add_argument("--history", required=True, metavar="FILE",
                              help="learned history from 'repro learn mine'")
    add_report_arguments(learn_report)
    learn_report.set_defaults(func=_cmd_learn_report)

    port = sub.add_parser("portfolio", help="run a scheduler portfolio over a dataset")
    port.add_argument("--members", default=None,
                      help="comma-separated member pipelines, e.g. "
                           "'bspg+clairvoyant,cilk+lru,ilp,dac'")
    port.add_argument("--pipeline", action="append", default=None, metavar="SPEC",
                      help="add one pipeline spec as a member (repeatable), "
                           "e.g. --pipeline 'bspg+clairvoyant|refine|ilp'")
    port.add_argument("--list-members", action="store_true",
                      help="print every member name with its canonical "
                           "pipeline spec and exit")
    port.add_argument("--which", choices=["tiny", "small"], default="tiny")
    port.add_argument("--scale", choices=["default", "paper"], default="default")
    port.add_argument("--limit", type=int, default=None, help="only the first N instances")
    port.add_argument("--processors", "-p", type=int, default=4)
    port.add_argument("--time-limit", type=float, default=5.0)
    add_backend_argument(port)
    port.add_argument("--prune-gap", type=float, default=0.0,
                      help="skip ILP members whose baseline is provably within "
                           "this relative gap of the theory lower bound "
                           "(default 0.0 = only provably optimal baselines, "
                           "which never changes the reported best costs)")
    port.add_argument("--no-prune", action="store_true",
                      help="disable bound-aware ILP pruning entirely")
    port.add_argument("--select", choices=["exhaustive", "adaptive"],
                      default="exhaustive",
                      help="adaptive runs only the members a mined history "
                           "predicts are worth it (repro.learn); exhaustive "
                           "runs every member (default)")
    port.add_argument("--top-k", type=int, default=3,
                      help="members to run per instance under --select "
                           "adaptive (default 3)")
    port.add_argument("--history", default=None, metavar="FILE",
                      help="learned history from 'repro learn mine'; "
                           "adaptive without one warns and falls back to "
                           "exhaustive evaluation")
    port.add_argument("--selector", choices=["greedy", "knn"],
                      default="greedy",
                      help="adaptive ranking model (default greedy)")
    add_engine_arguments(port)
    add_refine_arguments(port)
    port.set_defaults(func=_cmd_portfolio)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
