"""Portfolio members: named scheduler pipelines runnable on any instance.

A *member* is a string naming one complete scheduling pipeline:

* ``"<first-stage>+<policy>"`` — a two-stage pipeline, e.g.
  ``"bspg+clairvoyant"``, ``"cilk+lru"``, ``"etf+clairvoyant"`` or
  ``"dfs+clairvoyant"`` (the latter only applies to ``P = 1`` instances);
* ``"ilp"`` — the holistic ILP scheduler warm-started from the baseline;
* ``"dac"`` — the divide-and-conquer ILP for larger DAGs.

:func:`run_member` evaluates one member on one instance and reports the
achieved :func:`~repro.model.cost.schedule_cost` as an
:class:`~repro.experiments.runner.InstanceResult` (both cost fields carry
the member's cost; ``extra_costs["member_cost"]`` repeats it for table
code).  For deterministic members the ``solver_status`` field carries a
digest of the produced schedule, so callers can assert two runs produced
*bit-identical* schedules, not merely equal costs.  Members that do not
apply to an instance (e.g. ``dfs`` with ``P > 1``) report an infinite cost
instead of failing the whole sweep.

**Bound-aware pruning** (``prune_gap``): for the warm-started holistic
``ilp`` member the two-stage baseline cost is compared against the
:func:`repro.theory.bounds.instance_lower_bound` of the instance first.
When ``baseline <= (1 + prune_gap) * bound`` the baseline is provably
near-optimal and the (expensive) ILP solve is skipped entirely: the member
reports the baseline cost, the skip reason lands in ``solver_status``
(prefix ``"skipped:"``) and ``extra_costs`` carries ``lower_bound`` and
``pruned = 1.0``.  At the default gap ``0.0`` a skip requires the baseline
to *match* the bound, so pruning can never change the member's reported
cost: the warm-started ILP would have returned the baseline anyway.  The
``dac`` member is deliberately *not* pruned — its contract is to report the
divide-and-conquer schedule as-is (which may differ from the baseline in
either direction), so substituting the baseline would change results.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    run_divide_and_conquer_instance,
    run_instance,
)
from repro.core.two_stage import baseline_schedule, run_two_stage
from repro.model.schedule import MbspSchedule
from repro.model.serialization import schedule_to_dict
from repro.theory.bounds import instance_lower_bound

#: The default portfolio evaluated by :class:`repro.portfolio.Portfolio`.
DEFAULT_MEMBERS = ("bspg+clairvoyant", "cilk+lru", "ilp")

#: Members supporting bound-aware pruning: only the warm-started holistic
#: ILP, whose keep-the-baseline semantics make a skip provably cost-neutral.
PRUNABLE_MEMBERS = ("ilp",)

#: ``solver_status`` prefix of results whose ILP solve was pruned.
PRUNED_STATUS_PREFIX = "skipped:"

#: All first-stage/policy combinations exposed as two-stage members.
TWO_STAGE_SCHEDULERS = ("bspg", "cilk", "etf", "dfs", "bsp-ilp")
TWO_STAGE_POLICIES = ("clairvoyant", "lru", "fifo")


def available_members() -> List[str]:
    """Every member name understood by :func:`run_member`."""
    members = [
        f"{scheduler}+{policy}"
        for scheduler in TWO_STAGE_SCHEDULERS
        for policy in TWO_STAGE_POLICIES
    ]
    members += ["ilp", "dac"]
    return members


def schedule_digest(schedule: MbspSchedule) -> str:
    """Short stable digest of a schedule's exact superstep structure."""
    blob = json.dumps(schedule_to_dict(schedule), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def is_pruned(result: InstanceResult) -> bool:
    """Whether ``result`` reports a bound-pruned (skipped) ILP solve."""
    return result.solver_status.startswith(PRUNED_STATUS_PREFIX)


def _run_ilp_member(
    dag: ComputationalDag, config: ExperimentConfig, prune_gap: Optional[float]
) -> InstanceResult:
    """The holistic ILP member, with optional bound-aware pruning.

    When pruning is enabled the instance and baseline materialized for the
    bound check are reused by the ILP run, so the check itself costs only
    the (cheap) lower-bound evaluation.
    """
    if prune_gap is None or prune_gap < 0:
        return run_instance(dag, config)
    instance = config.instance_for(dag)
    bound = instance_lower_bound(instance, synchronous=config.synchronous)
    base = baseline_schedule(instance, synchronous=config.synchronous, seed=config.seed)
    if base.cost > (1.0 + prune_gap) * bound + 1e-9:
        return run_instance(dag, config, instance=instance, baseline=base)
    reason = (
        f"{PRUNED_STATUS_PREFIX} baseline cost {base.cost:g} is within "
        f"{prune_gap:.1%} of the lower bound {bound:g}; ILP solve pruned"
    )
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=base.cost,
        ilp_cost=base.cost,
        solver_status=reason,
        extra_costs={"member_cost": base.cost, "lower_bound": bound, "pruned": 1.0},
    )


def run_member(
    dag: ComputationalDag,
    config: ExperimentConfig,
    member: str,
    prune_gap: Optional[float] = None,
) -> InstanceResult:
    """Evaluate one portfolio ``member`` on ``dag`` under ``config``.

    ``prune_gap`` enables bound-aware pruning for the ``ilp`` member (see
    the module docstring); ``None`` (the default) disables it.
    """
    name = member.strip().lower()
    if name == "ilp":
        result = _run_ilp_member(dag, config, prune_gap)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    if name in ("dac", "divide-and-conquer"):
        result = run_divide_and_conquer_instance(dag, config)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    scheduler, sep, policy = name.partition("+")
    if not sep:
        raise ConfigurationError(
            f"unknown portfolio member {member!r}; "
            f"expected 'ilp', 'dac' or '<scheduler>+<policy>' "
            f"(see repro.portfolio.available_members())"
        )
    instance = config.instance_for(dag)
    bsp_ilp_config = None
    if scheduler in ("bsp-ilp", "bsp_ilp", "ilp"):
        # the first-stage ILP must honour the configured backend and budgets:
        # the engine's job hash covers them, so solving with anything else
        # would poison backend-comparison sweeps through the result cache
        from repro.bsp.ilp import BspIlpConfig
        from repro.ilp import SolverOptions

        bsp_ilp_config = BspIlpConfig(
            solver_options=SolverOptions(
                time_limit=config.ilp_time_limit, node_limit=config.ilp_node_limit
            ),
            backend=config.ilp_backend,
        )
    try:
        two_stage = run_two_stage(
            instance,
            scheduler=scheduler,
            policy=policy or None,
            synchronous=config.synchronous,
            seed=config.seed,
            bsp_ilp_config=bsp_ilp_config,
        )
    except ConfigurationError as exc:
        # e.g. the DFS first stage on a multi-processor instance: the member
        # simply does not compete on this instance
        return InstanceResult(
            instance_name=dag.name,
            num_nodes=dag.num_nodes,
            baseline_cost=math.inf,
            ilp_cost=math.inf,
            solver_status=f"inapplicable: {exc}",
            extra_costs={"member_cost": math.inf},
        )
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=two_stage.cost,
        ilp_cost=two_stage.cost,
        solver_status=f"schedule:{schedule_digest(two_stage.mbsp_schedule)}",
        extra_costs={"member_cost": two_stage.cost},
    )
