"""Portfolio members: named scheduler pipelines runnable on any instance.

A *member* is a string naming one complete scheduling pipeline:

* ``"<first-stage>+<policy>"`` — a two-stage pipeline, e.g.
  ``"bspg+clairvoyant"``, ``"cilk+lru"``, ``"etf+clairvoyant"`` or
  ``"dfs+clairvoyant"`` (the latter only applies to ``P = 1`` instances);
* ``"ilp"`` — the holistic ILP scheduler warm-started from the baseline;
* ``"dac"`` — the divide-and-conquer ILP for larger DAGs.

:func:`run_member` evaluates one member on one instance and reports the
achieved :func:`~repro.model.cost.schedule_cost` as an
:class:`~repro.experiments.runner.InstanceResult` (both cost fields carry
the member's cost; ``extra_costs["member_cost"]`` repeats it for table
code).  For deterministic members the ``solver_status`` field carries a
digest of the produced schedule, so callers can assert two runs produced
*bit-identical* schedules, not merely equal costs.  Members that do not
apply to an instance (e.g. ``dfs`` with ``P > 1``) report an infinite cost
instead of failing the whole sweep.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    run_divide_and_conquer_instance,
    run_instance,
)
from repro.core.two_stage import run_two_stage
from repro.model.schedule import MbspSchedule
from repro.model.serialization import schedule_to_dict

#: The default portfolio evaluated by :class:`repro.portfolio.Portfolio`.
DEFAULT_MEMBERS = ("bspg+clairvoyant", "cilk+lru", "ilp")

#: All first-stage/policy combinations exposed as two-stage members.
TWO_STAGE_SCHEDULERS = ("bspg", "cilk", "etf", "dfs", "bsp-ilp")
TWO_STAGE_POLICIES = ("clairvoyant", "lru", "fifo")


def available_members() -> List[str]:
    """Every member name understood by :func:`run_member`."""
    members = [
        f"{scheduler}+{policy}"
        for scheduler in TWO_STAGE_SCHEDULERS
        for policy in TWO_STAGE_POLICIES
    ]
    members += ["ilp", "dac"]
    return members


def schedule_digest(schedule: MbspSchedule) -> str:
    """Short stable digest of a schedule's exact superstep structure."""
    blob = json.dumps(schedule_to_dict(schedule), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def run_member(dag: ComputationalDag, config: ExperimentConfig, member: str) -> InstanceResult:
    """Evaluate one portfolio ``member`` on ``dag`` under ``config``."""
    name = member.strip().lower()
    if name == "ilp":
        result = run_instance(dag, config)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    if name in ("dac", "divide-and-conquer"):
        result = run_divide_and_conquer_instance(dag, config)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    scheduler, sep, policy = name.partition("+")
    if not sep:
        raise ConfigurationError(
            f"unknown portfolio member {member!r}; "
            f"expected 'ilp', 'dac' or '<scheduler>+<policy>' "
            f"(see repro.portfolio.available_members())"
        )
    instance = config.instance_for(dag)
    try:
        two_stage = run_two_stage(
            instance,
            scheduler=scheduler,
            policy=policy or None,
            synchronous=config.synchronous,
            seed=config.seed,
        )
    except ConfigurationError as exc:
        # e.g. the DFS first stage on a multi-processor instance: the member
        # simply does not compete on this instance
        return InstanceResult(
            instance_name=dag.name,
            num_nodes=dag.num_nodes,
            baseline_cost=math.inf,
            ilp_cost=math.inf,
            solver_status=f"inapplicable: {exc}",
            extra_costs={"member_cost": math.inf},
        )
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=two_stage.cost,
        ilp_cost=two_stage.cost,
        solver_status=f"schedule:{schedule_digest(two_stage.mbsp_schedule)}",
        extra_costs={"member_cost": two_stage.cost},
    )
