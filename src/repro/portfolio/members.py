"""Portfolio members: declarative pipeline specs executed by one runner.

A *member* names one complete scheduling pipeline.  Since the
:mod:`repro.pipeline` redesign a member is simply a **pipeline spec** (see
:mod:`repro.pipeline.spec` for the ``"stage|stage|..."`` grammar); the
historical member names all remain valid and are pinned to the pipelines
that reproduce their historical behaviour exactly:

* ``"<first-stage>+<policy>"`` — a two-stage pipeline, e.g.
  ``"bspg+clairvoyant"``, ``"cilk+lru"``, ``"etf+clairvoyant"`` or
  ``"dfs+clairvoyant"`` (the latter only applies to ``P = 1`` instances);
* ``"ilp"`` — the holistic ILP scheduler warm-started from the baseline
  (canonically ``"baseline|ilp(warm=objective)"``);
* ``"dac"`` — the divide-and-conquer ILP for larger DAGs;
* ``"<member>+refine"`` — the member's schedule post-optimized by the
  local-search refinement engine (``"ilp+refine"`` refines the baseline,
  seeds the ILP with the refined incumbent and refines the solver's best).

Anything else is parsed as a pipeline spec, so new members are one-line
specs — ``"bspg+clairvoyant|refine|ilp"`` chains a heuristic, local search
and the exact ILP (fed the refined schedule as a full warm-start solution)
without any new dispatch code.

:func:`run_member` evaluates one member on one instance and reports the
achieved cost as an :class:`~repro.experiments.runner.InstanceResult` (both
cost fields carry the member's cost; ``extra_costs["member_cost"]`` repeats
it for table code).  For deterministic members the ``solver_status`` field
carries a digest of the produced schedule, so callers can assert two runs
produced *bit-identical* schedules, not merely equal costs.  Members that do
not apply to an instance (e.g. ``dfs`` with ``P > 1``) report an infinite
cost instead of failing the whole sweep.

**Bound-aware pruning** (``prune_gap``) is decided per stage by the pipeline
runner: before a prunable stage (``ilp``, ``refine``) runs, the incumbent
cost is compared against :func:`repro.theory.bounds.instance_lower_bound`,
and the stage is skipped when the incumbent is provably within the gap of
optimal (the skip reason lands in ``solver_status`` with the ``"skipped:"``
prefix, and ``extra_costs`` carries ``lower_bound`` and ``pruned = 1.0``).
At the default gap ``0.0`` a skip requires the incumbent to *match* the
bound, so pruning can never change the member's reported cost.  The ``dac``
stage is deliberately not prunable — its contract is to report the
divide-and-conquer schedule as-is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentConfig, InstanceResult
from repro.pipeline import (
    LEGACY_MEMBER_SPECS,
    PRUNED_STATUS_PREFIX,
    REFINE_SUFFIX,
    Pipeline,
    canonicalize,
    legacy_member_names,
    parse,
    schedule_digest,
)
from repro.pipeline.stages import TWO_STAGE_POLICIES, TWO_STAGE_SCHEDULERS

__all__ = [
    "DEFAULT_MEMBERS",
    "MEMBER_SPECS",
    "PRUNABLE_MEMBERS",
    "PRUNED_STATUS_PREFIX",
    "REFINE_SUFFIX",
    "TWO_STAGE_POLICIES",
    "TWO_STAGE_SCHEDULERS",
    "available_members",
    "base_member_name",
    "is_pruned",
    "is_prunable_member",
    "is_refined_member",
    "member_descriptions",
    "resolve_member",
    "run_member",
    "schedule_digest",
]

#: The default portfolio evaluated by :class:`repro.portfolio.Portfolio`.
DEFAULT_MEMBERS = ("bspg+clairvoyant", "cilk+lru", "ilp")

#: Legacy member name -> canonical pipeline spec (the declarative member
#: table; every entry is executed by the generic :class:`Pipeline` runner).
MEMBER_SPECS: Dict[str, str] = dict(LEGACY_MEMBER_SPECS)

#: Members supporting bound-aware pruning (legacy tuple; prefer
#: :func:`is_prunable_member`, which also understands pipeline specs).
PRUNABLE_MEMBERS = ("ilp",)


def available_members() -> List[str]:
    """Every legacy member name understood by :func:`run_member`.

    Every base member also exists in a ``"<member>+refine"`` variant that
    post-optimizes the base schedule with the local-search refinement
    engine.  Beyond these names, any pipeline spec
    (``"bspg+clairvoyant|refine|ilp"``; see :mod:`repro.pipeline.spec`) is a
    valid member too.
    """
    return legacy_member_names()


def member_descriptions() -> List[Tuple[str, str]]:
    """``(member, canonical spec)`` for every legacy member name."""
    return [(member, MEMBER_SPECS[member]) for member in available_members()]


def resolve_member(member: str) -> str:
    """Canonical pipeline spec for a member name or raw spec.

    Raises :class:`~repro.exceptions.ConfigurationError` for names that are
    neither a known member nor a parseable pipeline spec, listing both the
    member names and the registered stages.
    """
    try:
        return canonicalize(member)
    except ConfigurationError as exc:
        from repro.pipeline import available_stages

        raise ConfigurationError(
            f"unknown portfolio member {member!r} ({exc}); expected one of "
            f"the member names {available_members()} or a pipeline spec "
            f"'stage|stage|...' over the stages {available_stages()} "
            f"(see 'repro pipeline list')"
        ) from None


def is_refined_member(member: str) -> bool:
    """Whether ``member`` names a refined (``"...+refine"``) pipeline."""
    return member.strip().lower().endswith(REFINE_SUFFIX)


def base_member_name(member: str) -> str:
    """The base pipeline of a refined member (identity for base members)."""
    name = member.strip().lower()
    return name[: -len(REFINE_SUFFIX)] if name.endswith(REFINE_SUFFIX) else name


def is_prunable_member(member: str) -> bool:
    """Whether bound-aware pruning may skip work for ``member`` cost-neutrally.

    True exactly when the member's pipeline contains a prunable stage
    (``ilp`` or ``refine``): skipping such a stage keeps the incumbent,
    which the stage could not have improved on a bound-matching instance.
    """
    try:
        spec = parse(member)
    except ConfigurationError:
        return False
    return any(stage.prunable for stage in spec.build_stages())


def is_pruned(result: InstanceResult) -> bool:
    """Whether ``result`` reports bound-pruned (skipped) pipeline stages."""
    return result.solver_status.startswith(PRUNED_STATUS_PREFIX)


def run_member(
    dag: ComputationalDag,
    config: ExperimentConfig,
    member: str,
    prune_gap: Optional[float] = None,
) -> InstanceResult:
    """Evaluate one portfolio ``member`` (name or pipeline spec) on ``dag``.

    ``prune_gap`` enables per-stage bound-aware pruning for the prunable
    stages (see the module docstring); ``None`` (the default) disables it.
    """
    pipeline = Pipeline(resolve_member(member))
    gap = prune_gap if prune_gap is not None and prune_gap >= 0 else None
    return pipeline.run(dag, config, prune_gap=gap).to_instance_result()
