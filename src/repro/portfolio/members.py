"""Portfolio members: named scheduler pipelines runnable on any instance.

A *member* is a string naming one complete scheduling pipeline:

* ``"<first-stage>+<policy>"`` — a two-stage pipeline, e.g.
  ``"bspg+clairvoyant"``, ``"cilk+lru"``, ``"etf+clairvoyant"`` or
  ``"dfs+clairvoyant"`` (the latter only applies to ``P = 1`` instances);
* ``"ilp"`` — the holistic ILP scheduler warm-started from the baseline;
* ``"dac"`` — the divide-and-conquer ILP for larger DAGs.

:func:`run_member` evaluates one member on one instance and reports the
achieved :func:`~repro.model.cost.schedule_cost` as an
:class:`~repro.experiments.runner.InstanceResult` (both cost fields carry
the member's cost; ``extra_costs["member_cost"]`` repeats it for table
code).  For deterministic members the ``solver_status`` field carries a
digest of the produced schedule, so callers can assert two runs produced
*bit-identical* schedules, not merely equal costs.  Members that do not
apply to an instance (e.g. ``dfs`` with ``P > 1``) report an infinite cost
instead of failing the whole sweep.

**Bound-aware pruning** (``prune_gap``): for the warm-started holistic
``ilp`` member the two-stage baseline cost is compared against the
:func:`repro.theory.bounds.instance_lower_bound` of the instance first.
When ``baseline <= (1 + prune_gap) * bound`` the baseline is provably
near-optimal and the (expensive) ILP solve is skipped entirely: the member
reports the baseline cost, the skip reason lands in ``solver_status``
(prefix ``"skipped:"``) and ``extra_costs`` carries ``lower_bound`` and
``pruned = 1.0``.  At the default gap ``0.0`` a skip requires the baseline
to *match* the bound, so pruning can never change the member's reported
cost: the warm-started ILP would have returned the baseline anyway.  The
``dac`` member is deliberately *not* pruned — its contract is to report the
divide-and-conquer schedule as-is (which may differ from the baseline in
either direction), so substituting the baseline would change results.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    run_divide_and_conquer,
    run_divide_and_conquer_instance,
    run_instance,
)
from repro.core.scheduler import MbspIlpScheduler
from repro.core.two_stage import TwoStageResult, baseline_schedule, run_two_stage
from repro.model.schedule import MbspSchedule
from repro.model.serialization import schedule_to_dict
from repro.refine import Refiner
from repro.theory.bounds import instance_lower_bound

#: The default portfolio evaluated by :class:`repro.portfolio.Portfolio`.
DEFAULT_MEMBERS = ("bspg+clairvoyant", "cilk+lru", "ilp")

#: Suffix naming the refined variant of any base member: the base pipeline
#: runs first and its schedule is post-optimized by :mod:`repro.refine`.
REFINE_SUFFIX = "+refine"

#: Members supporting bound-aware pruning: the warm-started holistic ILP,
#: whose keep-the-baseline semantics make a skip provably cost-neutral.
#: Refined members are *also* prunable (refinement never increases cost, so
#: at gap 0 a bound-matching base schedule cannot be improved) — use
#: :func:`is_prunable_member` rather than this legacy tuple.
PRUNABLE_MEMBERS = ("ilp",)

#: ``solver_status`` prefix of results whose ILP solve was pruned.
PRUNED_STATUS_PREFIX = "skipped:"

#: All first-stage/policy combinations exposed as two-stage members.
TWO_STAGE_SCHEDULERS = ("bspg", "cilk", "etf", "dfs", "bsp-ilp")
TWO_STAGE_POLICIES = ("clairvoyant", "lru", "fifo")


def available_members() -> List[str]:
    """Every member name understood by :func:`run_member`.

    Every base member also exists in a ``"<member>+refine"`` variant that
    post-optimizes the base schedule with the local-search refinement engine.
    """
    members = [
        f"{scheduler}+{policy}"
        for scheduler in TWO_STAGE_SCHEDULERS
        for policy in TWO_STAGE_POLICIES
    ]
    members += ["ilp", "dac"]
    return members + [member + REFINE_SUFFIX for member in members]


def is_refined_member(member: str) -> bool:
    """Whether ``member`` names a refined (``"...+refine"``) pipeline."""
    return member.strip().lower().endswith(REFINE_SUFFIX)


def base_member_name(member: str) -> str:
    """The base pipeline of a refined member (identity for base members)."""
    name = member.strip().lower()
    return name[: -len(REFINE_SUFFIX)] if name.endswith(REFINE_SUFFIX) else name


def is_prunable_member(member: str) -> bool:
    """Whether bound-aware pruning may skip work for ``member`` cost-neutrally.

    True for the warm-started holistic ``ilp`` (skipping the solve keeps the
    baseline, which the member would have reported anyway) and for every
    refined member (refinement never decreases below the lower bound and
    never increases cost, so a bound-matching base schedule is returned
    unchanged either way).
    """
    name = member.strip().lower()
    return name == "ilp" or name.endswith(REFINE_SUFFIX)


def schedule_digest(schedule: MbspSchedule) -> str:
    """Short stable digest of a schedule's exact superstep structure."""
    blob = json.dumps(schedule_to_dict(schedule), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def is_pruned(result: InstanceResult) -> bool:
    """Whether ``result`` reports a bound-pruned (skipped) ILP solve."""
    return result.solver_status.startswith(PRUNED_STATUS_PREFIX)


def _within_gap(cost: float, bound: float, prune_gap: float) -> bool:
    """The bound-pruning predicate: ``cost`` provably within the gap of optimal."""
    return cost <= (1.0 + prune_gap) * bound + 1e-9


def _run_ilp_member(
    dag: ComputationalDag, config: ExperimentConfig, prune_gap: Optional[float]
) -> InstanceResult:
    """The holistic ILP member, with optional bound-aware pruning.

    When pruning is enabled the instance and baseline materialized for the
    bound check are reused by the ILP run, so the check itself costs only
    the (cheap) lower-bound evaluation.
    """
    if prune_gap is None or prune_gap < 0:
        return run_instance(dag, config)
    instance = config.instance_for(dag)
    bound = instance_lower_bound(instance, synchronous=config.synchronous)
    base = baseline_schedule(instance, synchronous=config.synchronous, seed=config.seed)
    if not _within_gap(base.cost, bound, prune_gap):
        return run_instance(dag, config, instance=instance, baseline=base)
    reason = (
        f"{PRUNED_STATUS_PREFIX} baseline cost {base.cost:g} is within "
        f"{prune_gap:.1%} of the lower bound {bound:g}; ILP solve pruned"
    )
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=base.cost,
        ilp_cost=base.cost,
        solver_status=reason,
        extra_costs={"member_cost": base.cost, "lower_bound": bound, "pruned": 1.0},
    )


def _two_stage_member(
    dag: ComputationalDag,
    config: ExperimentConfig,
    scheduler: str,
    policy: str,
    instance=None,
):
    """Run one two-stage pipeline; shared by base and refined members."""
    if instance is None:
        instance = config.instance_for(dag)
    bsp_ilp_config = None
    if scheduler in ("bsp-ilp", "bsp_ilp", "ilp"):
        # the first-stage ILP must honour the configured backend and budgets:
        # the engine's job hash covers them, so solving with anything else
        # would poison backend-comparison sweeps through the result cache
        from repro.bsp.ilp import BspIlpConfig
        from repro.ilp import SolverOptions

        bsp_ilp_config = BspIlpConfig(
            solver_options=SolverOptions(
                time_limit=config.ilp_time_limit, node_limit=config.ilp_node_limit
            ),
            backend=config.ilp_backend,
        )
    return run_two_stage(
        instance,
        scheduler=scheduler,
        policy=policy or None,
        synchronous=config.synchronous,
        seed=config.seed,
        bsp_ilp_config=bsp_ilp_config,
    ), instance


def _inapplicable_result(dag: ComputationalDag, exc: Exception) -> InstanceResult:
    """Members that do not apply (e.g. dfs with P > 1) report infinite cost."""
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=math.inf,
        ilp_cost=math.inf,
        solver_status=f"inapplicable: {exc}",
        extra_costs={"member_cost": math.inf},
    )


def _run_refined_member(
    dag: ComputationalDag,
    config: ExperimentConfig,
    member: str,
    prune_gap: Optional[float],
) -> InstanceResult:
    """A ``"<base>+refine"`` member: run the base pipeline, then local search.

    Bound-aware pruning (same logic as the ``ilp`` member): when the
    relevant incumbent is provably within ``prune_gap`` of the instance
    lower bound, the remaining work is skipped — for ``ilp+refine`` that is
    the whole refine-and-solve tail (the two-stage baseline stands), for
    other members just the refinement pass (the base schedule stands).
    Refinement never increases cost, so at the default gap ``0.0`` a skip
    is provably cost-neutral.

    The ``ilp+refine`` member demonstrates the intended production pipeline:
    the *refined* baseline seeds the holistic ILP (as its warm-start
    incumbent), and the solver's best schedule is refined once more.
    """
    base = base_member_name(member)
    prune = prune_gap is not None and prune_gap >= 0
    refiner = Refiner(config.refine)

    def refined_result(
        schedule: MbspSchedule, unrefined_cost: float, baseline_cost: float
    ) -> InstanceResult:
        refined = refiner.refine(schedule, synchronous=config.synchronous)
        cost = min(refined.final_cost, unrefined_cost)
        return InstanceResult(
            instance_name=dag.name,
            num_nodes=dag.num_nodes,
            baseline_cost=baseline_cost,
            ilp_cost=cost,
            solver_status=f"schedule:{schedule_digest(refined.schedule)}",
            extra_costs={"member_cost": cost, **refined.telemetry(unrefined_cost)},
        )

    def pruned_result(cost: float, bound: float) -> InstanceResult:
        reason = (
            f"{PRUNED_STATUS_PREFIX} base cost {cost:g} is within "
            f"{prune_gap:.1%} of the lower bound {bound:g}; refinement pruned"
        )
        return InstanceResult(
            instance_name=dag.name,
            num_nodes=dag.num_nodes,
            baseline_cost=cost,
            ilp_cost=cost,
            solver_status=reason,
            extra_costs={"member_cost": cost, "lower_bound": bound, "pruned": 1.0},
        )

    # the instance is only materialized when a branch actually needs it, and
    # the lower bound only for the branches that prune before running (the
    # two-stage branch defers it until the member proved applicable)
    instance = config.instance_for(dag) if (prune or base == "ilp") else None
    bound = None
    if prune and (base == "ilp" or base in ("dac", "divide-and-conquer")):
        bound = instance_lower_bound(instance, synchronous=config.synchronous)

    if base == "ilp":
        baseline = baseline_schedule(
            instance, synchronous=config.synchronous, seed=config.seed
        )
        if prune and _within_gap(baseline.cost, bound, prune_gap):
            return pruned_result(baseline.cost, bound)
        refined_base = refiner.refine(
            baseline.mbsp_schedule, synchronous=config.synchronous
        )
        # seed the holistic ILP with the refined incumbent: the solver only
        # searches for schedules strictly better than the refined baseline
        seeded = TwoStageResult(
            bsp_schedule=baseline.bsp_schedule,
            mbsp_schedule=refined_base.schedule,
            cost=refined_base.final_cost,
            scheduler_name=f"{baseline.scheduler_name}+refine",
            policy_name=baseline.policy_name,
        )
        ilp = MbspIlpScheduler(config.ilp_config()).schedule(instance, baseline=seeded)
        result = refined_result(ilp.best_schedule, ilp.best_cost, baseline.cost)
        result.solver_status = f"{ilp.solver_status}; {result.solver_status}"
        result.solve_time = ilp.solve_time
        return result
    if base in ("dac", "divide-and-conquer"):
        dac = run_divide_and_conquer(dag, config, instance=instance)
        if prune and _within_gap(dac.dac_cost, bound, prune_gap):
            result = pruned_result(dac.dac_cost, bound)
            result.baseline_cost = dac.baseline.cost
            return result
        result = refined_result(dac.dac_schedule, dac.dac_cost, dac.baseline.cost)
        result.extra_costs["parts"] = float(dac.partition.num_parts)
        return result
    scheduler, _, policy = base.partition("+")
    try:
        two_stage, instance = _two_stage_member(dag, config, scheduler, policy,
                                                instance=instance)
    except ConfigurationError as exc:
        return _inapplicable_result(dag, exc)
    if prune:
        bound = instance_lower_bound(instance, synchronous=config.synchronous)
        if _within_gap(two_stage.cost, bound, prune_gap):
            return pruned_result(two_stage.cost, bound)
    return refined_result(two_stage.mbsp_schedule, two_stage.cost, two_stage.cost)


def run_member(
    dag: ComputationalDag,
    config: ExperimentConfig,
    member: str,
    prune_gap: Optional[float] = None,
) -> InstanceResult:
    """Evaluate one portfolio ``member`` on ``dag`` under ``config``.

    ``prune_gap`` enables bound-aware pruning for the prunable members (the
    ``ilp`` member and every refined member, see the module docstring);
    ``None`` (the default) disables it.
    """
    name = member.strip().lower()
    if name.endswith(REFINE_SUFFIX):
        return _run_refined_member(dag, config, name, prune_gap)
    if name == "ilp":
        result = _run_ilp_member(dag, config, prune_gap)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    if name in ("dac", "divide-and-conquer"):
        result = run_divide_and_conquer_instance(dag, config)
        result.extra_costs["member_cost"] = result.ilp_cost
        return result
    scheduler, sep, policy = name.partition("+")
    if not sep:
        raise ConfigurationError(
            f"unknown portfolio member {member!r}; "
            f"expected 'ilp', 'dac' or '<scheduler>+<policy>' "
            f"(see repro.portfolio.available_members())"
        )
    try:
        two_stage, _ = _two_stage_member(dag, config, scheduler, policy)
    except ConfigurationError as exc:
        # e.g. the DFS first stage on a multi-processor instance: the member
        # simply does not compete on this instance
        return _inapplicable_result(dag, exc)
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=two_stage.cost,
        ilp_cost=two_stage.cost,
        solver_status=f"schedule:{schedule_digest(two_stage.mbsp_schedule)}",
        extra_costs={"member_cost": two_stage.cost},
    )
