"""Scheduler portfolio: evaluate several pipelines, keep the best per instance.

Public API: :class:`Portfolio`, :class:`PortfolioResult`,
:func:`run_member`, :data:`DEFAULT_MEMBERS`, :func:`available_members` and
:func:`format_portfolio_table`.
"""

from repro.portfolio.members import (
    DEFAULT_MEMBERS,
    available_members,
    run_member,
    schedule_digest,
)
from repro.portfolio.portfolio import Portfolio, PortfolioResult, format_portfolio_table

__all__ = [
    "DEFAULT_MEMBERS",
    "available_members",
    "run_member",
    "schedule_digest",
    "Portfolio",
    "PortfolioResult",
    "format_portfolio_table",
]
