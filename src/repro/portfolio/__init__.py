"""Scheduler portfolio: evaluate several pipelines, keep the best per instance.

Members are pipeline specs (see :mod:`repro.pipeline`); the legacy member
names remain valid aliases (:data:`MEMBER_SPECS` pins each to its canonical
spec).  Public API: :class:`Portfolio`, :class:`PortfolioResult`,
:func:`run_member`, :func:`resolve_member`, :data:`DEFAULT_MEMBERS`,
:func:`available_members`, :func:`is_pruned` and
:func:`format_portfolio_table`.
"""

from repro.portfolio.members import (
    DEFAULT_MEMBERS,
    MEMBER_SPECS,
    PRUNABLE_MEMBERS,
    PRUNED_STATUS_PREFIX,
    REFINE_SUFFIX,
    available_members,
    base_member_name,
    is_pruned,
    is_prunable_member,
    is_refined_member,
    member_descriptions,
    resolve_member,
    run_member,
    schedule_digest,
)
from repro.portfolio.portfolio import (
    Portfolio,
    PortfolioResult,
    format_portfolio_table,
    reduce_to_portfolio_rows,
)

__all__ = [
    "DEFAULT_MEMBERS",
    "MEMBER_SPECS",
    "PRUNABLE_MEMBERS",
    "PRUNED_STATUS_PREFIX",
    "REFINE_SUFFIX",
    "available_members",
    "base_member_name",
    "is_pruned",
    "is_prunable_member",
    "is_refined_member",
    "member_descriptions",
    "resolve_member",
    "run_member",
    "schedule_digest",
    "Portfolio",
    "PortfolioResult",
    "format_portfolio_table",
    "reduce_to_portfolio_rows",
]
