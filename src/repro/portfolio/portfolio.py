"""The scheduler portfolio: run several schedulers, keep the best per instance.

The ILP-based schedulers dominate on some instances and the cheap two-stage
pipelines on others (and the ILP is orders of magnitude more expensive), so
the natural production configuration is a *portfolio*: evaluate a set of
member pipelines on every instance — fanned out over the parallel experiment
engine — and report, per instance, the member achieving the lowest MBSP cost.

    >>> from repro.portfolio import Portfolio
    >>> portfolio = Portfolio()
    >>> winners = portfolio.run(["bspg+clairvoyant", "cilk+lru", "ilp"], dags,
    ...                         workers=4)
    >>> winners[0].best_member, winners[0].best_cost

Execution goes through the unified execution core (:mod:`repro.exec`):
the member x instance fan-out is a run plan executed by a ``Session``
(pass ``session=`` to share one, or the legacy ``engine=`` shim), so all
session services apply: ``workers=N`` parallelises over processes,
``cache_dir`` makes repeated sweeps free, and ``results_path``/``resume``
stream and resume long sweeps.

Members are **pipeline specs** (:mod:`repro.pipeline`): legacy names like
``"ilp"`` or ``"bspg+clairvoyant+refine"`` and raw specs like
``"bspg+clairvoyant|refine|ilp"`` or the backend race
``"baseline|race(ilp@bnb,ilp@scipy)"`` are equally valid; jobs are hashed
under the canonical spec, so two spellings of one pipeline share a cache
entry.

Three mechanisms make the expensive members cheaper or avoidable:

* ``config.ilp_backend`` selects the ILP solver backend per job
  (``scipy``/``bnb``/``auto``, see :mod:`repro.ilp.backends`);
* ``prune_gap`` enables *bound-aware pruning*, decided per pipeline stage:
  before a prunable stage (``ilp``, ``refine``) runs, the incumbent cost is
  compared against the instance's
  :func:`~repro.theory.bounds.instance_lower_bound`, and the stage is
  skipped (reporting the incumbent cost plus a ``skipped:`` status) when
  the incumbent is provably within the gap of optimal.  The default gap
  ``0.0`` only skips *provably optimal* incumbents and therefore never
  changes the portfolio's best costs; ``prune_gap=None`` disables pruning
  entirely.  (``dac`` is never pruned: it reports its schedule as-is.)
* *shared-prefix reuse*: members with a common stage prefix (``"m"`` and
  ``"m|refine"``) evaluate it once per instance within a run; the savings
  appear in the table footer (``format_portfolio_table(rows,
  reuse=portfolio.last_reuse)``).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.exec import RunPlan, Session
from repro.experiments.parallel import ExperimentEngine, ExperimentJob
from repro.experiments.runner import ExperimentConfig, InstanceResult
from repro.pipeline import StageReuseStats, stage_reuse_scope
from repro.portfolio.members import (
    DEFAULT_MEMBERS,
    PRUNED_STATUS_PREFIX,
    is_prunable_member,
    resolve_member,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.learn.history import LearnedHistory
    from repro.learn.select import SelectionReport


@dataclass
class PortfolioResult:
    """Per-instance outcome of a portfolio run."""

    instance_name: str
    num_nodes: int
    member_costs: Dict[str, float] = field(default_factory=dict)
    member_status: Dict[str, str] = field(default_factory=dict)
    best_member: str = ""
    best_cost: float = math.inf

    @property
    def has_winner(self) -> bool:
        """False when no member applied to the instance (all costs infinite)."""
        return bool(self.best_member)

    @property
    def ranking(self) -> List[str]:
        """Members from best (cheapest) to worst; ties keep portfolio order."""
        return sorted(self.member_costs, key=lambda m: self.member_costs[m])

    @property
    def pruned_members(self) -> List[str]:
        """Members whose ILP solve was skipped by bound-aware pruning."""
        return [
            member
            for member, status in self.member_status.items()
            if status.startswith(PRUNED_STATUS_PREFIX)
        ]

    @property
    def num_pruned(self) -> int:
        """Number of ILP solves skipped on this instance."""
        return len(self.pruned_members)


class Portfolio:
    """Evaluates a set of scheduler members and picks the best per instance."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        workers: int = 1,
        cache_dir=None,
        results_path=None,
        resume: bool = False,
        prune_gap: Optional[float] = 0.0,
        select: str = "exhaustive",
        top_k: Optional[int] = None,
        history: Optional[Union["LearnedHistory", str]] = None,
        selector: str = "greedy",
        seed: int = 0,
    ) -> None:
        self.config = config or ExperimentConfig(name="portfolio")
        self.workers = workers
        self.cache_dir = cache_dir
        self.results_path = results_path
        self.resume = resume
        # bound-aware pruning gap for the ILP-backed members; the default 0.0
        # skips only provably optimal baselines (cost-neutral by construction),
        # None disables pruning
        self.prune_gap = prune_gap
        # adaptive member selection (repro.learn): "adaptive" runs only the
        # predicted top_k members per instance, ranked by the selector over
        # the mined history; "exhaustive" (the default) runs everything and
        # remains the ground truth the history is mined from
        if select not in ("exhaustive", "adaptive"):
            raise ConfigurationError(
                f"unknown selection mode {select!r}; "
                f"expected 'exhaustive' or 'adaptive'"
            )
        self.select = select
        self.top_k = top_k
        self.history = history
        self.selector = selector
        self.seed = seed
        #: shared-prefix reuse statistics of the most recent :meth:`run`
        self.last_reuse: Optional[StageReuseStats] = None
        #: adaptive-selection report of the most recent :meth:`run`
        #: (``None`` after an exhaustive run)
        self.last_selection: Optional["SelectionReport"] = None

    def run(
        self,
        members: Optional[Sequence[str]] = None,
        dags: Sequence[ComputationalDag] = (),
        workers: Optional[int] = None,
        engine: Optional[ExperimentEngine] = None,
        session: Optional[Session] = None,
    ) -> List[PortfolioResult]:
        """Run every member on every DAG; return one result per DAG (in order).

        Execution goes through the unified execution core: the member x
        instance fan-out becomes a :class:`~repro.exec.RunPlan` run by a
        :class:`~repro.exec.Session` (pass ``session=`` to share one across
        runs, or the legacy ``engine=`` shim).  Jobs are submitted
        instance-major, so with ``workers > 1`` all members of all
        instances execute concurrently; the reduction to the per-instance
        winner happens deterministically in submission order (ties broken
        by the position in ``members``).
        """
        members = list(DEFAULT_MEMBERS) if members is None else list(members)
        if not members:
            raise ConfigurationError("a portfolio needs at least one member")
        # members may be legacy names or raw pipeline specs; jobs are
        # submitted (and hashed, and disk-cached) under the *canonical* spec,
        # so two spellings of the same pipeline share one cache entry
        canonical = {member: resolve_member(member) for member in members}
        prunable = {member: is_prunable_member(member) for member in canonical}
        if session is None:
            session = engine.session if engine is not None else Session(
                workers=self.workers if workers is None else workers,
                cache_dir=self.cache_dir,
                results_path=self.results_path,
                resume=self.resume,
            )
        dags = list(dags)

        def make_job(dag, member):
            # only members with prunable stages (ilp/refine) understand the
            # prune_gap parameter; keeping it off the other jobs keeps
            # their cache keys stable
            return ExperimentJob.make(
                "portfolio", dag, self.config, member=canonical[member], **(
                    {"prune_gap": self.prune_gap}
                    if self.prune_gap is not None and prunable[member]
                    else {}
                )
            )

        selection = self._plan_selection(members, canonical, dags)
        self.last_selection = selection
        if selection is not None:
            return self._run_adaptive(
                selection, members, dags, session, make_job
            )
        plan = RunPlan.from_jobs([
            make_job(dag, member)
            for dag in dags
            for member in members
        ])
        # shared-prefix reuse: members with a common stage prefix (e.g. "m"
        # and "m|refine") evaluate it once per instance when jobs execute in
        # this process; the scope's stats feed the table footer
        with stage_reuse_scope() as reuse:
            flat = session.run(plan)
        self.last_reuse = reuse.stats
        return reduce_to_portfolio_rows(members, dags, flat)

    # ------------------------------------------------------------------
    # adaptive selection (repro.learn)
    # ------------------------------------------------------------------
    def _plan_selection(self, members, canonical, dags):
        """The adaptive selection plan, or ``None`` for exhaustive mode.

        A missing history warns and falls back to exhaustive evaluation
        (the warn-and-fall-back convention of the ``REPRO_*`` knobs) — an
        adaptive request must never crash a sweep just because no history
        was mined yet.
        """
        if self.select != "adaptive":
            return None
        history = self.history
        if history is None:
            warnings.warn(
                "adaptive selection requested without a mined history; "
                "falling back to exhaustive evaluation (mine one with "
                "'repro learn mine' and pass history=...)",
                UserWarning,
                stacklevel=3,
            )
            return None
        if isinstance(history, (str, bytes)) or hasattr(history, "__fspath__"):
            from repro.learn.history import LearnedHistory

            history = LearnedHistory.load(history)
        from repro.learn.select import plan_selection

        return plan_selection(
            history,
            dags,
            self.config,
            members,
            canonical,
            top_k=self.top_k,
            selector=self.selector,
            seed=self.seed,
        )

    def _run_adaptive(self, selection, members, dags, session, make_job):
        """Run only the chosen members per instance; reduce the ragged batch.

        The chosen subsets preserve the member order and the job parameters
        of the exhaustive plan, so every submitted job is content-hash
        identical to its exhaustive counterpart (shared cache entries), and
        ``top_k >= len(members)`` degenerates to the exhaustive plan.
        Members skipped by selection contribute neither a cost nor a status
        to the row (they render as ``-`` in the table); the per-instance
        decisions live in :attr:`last_selection`.
        """
        jobs = []
        index: Dict[tuple, int] = {}
        for i, dag in enumerate(dags):
            for member in selection.selections[i].chosen:
                index[(i, member)] = len(jobs)
                jobs.append(make_job(dag, member))
        with stage_reuse_scope() as reuse:
            flat = session.run(RunPlan.from_jobs(jobs))
        self.last_reuse = reuse.stats
        out: List[PortfolioResult] = []
        for i, dag in enumerate(dags):
            row = PortfolioResult(
                instance_name=dag.name, num_nodes=dag.num_nodes
            )
            for member in members:
                slot = index.get((i, member))
                if slot is None:
                    continue  # skipped by selection
                result = flat[slot]
                cost = result.extra_costs.get("member_cost", result.ilp_cost)
                row.member_costs[member] = cost
                row.member_status[member] = result.solver_status
                if cost < row.best_cost:  # strict: first member wins ties
                    row.best_cost = cost
                    row.best_member = member
            out.append(row)
        selection.finalize(out)
        return out


def reduce_to_portfolio_rows(
    members: Sequence[str],
    dags: Sequence[ComputationalDag],
    flat: Sequence[InstanceResult],
) -> List[PortfolioResult]:
    """Reduce an instance-major ``members x dags`` result batch to one
    :class:`PortfolioResult` per instance (the winner-per-instance view).

    This is *the* reduction of the portfolio (``repro exec run`` shares
    it): winner = strictly lowest ``member_cost``, ties keep the first
    member in ``members`` order.
    """
    out: List[PortfolioResult] = []
    for i, dag in enumerate(dags):
        row = PortfolioResult(instance_name=dag.name, num_nodes=dag.num_nodes)
        for j, member in enumerate(members):
            result = flat[i * len(members) + j]
            cost = result.extra_costs.get("member_cost", result.ilp_cost)
            row.member_costs[member] = cost
            row.member_status[member] = result.solver_status
            if cost < row.best_cost:  # strict: first member wins ties
                row.best_cost = cost
                row.best_member = member
        out.append(row)
    return out


def format_portfolio_table(
    results: Sequence[PortfolioResult],
    reuse: Optional[StageReuseStats] = None,
    selection: Optional["SelectionReport"] = None,
) -> str:
    """Fixed-width text rendering of a portfolio run (one row per instance).

    Costs of members whose ILP solve was skipped by bound-aware pruning are
    marked with ``*`` and summarised in a footer line; pass the run's
    :class:`~repro.pipeline.StageReuseStats` (``Portfolio.last_reuse``) to
    also report the solver calls saved by shared-prefix reuse.  After an
    adaptive run, pass ``Portfolio.last_selection`` to append the
    selection/regret footer (members skipped by selection render as ``-``).
    """
    members: List[str] = []
    for row in results:
        for member in row.member_costs:
            if member not in members:
                members.append(member)
    header = f"{'instance':<20s} {'n':>5s}"
    for member in members:
        header += f" {member:>18s}"
    header += f"  {'winner':<18s}"
    lines = [header, "-" * len(header)]
    total_pruned = 0
    for row in results:
        line = f"{row.instance_name:<20s} {row.num_nodes:>5d}"
        pruned = set(row.pruned_members)
        total_pruned += len(pruned)
        for member in members:
            cost = row.member_costs.get(member, math.inf)
            if not math.isfinite(cost):
                line += f" {'-':>18s}"
            elif member in pruned:
                line += f" {cost:>17.1f}*"
            else:
                line += f" {cost:>18.1f}"
        line += f"  {row.best_member if row.has_winner else '(none applicable)':<18s}"
        lines.append(line)
    if total_pruned:
        lines.append(
            f"* {total_pruned} ILP solve(s) skipped by bound pruning "
            f"(baseline provably near-optimal)"
        )
    if reuse is not None and reuse.stages_reused:
        lines.append(f"= shared-prefix reuse: {reuse.describe()}")
    if selection is not None:
        lines.extend(selection.footer_lines())
    return "\n".join(lines)
