"""The scheduler portfolio: run several schedulers, keep the best per instance.

The ILP-based schedulers dominate on some instances and the cheap two-stage
pipelines on others (and the ILP is orders of magnitude more expensive), so
the natural production configuration is a *portfolio*: evaluate a set of
member pipelines on every instance — fanned out over the parallel experiment
engine — and report, per instance, the member achieving the lowest MBSP cost.

    >>> from repro.portfolio import Portfolio
    >>> portfolio = Portfolio()
    >>> winners = portfolio.run(["bspg+clairvoyant", "cilk+lru", "ilp"], dags,
    ...                         workers=4)
    >>> winners[0].best_member, winners[0].best_cost

All engine features apply: ``workers=N`` parallelises over processes,
``cache_dir`` makes repeated sweeps free, and ``results_path``/``resume``
stream and resume long sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.experiments.parallel import ExperimentEngine, ExperimentJob
from repro.experiments.runner import ExperimentConfig, InstanceResult
from repro.portfolio.members import DEFAULT_MEMBERS, available_members


@dataclass
class PortfolioResult:
    """Per-instance outcome of a portfolio run."""

    instance_name: str
    num_nodes: int
    member_costs: Dict[str, float] = field(default_factory=dict)
    member_status: Dict[str, str] = field(default_factory=dict)
    best_member: str = ""
    best_cost: float = math.inf

    @property
    def has_winner(self) -> bool:
        """False when no member applied to the instance (all costs infinite)."""
        return bool(self.best_member)

    @property
    def ranking(self) -> List[str]:
        """Members from best (cheapest) to worst; ties keep portfolio order."""
        return sorted(self.member_costs, key=lambda m: self.member_costs[m])


class Portfolio:
    """Evaluates a set of scheduler members and picks the best per instance."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        workers: int = 1,
        cache_dir=None,
        results_path=None,
        resume: bool = False,
    ) -> None:
        self.config = config or ExperimentConfig(name="portfolio")
        self.workers = workers
        self.cache_dir = cache_dir
        self.results_path = results_path
        self.resume = resume

    def run(
        self,
        members: Optional[Sequence[str]] = None,
        dags: Sequence[ComputationalDag] = (),
        workers: Optional[int] = None,
        engine: Optional[ExperimentEngine] = None,
    ) -> List[PortfolioResult]:
        """Run every member on every DAG; return one result per DAG (in order).

        Jobs are submitted instance-major, so with ``workers > 1`` all
        members of all instances execute concurrently; the reduction to the
        per-instance winner happens deterministically in submission order
        (ties broken by the position in ``members``).
        """
        members = list(DEFAULT_MEMBERS) if members is None else list(members)
        if not members:
            raise ConfigurationError("a portfolio needs at least one member")
        known = set(available_members())
        for member in members:
            if member not in known:
                raise ConfigurationError(
                    f"unknown portfolio member {member!r}; available: {sorted(known)}"
                )
        if engine is None:
            engine = ExperimentEngine(
                workers=self.workers if workers is None else workers,
                cache_dir=self.cache_dir,
                results_path=self.results_path,
                resume=self.resume,
            )
        dags = list(dags)
        jobs = [
            ExperimentJob.make("portfolio", dag, self.config, member=member)
            for dag in dags
            for member in members
        ]
        flat = engine.run(jobs)

        out: List[PortfolioResult] = []
        for i, dag in enumerate(dags):
            row = PortfolioResult(instance_name=dag.name, num_nodes=dag.num_nodes)
            for j, member in enumerate(members):
                result: InstanceResult = flat[i * len(members) + j]
                cost = result.extra_costs.get("member_cost", result.ilp_cost)
                row.member_costs[member] = cost
                row.member_status[member] = result.solver_status
                if cost < row.best_cost:  # strict: first member wins ties
                    row.best_cost = cost
                    row.best_member = member
            out.append(row)
        return out


def format_portfolio_table(results: Sequence[PortfolioResult]) -> str:
    """Fixed-width text rendering of a portfolio run (one row per instance)."""
    members: List[str] = []
    for row in results:
        for member in row.member_costs:
            if member not in members:
                members.append(member)
    header = f"{'instance':<20s} {'n':>5s}"
    for member in members:
        header += f" {member:>18s}"
    header += f"  {'winner':<18s}"
    lines = [header, "-" * len(header)]
    for row in results:
        line = f"{row.instance_name:<20s} {row.num_nodes:>5d}"
        for member in members:
            cost = row.member_costs.get(member, math.inf)
            line += f" {cost:>18.1f}" if math.isfinite(cost) else f" {'-':>18s}"
        line += f"  {row.best_member if row.has_winner else '(none applicable)':<18s}"
        lines.append(line)
    return "\n".join(lines)
