"""Checked-in finding baselines: grandfather old findings, gate new ones.

A baseline is a small JSON document listing known findings by
``(path, rule, line)``.  ``repro lint --baseline FILE`` subtracts the
baselined findings from the report, so CI fails only on *new* findings;
``repro lint --write-baseline`` regenerates the file (sorted, stable
key order) when a finding is deliberately accepted.

The match key excludes the message on purpose: rewording a diagnostic
must not un-grandfather a finding.  It *includes* the line number, so a
baselined finding that drifts (the file changed around it) resurfaces —
that is the desired behaviour: the edit touched the hazard, re-judge it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.lint.engine import Finding

#: Baseline document version (bump on schema changes).
BASELINE_VERSION = 1

#: Default baseline location (repo root, checked in).
DEFAULT_BASELINE = "lint-baseline.json"

BaselineKey = Tuple[str, str, int]


def baseline_from_findings(findings: Sequence[Finding]) -> dict:
    """The baseline document grandfathering exactly ``findings``."""
    entries = sorted(
        (
            {
                "path": f.path,
                "rule": f.rule,
                "line": f.line,
                "message": f.message,
            }
            for f in findings
        ),
        key=lambda e: (e["path"], e["line"], e["rule"]),
    )
    return {"version": BASELINE_VERSION, "findings": entries}


def write_baseline(path, findings: Sequence[Finding]) -> None:
    """Write the baseline file (sorted entries, sorted keys, newline-terminated)."""
    document = baseline_from_findings(findings)
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path) -> Set[BaselineKey]:
    """The grandfathered ``(path, rule, line)`` keys of a baseline file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"lint baseline {path!s} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"lint baseline {path!s} is not valid JSON: {exc}"
        ) from None
    if not isinstance(document, dict) or "findings" not in document:
        raise ConfigurationError(
            f"lint baseline {path!s} is malformed: expected an object with "
            f"a 'findings' list"
        )
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ConfigurationError(
            f"lint baseline {path!s} has version {version!r}; this build "
            f"reads version {BASELINE_VERSION}"
        )
    keys: Set[BaselineKey] = set()
    for entry in document["findings"]:
        try:
            keys.add((str(entry["path"]), str(entry["rule"]), int(entry["line"])))
        except (TypeError, KeyError, ValueError):
            raise ConfigurationError(
                f"lint baseline {path!s} has a malformed entry: {entry!r} "
                f"(expected path/rule/line)"
            ) from None
    return keys


def filter_baselined(
    findings: Sequence[Finding], baseline: Set[BaselineKey]
) -> List[Finding]:
    """The findings *not* grandfathered by ``baseline`` (order preserved)."""
    return [f for f in findings if f.baseline_key() not in baseline]
