"""Rule pack A: determinism & concurrency hazards.

Every rule here encodes a hazard class that has actually bitten this
codebase (see ISSUE/CHANGES history): salted ``hash()`` seeding,
wall-clock reads leaking into results, unordered ``set`` iteration
flowing into writers, shared temp-file races, blocking calls inside the
async Session core, and broad exception handlers masking cancellation.

The rules are deliberately conservative: each one targets the specific
shape the hazard takes in this repo, and the ``# repro: lint-ignore``
suppression plus the JSON baseline absorb the (rare) deliberate uses.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule, register_rule

#: Paths (posix, repo-relative substrings) where wall-clock reads are
#: legitimate: the observability layer timestamps spans/metrics by design
#: and is excluded from every determinism guarantee.
WALL_CLOCK_ALLOWLIST: Tuple[str, ...] = ("repro/obs/",)

#: ``random`` module-level functions that consult the shared global RNG.
_RANDOM_MODULE_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "vonmisesvariate", "paretovariate",
        "weibullvariate", "lognormvariate", "getrandbits", "randbytes",
        "seed", "setstate",
    }
)

#: Blocking calls that must not run on the event loop thread.
_BLOCKING_CALLS = frozenset(
    {"time.sleep", "os.system", "subprocess.run", "subprocess.call",
     "subprocess.check_call", "subprocess.check_output", "subprocess.Popen"}
)

#: ``tempfile`` factories whose ``suffix=``/``prefix=`` kwargs legitimately
#: carry fixed fragments like ``".tmp"`` (the file name itself is unique).
_TEMPFILE_FACTORIES = frozenset(
    {"mkstemp", "mkdtemp", "NamedTemporaryFile", "TemporaryFile",
     "SpooledTemporaryFile", "TemporaryDirectory"}
)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _is_call_to(node: ast.AST, *names: str) -> bool:
    return isinstance(node, ast.Call) and _dotted_name(node.func) in names


@register_rule
class HashOfIdRule(Rule):
    """``hash(... id(...) ...)`` — ``id()`` is a process-local address, so
    any hash/key derived from it differs across workers and shards."""

    id = "REP-D01"
    severity = "error"
    description = "id() feeding hash(): process-dependent hash/key material"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls_in(ctx.tree):
            if not _is_call_to(call, "hash"):
                continue
            for arg in call.args:
                for inner in _calls_in(arg):
                    if _is_call_to(inner, "id"):
                        yield ctx.finding(
                            self,
                            inner,
                            "id() inside hash(): id() is a process-local "
                            "address; derive the key from stable data "
                            "(ints, sorted content) instead",
                        )


@register_rule
class BuiltinHashRule(Rule):
    """Builtin ``hash()`` outside a ``__hash__`` method: str/bytes hashes
    are PYTHONHASHSEED-salted, so persisting or ordering by them is a
    cross-process determinism hazard."""

    id = "REP-D02"
    severity = "warning"
    description = "builtin hash() outside __hash__: PYTHONHASHSEED-salted"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        enclosing: List[str] = []

        def visit(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing.append(node.name)
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
                enclosing.pop()
                return
            if _is_call_to(node, "hash") and "__hash__" not in enclosing:
                yield ctx.finding(
                    self,
                    node,
                    "builtin hash() outside a __hash__ method: str/bytes "
                    "hashes are salted per process (PYTHONHASHSEED); use "
                    "hashlib over canonical bytes for persistent keys",
                )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        yield from visit(ctx.tree)


@register_rule
class WallClockRule(Rule):
    """Wall-clock reads outside the ``repro.obs`` allowlist: results and
    fingerprints must be pure functions of inputs + seed."""

    id = "REP-D03"
    severity = "error"
    description = "wall-clock read (time.time/datetime.now) outside repro.obs"

    _CLOCK_CALLS = frozenset(
        {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
         "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
         "datetime.datetime.today", "date.today", "datetime.date.today"}
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if any(fragment in ctx.path for fragment in WALL_CLOCK_ALLOWLIST):
            return
        for call in _calls_in(ctx.tree):
            name = _dotted_name(call.func)
            if name in self._CLOCK_CALLS:
                yield ctx.finding(
                    self,
                    call,
                    f"wall-clock read {name}() outside the repro.obs "
                    "allowlist: results must be pure functions of inputs + "
                    "seed (use obs spans for timing)",
                )


@register_rule
class GlobalRandomRule(Rule):
    """Module-level ``random.*`` calls share interpreter-global RNG state;
    every stochastic path here must thread an explicit
    ``random.Random(seed)`` instance."""

    id = "REP-D04"
    severity = "error"
    description = "module-level random.* call: use random.Random(seed)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls_in(ctx.tree):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in _RANDOM_MODULE_FUNCS
            ):
                yield ctx.finding(
                    self,
                    call,
                    f"random.{func.attr}() uses the shared global RNG; "
                    "thread an explicit random.Random(seed) instance",
                )


@register_rule
class SetIterationRule(Rule):
    """Iterating a set directly (for-loop or comprehension source) yields
    PYTHONHASHSEED-dependent order; wrap in ``sorted(...)`` before the
    order can flow into JSONL/fingerprint writers."""

    id = "REP-D05"
    severity = "warning"
    description = "iteration over a set expression: order is hash-salted"

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        return (
            isinstance(node, (ast.Set, ast.SetComp))
            or _is_call_to(node, "set", "frozenset")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield ctx.finding(
                        self,
                        it,
                        "iterating a set expression: element order depends "
                        "on PYTHONHASHSEED; wrap in sorted(...) before the "
                        "order can reach any writer or fingerprint",
                    )


@register_rule
class FixedTempFileRule(Rule):
    """A fixed ``*.tmp`` name in a module that also calls ``os.replace``
    is the shared-temp-file race that corrupted the cache store in PR 6;
    use ``tempfile.mkstemp`` for a unique name (its ``suffix=``/``prefix=``
    kwargs are exempt)."""

    id = "REP-D06"
    severity = "warning"
    description = "fixed-name '*.tmp' next to os.replace: multi-process race"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_replaces = any(
            _is_call_to(call, "os.replace") for call in _calls_in(ctx.tree)
        )
        if not module_replaces:
            return
        exempt: Set[int] = set()
        for call in _calls_in(ctx.tree):
            name = _dotted_name(call.func) or ""
            if name.split(".")[-1] in _TEMPFILE_FACTORIES:
                for kw in call.keywords:
                    if kw.arg in ("suffix", "prefix"):
                        exempt.add(id(kw.value))
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value.endswith(".tmp")
                and id(node) not in exempt
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"fixed temp name {node.value!r} in a module using "
                    "os.replace: concurrent processes clobber each other; "
                    "use tempfile.mkstemp for a unique name",
                )


@register_rule
class UnsortedDumpsRule(Rule):
    """``json.dumps`` without ``sort_keys=True`` fed directly into a
    ``.write(...)``/``.write_text(...)`` call: byte-stability of record
    files then depends on dict construction order."""

    id = "REP-D07"
    severity = "warning"
    description = "json.dumps without sort_keys=True inside a write call"

    @staticmethod
    def _dumps_without_sort(node: ast.AST) -> Optional[ast.Call]:
        """The offending json.dumps call inside ``node``, if any.

        Looks through string concatenation (``json.dumps(x) + "\\n"``)."""
        for call in _calls_in(node):
            if _is_call_to(call, "json.dumps"):
                sorts = any(
                    kw.arg == "sort_keys"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in call.keywords
                )
                if not sorts:
                    return call
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls_in(ctx.tree):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("write", "write_text")
            ):
                continue
            for arg in call.args:
                offender = self._dumps_without_sort(arg)
                if offender is not None:
                    yield ctx.finding(
                        self,
                        offender,
                        "json.dumps without sort_keys=True written to a "
                        "record file: key order then depends on dict "
                        "construction order, breaking byte-stable diffs",
                    )


@register_rule
class SetSumRule(Rule):
    """``sum(...)``/``math.fsum(...)`` over a set expression (directly or
    through a comprehension) accumulates floats in PYTHONHASHSEED-dependent
    order; float addition is not associative, so the total itself can
    differ between runs — sort the elements first."""

    id = "REP-D08"
    severity = "warning"
    description = "sum()/math.fsum() over a set expression: float order hazard"

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        return (
            isinstance(node, (ast.Set, ast.SetComp))
            or _is_call_to(node, "set", "frozenset")
        )

    @classmethod
    def _set_source(cls, node: ast.AST) -> Optional[ast.AST]:
        """The set expression the summation would iterate, if any."""
        if cls._is_set_expr(node):
            return node
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in node.generators:
                if cls._is_set_expr(gen.iter):
                    return gen.iter
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _calls_in(ctx.tree):
            name = _dotted_name(call.func)
            if name not in ("sum", "fsum", "math.fsum"):
                continue
            if not call.args:
                continue
            source = self._set_source(call.args[0])
            if source is not None:
                yield ctx.finding(
                    self,
                    call,
                    f"{name}() accumulates over a set expression: float "
                    "addition is order-dependent and set order is "
                    "hash-salted, so the total can change between runs; "
                    "sum(sorted(...)) pins the order",
                )


@register_rule
class BlockingInAsyncRule(Rule):
    """Blocking calls lexically inside ``async def`` stall the event loop
    (the Session core multiplexes all jobs on one loop)."""

    id = "REP-C01"
    severity = "error"
    description = "blocking call (sleep/subprocess/open) inside async def"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        def visit(node: ast.AST, in_async: bool) -> Iterator[Finding]:
            if isinstance(node, ast.AsyncFunctionDef):
                in_async = True
            elif isinstance(node, ast.FunctionDef):
                in_async = False  # nested sync def runs off-loop via executor
            if in_async and isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name in _BLOCKING_CALLS or name == "open":
                    yield ctx.finding(
                        self,
                        node,
                        f"blocking call {name}() inside async def stalls "
                        "the event loop; run it in an executor or use the "
                        "async equivalent",
                    )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, in_async)

        yield from visit(ctx.tree, False)


@register_rule
class BroadExceptRule(Rule):
    """``except Exception`` (or bare ``except:``) in Session/solver paths
    masks cancellation and real faults; catch the specific types."""

    id = "REP-C02"
    severity = "warning"
    description = "broad 'except Exception' / bare except handler"

    @staticmethod
    def _names(type_node: Optional[ast.AST]) -> List[Optional[str]]:
        if type_node is None:
            return [None]
        if isinstance(type_node, ast.Tuple):
            return [_dotted_name(el) for el in type_node.elts]
        return [_dotted_name(type_node)]

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = self._names(node.type)
            if None in names and node.type is not None:
                names = [n for n in names if n is not None]
            if node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt; name the expected exception types",
                )
            elif "Exception" in names:
                yield ctx.finding(
                    self, node,
                    "broad 'except Exception' masks unexpected faults; "
                    "catch the specific exception types this site expects",
                )


@register_rule
class SwallowedBaseExceptionRule(Rule):
    """``except BaseException`` that never re-raises swallows
    ``CancelledError``/``KeyboardInterrupt``; the legitimate pattern here
    (cross-thread error propagation) always stores-and-returns, and is
    suppressed explicitly where used."""

    id = "REP-C03"
    severity = "warning"
    description = "except BaseException without re-raise swallows cancellation"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            if not any(_dotted_name(t) == "BaseException" for t in types):
                continue
            reraises = any(
                isinstance(inner, ast.Raise)
                for stmt in node.body
                for inner in ast.walk(stmt)
            )
            if not reraises:
                yield ctx.finding(
                    self, node,
                    "'except BaseException' without a re-raise swallows "
                    "CancelledError/KeyboardInterrupt; re-raise, or "
                    "suppress explicitly if the handler propagates the "
                    "error by other means",
                )
