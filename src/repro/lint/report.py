"""Reporters and exit codes shared by ``repro lint`` and ``repro check``.

Exit codes are stable API (CI scripts key on them):

========================  ===
no gating findings          0
gating findings             1
usage / setup error         2
========================  ===

``info``-severity findings are reported but never gate — they exist for
advisory rules that should not fail CI.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Sequence

from repro.lint.engine import SEVERITIES, Finding

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Severities that gate (drive a non-zero exit code).
GATING_SEVERITIES = ("error", "warning")


def gating_findings(findings: Sequence[Finding]) -> List[Finding]:
    """The findings that should fail the run (errors and warnings)."""
    return [f for f in findings if f.severity in GATING_SEVERITIES]


def severity_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts


def render_text(findings: Sequence[Finding], out: IO[str]) -> None:
    """``path:line:col: RULE severity: message`` lines plus a summary."""
    ordered = sorted(findings, key=Finding.sort_key)
    for finding in ordered:
        out.write(finding.render() + "\n")
    counts = severity_counts(findings)
    summary = ", ".join(
        f"{counts[severity]} {severity}{'s' if counts[severity] != 1 else ''}"
        for severity in SEVERITIES
        if counts[severity]
    )
    if findings:
        out.write(f"{len(findings)} finding(s): {summary}\n")
    else:
        out.write("no findings\n")


def report_dict(
    findings: Sequence[Finding], *, baselined: int = 0
) -> Dict[str, object]:
    """The JSON report document (stable key order when dumped sorted)."""
    ordered = sorted(findings, key=Finding.sort_key)
    return {
        "findings": [f.to_dict() for f in ordered],
        "counts": severity_counts(findings),
        "baselined": baselined,
        "total": len(findings),
    }


def render_json(
    findings: Sequence[Finding], out: IO[str], *, baselined: int = 0
) -> None:
    """The machine-readable report (sorted keys: byte-stable for CI diffs)."""
    out.write(
        json.dumps(report_dict(findings, baselined=baselined), indent=2,
                   sort_keys=True)
        + "\n"
    )


def exit_code(findings: Sequence[Finding]) -> int:
    """The stable exit code for a set of (post-baseline) findings."""
    return EXIT_FINDINGS if gating_findings(findings) else EXIT_OK
