"""The rule engine of :mod:`repro.lint`.

The engine mirrors the registry idiom of :mod:`repro.ilp.backends` and
:mod:`repro.pipeline.registry`: rules register under a stable id
(``REP-D01``, ``REP-C02``, ...) with a severity and a one-line
description, and :func:`lint_paths` runs every (selected) rule over the
parsed AST of each Python file, returning sorted
:class:`Finding`\\ s.

Two escape hatches keep the analyzer usable on real code:

* **suppressions** — a ``# repro: lint-ignore[REP-D01]`` comment on the
  flagged line (or on the line directly above it) silences the named
  rule(s) there; ``# repro: lint-ignore`` without brackets silences every
  rule for that line.  Suppressions are deliberate and visible in the
  diff, unlike a baseline entry.
* **baselines** — :mod:`repro.lint.baseline` grandfathers existing
  findings in a checked-in JSON file so the CI gate only fails on *new*
  findings.

Rules are AST-based, not regex-based: a rule's :meth:`Rule.check`
receives a :class:`FileContext` with the parsed tree, the source lines
and the repo-relative path, and yields findings.  A file that does not
parse produces the engine-level ``REP-P01`` finding instead of crashing
the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError

#: Severity levels, most severe first (the reporters sort findings with
#: errors before warnings before notes at equal location).
SEVERITIES = ("error", "warning", "info")

#: Suppression comment:  ``# repro: lint-ignore[REP-D01,REP-C02]``  or the
#: bracket-free ``# repro: lint-ignore`` silencing every rule on the line.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ignore(?:\[(?P<rules>[A-Za-z0-9,\-\s]*)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a file position (or, for the
    semantic checker, to a virtual source such as ``<spec:...>``)."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, int]:
        """The identity used for baseline matching (message-insensitive,
        so rewording a diagnostic does not un-grandfather a finding)."""
        return (self.path, self.rule, self.line)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    path: str                 # repo-relative posix path (reported)
    text: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    #: line number -> suppressed rule ids ("*" suppresses every rule)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether a suppression comment covers the finding's line (the
        marker may sit on the line itself or on the line directly above)."""
        for line in (finding.line, finding.line - 1):
            rules = self.suppressions.get(line)
            if rules is not None and ("*" in rules or finding.rule in rules):
                return True
        return False


class Rule:
    """Base class of all lint rules.

    Subclasses set ``id`` (stable, ``REP-<pack><nn>``), ``severity`` and
    ``description``, and implement :meth:`check`.
    """

    id: str = ""
    severity: str = "warning"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# registry (mirroring repro.ilp.backends / repro.pipeline.registry)
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule):
    """Register a rule (instance or class — classes are usable as a
    decorator) under its id.

    Re-registering an id replaces the previous rule (useful in tests);
    a malformed id or severity is rejected up front, like the stage and
    backend registries.  Returns the argument unchanged, so decorated
    classes stay classes.
    """
    registered = rule() if isinstance(rule, type) else rule
    if not re.fullmatch(r"REP-[A-Z]\d{2}", registered.id or ""):
        raise ConfigurationError(
            f"lint rule id {registered.id!r} is malformed; expected "
            f"'REP-<letter><nn>' (e.g. 'REP-D01')"
        )
    if registered.severity not in SEVERITIES:
        raise ConfigurationError(
            f"lint rule {registered.id}: unknown severity "
            f"{registered.severity!r}; expected one of {SEVERITIES}"
        )
    _REGISTRY[registered.id] = registered
    return rule


def available_rules() -> List[str]:
    """Sorted ids of all registered rules."""
    return sorted(_REGISTRY)


def rule_descriptions() -> List[Tuple[str, str, str]]:
    """``(id, severity, description)`` triples of all rules, sorted by id."""
    return [
        (rule_id, _REGISTRY[rule_id].severity, _REGISTRY[rule_id].description)
        for rule_id in available_rules()
    ]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (case-insensitive)."""
    key = str(rule_id).strip().upper()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r}; available rules: {available_rules()}"
        ) from None


def select_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rules to run: all registered ones, or the named subset."""
    if not rule_ids:
        return [_REGISTRY[rule_id] for rule_id in available_rules()]
    return [get_rule(rule_id) for rule_id in rule_ids]


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def scan_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line numbers (1-based) to the rule ids suppressed there."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = {"*"}
        else:
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            suppressions[lineno] = ids or {"*"}
    return suppressions


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
class _ParseErrorRule(Rule):
    id = "REP-P01"
    severity = "error"
    description = "file does not parse as Python (syntax error)"


PARSE_ERROR_RULE = register_rule(_ParseErrorRule())


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files or directories),
    sorted, skipping hidden directories and ``__pycache__``."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(
                    part.startswith(".") or part == "__pycache__"
                    for part in p.parts
                )
            )
        else:
            raise ConfigurationError(f"lint path {raw!r} does not exist")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_file(
    path: Path, rules: Sequence[Rule], root: Optional[Path] = None
) -> List[Finding]:
    """Run ``rules`` over one file; suppression comments are honoured."""
    root = root if root is not None else Path.cwd()
    rel = _relative(path, root)
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE.id,
                severity=PARSE_ERROR_RULE.severity,
                path=rel,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=rel,
        text=text,
        tree=tree,
        lines=text.splitlines(),
        suppressions=scan_suppressions(text),
    )
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` and return sorted findings."""
    rules = [
        rule for rule in select_rules(rule_ids) if rule.id != PARSE_ERROR_RULE.id
    ]
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules, root=root))
    findings.sort(key=Finding.sort_key)
    return findings
