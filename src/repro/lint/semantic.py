"""Rule pack B: the semantic checker for specs, plans and serve configs.

Unlike pack A (:mod:`repro.lint.rules`), these checks do not read source
files — they validate *configuration* the way the runtime would, without
executing anything: pipeline specs are parsed and built through the real
spec parser and stage registry (so every check is resolution-level-true,
not regex guesswork), plans go through the real :class:`RunPlan`
constructor, shard counts through the real :func:`shard_assignment`, and
serve policy tiers through the real ``resolve_member``.

Findings reuse the :class:`~repro.lint.engine.Finding` shape with a
virtual path such as ``<spec:baseline|ilp>`` or ``<policy.rich>``, so the
text/JSON reporters and exit codes are shared with ``repro lint``.

Checks
------

========  ========  ====================================================
REP-S01   error     spec does not parse/build (unknown stage or backend,
                    malformed option, ``budget=0s``, bad sweep, ...)
REP-S02   error     ``race(...)`` branches not distinct after
                    canonicalization (the duplicate can never win a tie)
REP-S03   warning   wall-clock ``budget=<s>s`` on a stage with no
                    cancellation point (the budget cannot bind)
REP-S04   error     incumbent-consuming stage whose upstream cannot
          /warning  produce an incumbent (all race branches inapplicable)
REP-S05   warning   sweep cardinality above the ``max_sweep`` threshold
REP-S06   error     serve policy invalid (thresholds, unresolvable tiers)
REP-S07   error     plan cannot split into the requested shard count
REP-S08   error     plan edges invalid (duplicate id, unknown/forward dep)
========  ========  ====================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.lint.engine import Finding

#: Stages with no cancellation point: a wall-clock ``budget=<s>s`` wraps
#: them but can never interrupt anything (the two-stage heuristics and the
#: baseline run no solver and check no token).
_NON_BINDING_BUDGET_STAGES = frozenset(
    {"baseline", "bspg", "cilk", "etf", "dfs"}
)

#: Incumbent production status, ordered worst to best.
_NONE, _CONDITIONAL, _GUARANTEED = 0, 1, 2

#: Sweeps wider than this default trigger the REP-S05 cardinality warning.
DEFAULT_MAX_SWEEP = 16


def _semantic_finding(
    rule: str, severity: str, source: str, message: str
) -> Finding:
    return Finding(
        rule=rule,
        severity=severity,
        path=f"<{source}>",
        line=1,
        col=0,
        message=message,
    )


# ----------------------------------------------------------------------
# spec checking
# ----------------------------------------------------------------------
def _unwrap(stage):
    """The stage behind any BudgetedStage wrapper (and the wrapper)."""
    from repro.pipeline.composite import BudgetedStage

    if isinstance(stage, BudgetedStage):
        return stage.inner, stage
    return stage, None


def _producer_status(stage, processors: Optional[int]) -> Tuple[int, str]:
    """How surely ``stage`` leaves an incumbent behind for the next stage.

    Returns ``(status, detail)``: every non-race stage that applies to the
    instance produces a schedule; ``dfs`` applies only when ``P = 1``
    (``config_error_means_inapplicable`` — the pipeline returns early), so
    with ``P > 1`` it is *definitely* inapplicable and with unknown ``P``
    only *conditionally* a producer.  A race produces exactly when its
    best branch chain does.
    """
    from repro.pipeline.composite import RaceStage

    inner, _ = _unwrap(stage)
    if isinstance(inner, RaceStage):
        best = _NONE
        for branch in inner._branches:
            best = max(best, _branch_chain_produces(branch, processors))
        if best == _NONE:
            return _NONE, (
                "every race branch is inapplicable, so the race keeps "
                "an incumbent it does not have"
            )
        if best == _CONDITIONAL:
            return _CONDITIONAL, (
                "every race branch is only conditionally applicable"
            )
        return _GUARANTEED, ""
    if getattr(inner, "config_error_means_inapplicable", False):
        # the two-stage heuristics; only dfs actually restricts P
        if inner.name == "dfs":
            if processors is None:
                return _CONDITIONAL, "dfs requires P = 1"
            if processors != 1:
                return _NONE, f"dfs requires P = 1 but processors={processors}"
        return _GUARANTEED, ""
    return _GUARANTEED, ""


def _branch_chain_produces(stages, processors: Optional[int]) -> int:
    """Best-case incumbent production of one race branch chain.

    Incumbent-*consuming* stages inside a branch (``refine``, ``ilp``)
    transform the race's own incumbent and never add one, so only the
    producer stages of the chain count.
    """
    best = _NONE
    for stage in stages:
        inner, _ = _unwrap(stage)
        if getattr(inner, "requires_incumbent", False):
            continue
        status, _ = _producer_status(stage, processors)
        best = max(best, status)
    return best


def check_spec(
    text: str,
    *,
    processors: Optional[int] = None,
    source: Optional[str] = None,
    max_sweep: int = DEFAULT_MAX_SWEEP,
) -> List[Finding]:
    """Statically validate one pipeline spec (sweeps included).

    ``processors`` sharpens the REP-S04 incumbent analysis (``dfs``
    applies only when ``P = 1``); without it, definite errors downgrade
    to warnings.  Returns findings; an empty list means the runtime's
    parse/build path would accept the spec.
    """
    from repro.pipeline.spec import expand_spec

    label = source if source is not None else f"spec:{str(text).strip()}"
    findings: List[Finding] = []
    try:
        expanded = expand_spec(text)
    except ConfigurationError as exc:
        return [_semantic_finding("REP-S01", "error", label, str(exc))]
    if len(expanded) > max_sweep:
        findings.append(
            _semantic_finding(
                "REP-S05",
                "warning",
                label,
                f"sweep expands to {len(expanded)} member specs "
                f"(> {max_sweep}); every member runs on every instance — "
                f"narrow the sweep or raise --max-sweep deliberately",
            )
        )
    for spec_text in expanded:
        sub_label = label if len(expanded) == 1 else f"spec:{spec_text}"
        findings.extend(
            _check_one_spec(spec_text, processors=processors, source=sub_label)
        )
    return findings


def _check_one_spec(
    text: str, *, processors: Optional[int], source: str
) -> List[Finding]:
    from repro.pipeline.spec import parse

    findings: List[Finding] = []
    try:
        spec = parse(text)
        stages = spec.build_stages()
    except ConfigurationError as exc:
        return [_semantic_finding("REP-S01", "error", source, str(exc))]

    findings.extend(_check_stages(stages, processors, source))
    return findings


def _check_stages(stages, processors: Optional[int], source: str) -> List[Finding]:
    from repro.pipeline.composite import RaceStage

    findings: List[Finding] = []
    #: whether an incumbent is surely/maybe available before each stage
    incumbent = _NONE
    for position, stage in enumerate(stages):
        inner, budget = _unwrap(stage)
        is_race = isinstance(inner, RaceStage)

        # REP-S03: a budget that cannot bind
        if budget is not None and inner.name in _NON_BINDING_BUDGET_STAGES:
            findings.append(
                _semantic_finding(
                    "REP-S03",
                    "warning",
                    source,
                    f"stage {position + 1} ({inner.name!r}): wall-clock "
                    f"budget on a stage with no cancellation point — the "
                    f"budget can never bind; drop it or budget a solver-"
                    f"backed stage",
                )
            )

        if is_race:
            findings.extend(
                _check_race(inner, processors, source, position)
            )

        # REP-S04: incumbent availability
        if getattr(stage, "requires_incumbent", False):
            if incumbent == _NONE:
                findings.append(
                    _semantic_finding(
                        "REP-S04",
                        "error",
                        source,
                        f"stage {position + 1} ({inner.name!r}) consumes an "
                        f"incumbent, but no upstream stage can produce one "
                        f"— the pipeline would raise ConfigurationError at "
                        f"run time",
                    )
                )
            elif incumbent == _CONDITIONAL:
                findings.append(
                    _semantic_finding(
                        "REP-S04",
                        "warning",
                        source,
                        f"stage {position + 1} ({inner.name!r}) consumes an "
                        f"incumbent that is only conditionally produced "
                        f"upstream (e.g. 'dfs' applies only to P = 1 "
                        f"instances); the pipeline fails on instances "
                        f"where the producer is inapplicable",
                    )
                )
            continue  # a consumer does not change producer status

        status, detail = _producer_status(stage, processors)
        if status == _NONE and not is_race:
            # a *plain* definitely-inapplicable stage short-circuits the
            # whole pipeline (config_error_means_inapplicable): downstream
            # stages never run, so no runtime error — but the member can
            # never compete either
            findings.append(
                _semantic_finding(
                    "REP-S04",
                    "warning",
                    source,
                    f"stage {position + 1} ({inner.name!r}): {detail}; the "
                    f"pipeline always reports inapplicable and later "
                    f"stages never run",
                )
            )
            break
        incumbent = max(incumbent, status)
    return findings


def _check_race(
    race, processors: Optional[int], source: str, position: int
) -> List[Finding]:
    findings: List[Finding] = []

    # REP-S02: duplicate branches after canonicalization — RaceStage
    # stores sorted canonical branch tokens, so duplicates are adjacent
    tokens = race._tokens
    seen = set()
    for token in tokens:
        if token in seen:
            findings.append(
                _semantic_finding(
                    "REP-S02",
                    "error",
                    source,
                    f"stage {position + 1} ('race'): duplicate branch "
                    f"{token!r} after canonicalization — the copy can "
                    f"never win a tie and only burns a slot; a race needs "
                    f">= 2 *distinct* branches",
                )
            )
        seen.add(token)

    # recurse: budgets / nested races inside each branch chain (the REP-S04
    # incumbent analysis stays off here — branches inherit the race's own
    # incumbent, so a lone 'refine' branch is fine)
    for branch in race._branches:
        findings.extend(_check_branch(branch, processors, source, position))
    return findings


def _check_branch(branch, processors, source, position) -> List[Finding]:
    """Branch-level checks: budgets that cannot bind, nested races."""
    from repro.pipeline.composite import RaceStage

    findings: List[Finding] = []
    for stage in branch:
        inner, budget = _unwrap(stage)
        if budget is not None and inner.name in _NON_BINDING_BUDGET_STAGES:
            findings.append(
                _semantic_finding(
                    "REP-S03",
                    "warning",
                    source,
                    f"stage {position + 1} ('race'): branch stage "
                    f"{inner.name!r} carries a wall-clock budget with no "
                    f"cancellation point — the budget can never bind",
                )
            )
        if isinstance(inner, RaceStage):
            findings.extend(_check_race(inner, processors, source, position))
    return findings


# ----------------------------------------------------------------------
# serve policy / service config checking
# ----------------------------------------------------------------------
def check_policy(
    config=None,
    *,
    cheap: Optional[str] = None,
    steady: Optional[str] = None,
    rich: Optional[str] = None,
    processors: Optional[int] = None,
) -> List[Finding]:
    """Statically validate a serve policy (thresholds + tier specs).

    Accepts a :class:`~repro.serve.policy.PolicyConfig` (the shipped
    defaults when omitted) with optional per-tier overrides.  Tier specs
    are resolved through the real ``resolve_member`` (REP-S06) and then
    spec-checked like any pipeline (REP-S01..S05, labelled
    ``<policy.cheap>`` etc.).
    """
    from repro.portfolio.members import resolve_member
    from repro.serve.policy import PolicyConfig

    if config is None:
        config = PolicyConfig()
    overrides = {"cheap": cheap, "steady": steady, "rich": rich}
    tiers = {
        "cheap": config.cheap_spec,
        "steady": config.steady_spec,
        "rich": config.rich_spec,
    }
    for tier, value in overrides.items():
        if value is not None:
            tiers[tier] = value

    findings: List[Finding] = []
    try:
        config.validate()
    except ConfigurationError as exc:
        findings.append(_semantic_finding("REP-S06", "error", "policy", str(exc)))
    for tier in ("cheap", "steady", "rich"):
        spec_text = tiers[tier]
        label = f"policy.{tier}"
        try:
            resolve_member(spec_text)
        except ConfigurationError as exc:
            findings.append(
                _semantic_finding("REP-S06", "error", label, str(exc))
            )
            continue
        findings.extend(
            check_spec(spec_text, processors=processors, source=label)
        )
    return findings


# ----------------------------------------------------------------------
# plan / shard checking
# ----------------------------------------------------------------------
def check_plan_edges(
    nodes: Sequence[Tuple[str, Sequence[str]]],
    *,
    source: str = "plan",
) -> List[Finding]:
    """Validate ``(node_id, after)`` edge declarations without jobs.

    Replays the :class:`~repro.exec.plan.RunPlan` construction rules —
    unique ids, dependencies declared before dependents (which is also
    what makes every plan acyclic) — and reports each violation as a
    REP-S08 error instead of raising on the first.
    """
    findings: List[Finding] = []
    seen = set()
    for node_id, after in nodes:
        if node_id in seen:
            findings.append(
                _semantic_finding(
                    "REP-S08",
                    "error",
                    source,
                    f"duplicate plan node id {node_id!r}",
                )
            )
            continue
        for dep in after:
            if dep == node_id:
                findings.append(
                    _semantic_finding(
                        "REP-S08",
                        "error",
                        source,
                        f"plan node {node_id!r} depends on itself",
                    )
                )
            elif dep not in seen:
                findings.append(
                    _semantic_finding(
                        "REP-S08",
                        "error",
                        source,
                        f"plan node {node_id!r} depends on unknown or "
                        f"later node {dep!r}; dependencies must be added "
                        f"before their dependents (forward edges would "
                        f"allow cycles)",
                    )
                )
        seen.add(node_id)
    return findings


def check_shards(plan, shards: int, *, source: str = "plan") -> List[Finding]:
    """Dry-run the deterministic shard assignment of ``plan``.

    Reports the exact :class:`ConfigurationError` the coordinator would
    raise (chains too coarse for the shard count, bad shard count) as a
    REP-S07 error — in milliseconds, before any worker starts.
    """
    from repro.exec.shard import shard_assignment

    try:
        shard_assignment(plan, shards)
    except ConfigurationError as exc:
        return [
            _semantic_finding(
                "REP-S07", "error", source, f"shards={shards}: {exc}"
            )
        ]
    return []


#: ``(id, severity, description)`` of every semantic check, for the CLI
#: rule table (semantic checks are not engine rules — they take structured
#: inputs, not files — but share the id space and reporters).
SEMANTIC_CHECKS: Tuple[Tuple[str, str, str], ...] = (
    ("REP-S01", "error", "pipeline spec does not parse/build"),
    ("REP-S02", "error", "race(...) branches not distinct after canonicalization"),
    ("REP-S03", "warning", "wall-clock budget on a stage that cannot bind it"),
    ("REP-S04", "error", "incumbent consumer with no upstream producer"),
    ("REP-S05", "warning", "sweep cardinality above the --max-sweep threshold"),
    ("REP-S06", "error", "serve policy invalid (thresholds / unresolvable tiers)"),
    ("REP-S07", "error", "plan cannot split into the requested shard count"),
    ("REP-S08", "error", "plan edges invalid (duplicate id / unknown dep)"),
)
