"""Static analysis for the repro codebase and its configurations.

Two halves share one engine, one finding shape and one set of reporters
and exit codes:

* **``repro lint`` (pack A)** — AST rules over source files catching the
  determinism and concurrency hazard classes that have actually bitten
  this repo: salted ``hash()`` material, wall-clock reads outside
  ``repro.obs``, global-RNG calls, unordered set iteration, fixed-name
  temp files next to ``os.replace``, blocking calls inside ``async def``
  and over-broad exception handlers.  See :mod:`repro.lint.rules`.
* **``repro check`` (pack B)** — semantic validation of pipeline specs,
  run-plan edges, shard counts and serve policies *without executing
  anything*, through the real parser/registries, so a malformed config
  fails in milliseconds instead of mid-run.  See
  :mod:`repro.lint.semantic`.

Suppression comments (``# repro: lint-ignore[REP-D01]``) and the
checked-in JSON baseline (:mod:`repro.lint.baseline`) keep the gate
signal-only.
"""

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    baseline_from_findings,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Finding,
    FileContext,
    Rule,
    available_rules,
    get_rule,
    lint_file,
    lint_paths,
    register_rule,
    rule_descriptions,
    scan_suppressions,
)
from repro.lint.report import (
    EXIT_FINDINGS,
    EXIT_OK,
    EXIT_USAGE,
    exit_code,
    gating_findings,
    render_json,
    render_text,
    report_dict,
)
from repro.lint.semantic import (
    SEMANTIC_CHECKS,
    check_plan_edges,
    check_policy,
    check_shards,
    check_spec,
)

# importing the rule pack registers every pack-A rule
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "DEFAULT_BASELINE",
    "EXIT_FINDINGS",
    "EXIT_OK",
    "EXIT_USAGE",
    "Finding",
    "FileContext",
    "Rule",
    "SEMANTIC_CHECKS",
    "available_rules",
    "baseline_from_findings",
    "check_plan_edges",
    "check_policy",
    "check_shards",
    "check_spec",
    "exit_code",
    "filter_baselined",
    "gating_findings",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "report_dict",
    "rule_descriptions",
    "scan_suppressions",
    "write_baseline",
]
