"""Pluggable ILP solver backends: a registry, dispatch, and the ``auto`` policy.

Every MILP in the library (the full MBSP formulation, the BSP first-stage
ILP, the acyclic-bipartition ILP) is solved through :func:`solve_model`,
which looks the backend up in a process-wide registry:

* ``"scipy"`` — :func:`repro.ilp.scipy_backend.solve_with_scipy`
  (HiGHS branch and cut; the default, standing in for the paper's COPT);
* ``"bnb"`` — :func:`repro.ilp.branch_and_bound.solve_with_branch_and_bound`
  (the pure-Python LP-based branch and bound, dependency-light and fully
  transparent);
* ``"auto"`` — picks per model by size/structure: tiny models (few integer
  variables and constraints) go to the transparent ``bnb`` solver, anything
  larger to HiGHS, and a :class:`~repro.exceptions.SolverError` in the
  chosen backend falls back to the other one.

Backend selection threads through the whole stack: ``SolverOptions`` are
shared by all backends (including ``warm_start_objective``, the incumbent
bound used to warm-start a solve), scheduler configurations carry a
``backend`` field, :class:`~repro.experiments.runner.ExperimentConfig`
carries ``ilp_backend`` (so parallel-engine job hashes cover the backend),
and the CLI exposes ``--backend``.  The process default is ``"scipy"``,
overridable through the ``REPRO_ILP_BACKEND`` environment variable; an
unknown name in the environment warns and falls back to the default
(malformed env knobs never fail hard, matching the other ``REPRO_*``
variables), while an unknown name passed explicitly raises ``ValueError``.

The module also counts solver invocations (:func:`solver_call_stats`), which
is how tests assert that bound-aware portfolio pruning really avoids solver
calls.  Counts are per process: jobs fanned out by the parallel experiment
engine count in their worker processes, not in the parent.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

from repro.exceptions import SolverError
from repro.ilp.branch_and_bound import solve_with_branch_and_bound
from repro.ilp.model import IlpModel
from repro.ilp.scipy_backend import SolverOptions, solve_with_scipy
from repro.ilp.solution import IlpSolution

#: Environment variable selecting the process-wide default backend.
ENV_BACKEND = "REPRO_ILP_BACKEND"

#: The built-in default backend (HiGHS via scipy).
DEFAULT_BACKEND = "scipy"

#: ``auto`` routes models with at most this many integer variables ...
AUTO_BNB_MAX_INTEGERS = 20
#: ... and at most this many constraints to the pure-Python solver.
AUTO_BNB_MAX_CONSTRAINTS = 120


@runtime_checkable
class SolverBackend(Protocol):
    """The protocol every registered solver backend implements."""

    name: str

    def solve(self, model: IlpModel, options: Optional[SolverOptions] = None) -> IlpSolution:
        """Solve ``model`` under ``options`` and return an :class:`IlpSolution`."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FunctionBackend:
    """Adapter turning a plain ``solve(model, options)`` function into a backend."""

    name: str
    fn: Callable[[IlpModel, Optional[SolverOptions]], IlpSolution]
    description: str = ""

    def solve(self, model: IlpModel, options: Optional[SolverOptions] = None) -> IlpSolution:
        return self.fn(model, options)


class AutoBackend:
    """Structure-aware dispatch: small models to ``bnb``, large ones to HiGHS.

    The pure-Python branch and bound is competitive only on tiny models, but
    there it is fully transparent and dependency-free; everything bigger goes
    to HiGHS.  If the chosen backend raises :class:`SolverError` (e.g. the
    MILP interface is unavailable in a stripped-down scipy), the other
    backend is tried before giving up — ``auto`` is therefore also the
    resilient production choice.
    """

    name = "auto"

    def choose(self, model: IlpModel) -> str:
        """Name of the concrete backend ``auto`` would use for ``model``."""
        stats = model.statistics()
        if (
            stats["integers"] <= AUTO_BNB_MAX_INTEGERS
            and stats["constraints"] <= AUTO_BNB_MAX_CONSTRAINTS
        ):
            return "bnb"
        return DEFAULT_BACKEND

    def solve(self, model: IlpModel, options: Optional[SolverOptions] = None) -> IlpSolution:
        primary = self.choose(model)
        fallback = DEFAULT_BACKEND if primary != DEFAULT_BACKEND else "bnb"
        try:
            solution = get_backend(primary).solve(model, options)
            chosen = primary
        except SolverError:
            solution = get_backend(fallback).solve(model, options)
            chosen = fallback
        solution.message = f"auto[{chosen}] {solution.message}".rstrip()
        return solution


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, SolverBackend] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(backend: SolverBackend, aliases: tuple = ()) -> SolverBackend:
    """Register ``backend`` under its canonical name plus optional aliases.

    Re-registering a name replaces the previous backend (useful in tests);
    an alias may not shadow a different backend's canonical name.
    """
    name = backend.name.lower()
    cleaned = [alias.lower() for alias in aliases]
    # validate before mutating: a rejected registration must leave the
    # registry untouched, and no name/alias may shadow (or be shadowed by)
    # another backend's — get_backend resolves aliases first, so a collision
    # would silently misdispatch
    if _ALIASES.get(name, name) != name:
        raise ValueError(
            f"backend name {name!r} is already an alias of {_ALIASES[name]!r}"
        )
    for alias in cleaned:
        if alias in _REGISTRY and alias != name:
            raise ValueError(f"alias {alias!r} would shadow a registered backend")
        if _ALIASES.get(alias, name) != name:
            raise ValueError(
                f"alias {alias!r} already points to backend {_ALIASES[alias]!r}"
            )
    _REGISTRY[name] = backend
    for alias in cleaned:
        _ALIASES[alias] = name
    return backend


def available_backends() -> List[str]:
    """Sorted canonical names of all registered backends."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by canonical name or alias; raise ``ValueError`` if unknown."""
    key = str(name).lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown ILP backend {name!r}; available: {available_backends()}"
        ) from None


def default_backend() -> str:
    """The process default backend: ``REPRO_ILP_BACKEND`` or ``"scipy"``.

    An unknown name in the environment emits a :class:`UserWarning` and falls
    back to the built-in default, matching the warn-and-fall-back convention
    of the other ``REPRO_*`` environment knobs.
    """
    value = os.environ.get(ENV_BACKEND)
    if value is None or not value.strip():
        return DEFAULT_BACKEND
    try:
        return get_backend(value.strip()).name
    except ValueError:
        warnings.warn(
            f"ignoring unknown ILP backend {value!r} from environment variable "
            f"{ENV_BACKEND}; available: {available_backends()}; "
            f"using the default {DEFAULT_BACKEND!r}",
            UserWarning,
            stacklevel=2,
        )
        return DEFAULT_BACKEND


def resolve_backend_name(name: Optional[str]) -> str:
    """Canonical backend name for ``name``; ``None``/empty means the default.

    Unknown explicit names raise ``ValueError`` (unlike the environment
    default, which warns and falls back).
    """
    if name is None or not str(name).strip():
        return default_backend()
    return get_backend(name).name


# ----------------------------------------------------------------------
# call counting
# ----------------------------------------------------------------------
@dataclass
class SolverCallStats:
    """Per-process tally of dispatched solver calls and times, by backend name.

    Updates are lock-protected: ``race(...)`` pipeline stages dispatch
    solves from concurrent branch threads within one process.
    """

    total: int = 0
    by_backend: Dict[str, int] = field(default_factory=dict)
    time_total: float = 0.0
    time_by_backend: Dict[str, float] = field(default_factory=dict)
    _lock: "threading.Lock" = field(
        default_factory=lambda: threading.Lock(), repr=False, compare=False
    )

    def record(self, name: str) -> None:
        with self._lock:
            self.total += 1
            self.by_backend[name] = self.by_backend.get(name, 0) + 1

    def record_time(self, name: str, elapsed: float) -> None:
        with self._lock:
            self.time_total += elapsed
            self.time_by_backend[name] = self.time_by_backend.get(name, 0.0) + elapsed

    def snapshot(self) -> "SolverCallStats":
        """An independent copy (for before/after deltas around a job)."""
        with self._lock:
            return SolverCallStats(
                total=self.total,
                by_backend=dict(self.by_backend),
                time_total=self.time_total,
                time_by_backend=dict(self.time_by_backend),
            )

    def delta_since(self, before: "SolverCallStats") -> Dict[str, float]:
        """Flat ``{metric: value}`` dict of the calls/times since ``before``.

        Keys: ``solver_calls`` / ``solver_time`` totals plus
        ``solver_calls[<backend>]`` / ``solver_time[<backend>]`` per backend
        actually dispatched in between.  This is the per-job record the
        experiment engine attaches to results (JSONL rows included), so
        sweeps can report solve counts and times per job.
        """
        out: Dict[str, float] = {
            "solver_calls": float(self.total - before.total),
            "solver_time": self.time_total - before.time_total,
        }
        for name, count in self.by_backend.items():
            diff = count - before.by_backend.get(name, 0)
            if diff:
                out[f"solver_calls[{name}]"] = float(diff)
        for name, elapsed in self.time_by_backend.items():
            diff = elapsed - before.time_by_backend.get(name, 0.0)
            if diff > 0:
                out[f"solver_time[{name}]"] = diff
        return out

    def reset(self) -> None:
        with self._lock:
            self.total = 0
            self.by_backend.clear()
            self.time_total = 0.0
            self.time_by_backend.clear()


_CALL_STATS = SolverCallStats()

_SCOPED_STATS = threading.local()


def solver_call_stats() -> SolverCallStats:
    """The process-wide solver call tally (see the module docstring caveat)."""
    return _CALL_STATS


def reset_solver_call_stats() -> None:
    """Zero the process-wide solver call tally (for tests and benchmarks)."""
    _CALL_STATS.reset()


class scoped_solver_stats:
    """Tally solver calls dispatched *from this thread* for a region.

    The process-wide :func:`solver_call_stats` cannot attribute calls to
    one race branch: concurrent branch threads would pollute each other's
    before/after deltas.  A scope installs a fresh :class:`SolverCallStats`
    in a thread-local stack; :func:`solve_model` records into every scope
    active on the dispatching thread (scopes nest), in addition to the
    process-wide tally.

    Usage::

        with scoped_solver_stats() as stats:
            ...  # run a race branch
        branch_calls, branch_time = stats.total, stats.time_total
    """

    def __init__(self) -> None:
        self.stats = SolverCallStats()

    def __enter__(self) -> SolverCallStats:
        stack = getattr(_SCOPED_STATS, "stack", None)
        if stack is None:
            stack = []
            _SCOPED_STATS.stack = stack
        stack.append(self.stats)
        return self.stats

    def __exit__(self, *exc) -> bool:
        stack = getattr(_SCOPED_STATS, "stack", [])
        if stack and stack[-1] is self.stats:
            stack.pop()
        return False


def _record_scoped(name: str, elapsed: float) -> None:
    for stats in getattr(_SCOPED_STATS, "stack", ()):  # innermost last; all get it
        stats.record(name)
        stats.record_time(name, elapsed)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def solve_model(
    model: IlpModel,
    options: Optional[SolverOptions] = None,
    backend: Optional[str] = None,
) -> IlpSolution:
    """Solve ``model`` with the selected (or default) backend.

    This is the single dispatch point behind :func:`repro.ilp.solve`; every
    call is counted in :func:`solver_call_stats` (and any active
    :class:`scoped_solver_stats` on the dispatching thread), and traced as
    an ``ilp.solve`` span when :mod:`repro.obs` tracing is on.
    """
    from repro import obs
    from repro.ilp.cancellation import current_cancel_token

    impl = get_backend(resolve_backend_name(backend))
    _CALL_STATS.record(impl.name)
    span = obs.NULL_SCOPE
    if obs.tracing_enabled():
        span = obs.trace_span(
            "ilp.solve",
            category="solver",
            backend=impl.name,
            variables=len(model.variables),
            constraints=len(model.constraints),
            node_limit=getattr(options, "node_limit", None),
            time_limit=getattr(options, "time_limit", None),
        )
    start = time.perf_counter()
    try:
        with span:
            solution = impl.solve(model, options)
            span.set(status=solution.status)
            return solution
    finally:
        elapsed = time.perf_counter() - start
        _CALL_STATS.record_time(impl.name, elapsed)
        _record_scoped(impl.name, elapsed)
        if obs.tracing_enabled():
            token = current_cancel_token()
            if token is not None and token.cancelled():
                span.set(cancelled=True, cancel_reason=token.cancel_reason())
            obs.observe(f"solver.time[{impl.name}]", elapsed)
            obs.count(f"solver.calls[{impl.name}]")


register_backend(
    FunctionBackend("scipy", solve_with_scipy, "HiGHS branch and cut (scipy.optimize.milp)"),
    aliases=("highs",),
)
register_backend(
    FunctionBackend("bnb", solve_with_branch_and_bound, "pure-Python LP-based branch and bound"),
    aliases=("branch_and_bound", "branch-and-bound"),
)
register_backend(AutoBackend())
