"""Direct HiGHS solves with cooperative mid-solve cancellation.

:func:`scipy.optimize.milp` cannot be interrupted once dispatched: the
cancellation hook in :mod:`repro.ilp.scipy_backend` used to be coarse —
refuse to start when already cancelled, clamp the time limit to the
scope's remaining budget — so a raced ILP branch kept burning CPU until
its clamped limit expired even after the race had a winner.

This module drives the scipy-*vendored* HiGHS binding
(``scipy.optimize._highspy._core``) directly: the same compiled model,
bounds, integrality, objective-cutoff row and options as the
``optimize.milp`` path, plus HiGHS's MIP-interrupt callback polling the
scope's :class:`~repro.ilp.cancellation.CancelToken` — a cancelled solve
stops at the next branch-and-bound poll point instead of at the time
limit.  The race stage installs tokens in both its sequential and
threaded branches, so the callback path behaves identically across
worker counts.

The binding is a private scipy API, so everything is gated twice: the
import is optional (:func:`highs_cancellation_available`), and
:func:`solve_with_highs_callback` returns ``None`` on any failure inside
the binding — the caller falls back to the plain ``optimize.milp`` path,
which remains byte-identical for uncancelled solves (same formulation,
same HiGHS under the hood).  The result object mimics the
``optimize.milp`` result surface (``status``/``x``/``message``/
``mip_gap``/``mip_node_count``) so the backend's status mapping is
shared between both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np
from scipy import sparse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ilp.cancellation import CancelToken
    from repro.ilp.model import CompiledModel

try:  # pragma: no cover - exercised indirectly via availability gates
    from scipy.optimize._highspy import _core as _highs
except Exception:  # repro: lint-ignore[REP-C02] — any private-API breakage
    _highs = None


def highs_cancellation_available() -> bool:
    """Whether the scipy-vendored HiGHS binding imported successfully."""
    return _highs is not None


@dataclass
class HighsCallbackResult:
    """``optimize.milp``-shaped result of a direct HiGHS solve.

    ``status`` uses the ``optimize.milp`` code space (0 optimal, 1 limit
    reached, 2 infeasible, 3 unbounded, 4 other) so
    :func:`repro.ilp.scipy_backend.solve_with_scipy` maps both solve
    paths with one table; ``cancelled`` records that the MIP-interrupt
    callback stopped the solve.
    """

    status: int
    x: Optional[np.ndarray]
    message: str
    mip_gap: Optional[float]
    mip_node_count: int
    cancelled: bool = False


def _status_code(model_status, value_valid: bool) -> int:
    """Map a ``HighsModelStatus`` to the ``optimize.milp`` code space."""
    s = _highs.HighsModelStatus
    if model_status == s.kOptimal:
        return 0
    if model_status == s.kInfeasible:
        return 2
    if model_status == s.kUnbounded:
        return 3
    if model_status in (
        s.kTimeLimit,
        s.kIterationLimit,
        s.kSolutionLimit,
        s.kInterrupt,
        s.kHighsInterrupt,
        s.kObjectiveBound,
        s.kObjectiveTarget,
    ):
        return 1
    # kUnboundedOrInfeasible, solve/model errors, anything new: "other",
    # unless HiGHS still produced a usable incumbent (then a limit-like 1)
    return 1 if value_valid else 4


def solve_with_highs_callback(
    compiled: "CompiledModel",
    token: "CancelToken",
    cutoff: Optional[float] = None,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
    mip_rel_gap: float = 1e-4,
    verbose: bool = False,
) -> Optional[HighsCallbackResult]:
    """Solve ``compiled`` directly through HiGHS, polling ``token``.

    ``cutoff`` is the objective cutoff in the compiled (minimization)
    space — the same value the ``optimize.milp`` path encodes as an extra
    ``c @ x <= cutoff`` constraint row, added here identically so both
    paths solve the same formulation.  Returns ``None`` when the binding
    is unavailable or rejects the model; the caller then falls back to
    ``optimize.milp`` (cancellation stays coarse but correctness is
    unaffected).
    """
    if _highs is None:
        return None
    try:
        lp = _highs.HighsLp()
        num_vars = int(compiled.c.shape[0])
        rows = compiled.A.tocsr() if compiled.A.shape[0] else None
        con_lb = np.asarray(compiled.con_lb, dtype=float)
        con_ub = np.asarray(compiled.con_ub, dtype=float)
        if cutoff is not None:
            # objective cutoff row, bit-for-bit the constraint the milp
            # path appends: c @ x <= cutoff (tolerance already applied by
            # the caller)
            cut_row = sparse.csr_matrix(compiled.c.reshape(1, -1))
            rows = cut_row if rows is None else sparse.vstack(
                [rows, cut_row], format="csr"
            )
            con_lb = np.append(con_lb, -np.inf)
            con_ub = np.append(con_ub, float(cutoff))
        num_rows = 0 if rows is None else int(rows.shape[0])

        inf = float(_highs.kHighsInf)
        clip = lambda a: np.clip(np.asarray(a, dtype=float), -inf, inf)
        lp.num_col_ = num_vars
        lp.num_row_ = num_rows
        lp.col_cost_ = np.asarray(compiled.c, dtype=float)
        lp.col_lower_ = clip(compiled.var_lb)
        lp.col_upper_ = clip(compiled.var_ub)
        lp.row_lower_ = clip(con_lb)
        lp.row_upper_ = clip(con_ub)
        if num_rows:
            matrix = lp.a_matrix_
            matrix.format_ = _highs.MatrixFormat.kRowwise
            matrix.start_ = np.asarray(rows.indptr, dtype=np.int32)
            matrix.index_ = np.asarray(rows.indices, dtype=np.int32)
            matrix.value_ = np.asarray(rows.data, dtype=float)
        lp.integrality_ = np.array(
            [
                _highs.HighsVarType.kInteger if flag else
                _highs.HighsVarType.kContinuous
                for flag in np.asarray(compiled.integrality).astype(bool)
            ]
        )

        solver = _highs._Highs()
        solver.setOptionValue("output_flag", bool(verbose))
        solver.setOptionValue("log_to_console", bool(verbose))
        solver.setOptionValue("mip_rel_gap", float(mip_rel_gap))
        if time_limit is not None:
            solver.setOptionValue("time_limit", float(time_limit))
        if node_limit is not None:
            solver.setOptionValue("mip_max_nodes", int(node_limit))
        if solver.passModel(lp) != _highs.HighsStatus.kOk:
            return None

        cancelled = [False]

        def _interrupt(callback_type, message, data_out, data_in, user_data):
            # polled by HiGHS at its MIP interrupt points; the token read
            # is lock-free and monotonic (cancel() only ever sets it)
            if token.cancelled():
                cancelled[0] = True
                data_in.user_interrupt = True

        if solver.setCallback(_interrupt, None) != _highs.HighsStatus.kOk:
            return None
        solver.startCallbackInt(
            int(_highs.cb.HighsCallbackType.kCallbackMipInterrupt)
        )
        solver.run()

        model_status = solver.getModelStatus()
        solution = solver.getSolution()
        info = solver.getInfo()
        values = (
            np.asarray(solution.col_value, dtype=float)
            if solution.value_valid
            else None
        )
        message = f"HiGHS model status: {model_status.name}"
        if cancelled[0]:
            message += " (cancelled by CancelToken mid-solve)"
        gap = float(info.mip_gap)
        return HighsCallbackResult(
            status=_status_code(model_status, values is not None),
            x=values,
            message=message,
            mip_gap=gap if np.isfinite(gap) else None,
            mip_node_count=int(info.mip_node_count),
            cancelled=cancelled[0],
        )
    except Exception:  # repro: lint-ignore[REP-C02]
        # the private binding changed shape, rejected an array dtype, or
        # died inside HiGHS: never fail the solve over the fast path —
        # the caller falls back to optimize.milp
        return None
