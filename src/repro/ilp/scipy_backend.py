"""ILP solver backend based on :func:`scipy.optimize.milp` (HiGHS).

This is the default backend of the library.  It plays the role of the COPT
commercial solver used in the paper: a branch-and-cut MILP solver applied to
exactly the same formulations, with configurable time limits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize, sparse

from repro.exceptions import SolverError
from repro.ilp.expr import INF
from repro.ilp.model import IlpModel, Sense
from repro.ilp.solution import IlpSolution, SolutionStatus


@dataclass
class SolverOptions:
    """Options shared by all solver backends.

    Attributes
    ----------
    time_limit:
        Wall-clock limit in seconds (``None`` for no limit).  Both backends
        treat ``None`` as unlimited and return the best incumbent (status
        ``FEASIBLE``) or ``NO_SOLUTION`` when the limit expires.
    mip_rel_gap:
        Relative optimality gap at which the solver may stop.
    verbose:
        Print solver progress output.
    node_limit:
        Branch-and-bound node limit (``None`` for no limit, ``0`` for no
        branching at all).  Both backends count branch-and-bound nodes, but
        HiGHS additionally runs presolve/root heuristics that may find (and
        even prove) an incumbent before the first node, so a node-limited
        scipy solve can still return ``OPTIMAL`` where the transparent
        pure-Python solver reports ``NO_SOLUTION``.
    warm_start_objective:
        Objective value of a known incumbent (in the *original* objective
        space, e.g. the greedy/ETF baseline cost), restricting the search to
        solutions at least as good.  The scipy backend adds an objective
        cutoff row: an equal-cost solution remains feasible (and may be
        returned as ``OPTIMAL``), while an unbeatable cutoff yields
        ``INFEASIBLE``.  The branch-and-bound backend uses it as the initial
        incumbent bound: only strictly better solutions are found, and a
        solve that cannot improve reports ``NO_SOLUTION``.  Either way a
        caller holding the incumbent keeps it whenever the returned solution
        is not strictly cheaper.
    warm_start_solution:
        A full variable assignment of a known feasible solution (model
        variable order).  The branch-and-bound backend verifies it against
        the compiled model and installs it as the *initial incumbent*: the
        solve can only improve on it, and exhausting the tree returns the
        warm solution itself (status ``OPTIMAL``) instead of
        ``NO_SOLUTION``.  The scipy backend cannot hand HiGHS a starting
        point through ``scipy.optimize.milp``; it derives the solution's
        objective value and applies it as the cutoff row (as if
        ``warm_start_objective`` had been passed).  An infeasible solution
        is ignored (recorded in the result message), never an error; a
        wrong-length one raises ``ValueError`` in both backends.  When both
        warm-start fields are given, the tighter of the two prunes the
        search while the solution remains the fallback incumbent (the
        branch-and-bound backend reports ``FEASIBLE`` instead of claiming
        optimality when a tighter external bound was in play).
    """

    time_limit: Optional[float] = 30.0
    mip_rel_gap: float = 1e-4
    verbose: bool = False
    node_limit: Optional[int] = None
    warm_start_objective: Optional[float] = None
    warm_start_solution: Optional[Sequence[float]] = None


def solve_with_scipy(model: IlpModel, options: Optional[SolverOptions] = None) -> IlpSolution:
    """Solve ``model`` with ``scipy.optimize.milp`` and return an :class:`IlpSolution`."""
    from repro.ilp.cancellation import clamped_time_limit, current_cancel_token

    options = options or SolverOptions()
    compiled = model.compile()
    start = time.perf_counter()

    # cooperative cancellation: scipy.optimize.milp cannot be interrupted
    # once running, so the hook is coarse — refuse to start when the current
    # scope is already cancelled, and clamp the time limit to the scope's
    # remaining deadline so a wall-clock budget still bounds the solve
    token = current_cancel_token()
    if token is not None and token.cancelled():
        return IlpSolution(
            status=SolutionStatus.NO_SOLUTION,
            solve_time=0.0,
            message="solve cancelled before dispatch",
        )
    effective_time_limit = clamped_time_limit(options.time_limit)

    constraints = []
    if compiled.A.shape[0] > 0:
        constraints.append(
            optimize.LinearConstraint(compiled.A, compiled.con_lb, compiled.con_ub)
        )
    sign = 1.0 if compiled.sense is Sense.MINIMIZE else -1.0
    # cutoff candidates in compiled (minimization) space: the explicit
    # objective and/or a feasible warm-start solution's objective — the
    # tighter one prunes, matching the branch-and-bound backend
    cutoffs = []
    if options.warm_start_objective is not None:
        cutoffs.append(
            sign * (float(options.warm_start_objective) - compiled.objective_constant)
        )
    warm_note = ""
    if options.warm_start_solution is not None:
        # scipy.optimize.milp cannot hand HiGHS a starting point; the best we
        # can do with a warm-start *solution* is derive its objective value
        # and apply it as the cutoff row below (infeasible solutions are
        # noted and ignored, matching the branch-and-bound backend)
        candidate = np.asarray(options.warm_start_solution, dtype=float)
        if candidate.shape != (compiled.c.shape[0],):
            raise ValueError(
                f"warm_start_solution has {candidate.shape} values, model has "
                f"{compiled.c.shape[0]} variables"
            )
        if compiled.is_feasible(candidate):
            cutoffs.append(
                sign * (compiled.objective_value(candidate) - compiled.objective_constant)
            )
        else:
            warm_note = " (warm-start solution rejected: infeasible)"
    cutoff_value = None
    if cutoffs:
        # objective cutoff: only solutions at least as good as the known
        # incumbent are feasible (compiled space is always a minimization)
        cutoff = min(cutoffs)
        tolerance = 1e-6 * max(1.0, abs(cutoff))
        cutoff_value = cutoff + tolerance

    # fine-grained cancellation: with a CancelToken in scope, drive the
    # scipy-vendored HiGHS binding directly so the MIP-interrupt callback
    # can stop the solve at the next poll point instead of at the clamped
    # time limit (a raced branch stops burning CPU once the race has a
    # winner).  Same formulation, same HiGHS, same status mapping; any
    # failure inside the private binding returns None and the plain
    # optimize.milp path below takes over unchanged.
    result = None
    if token is not None:
        from repro.ilp.highs_cancel import solve_with_highs_callback

        result = solve_with_highs_callback(
            compiled,
            token,
            cutoff=cutoff_value,
            time_limit=effective_time_limit,
            node_limit=options.node_limit,
            mip_rel_gap=options.mip_rel_gap,
            verbose=options.verbose,
        )

    if result is None:
        if cutoff_value is not None:
            constraints.append(
                optimize.LinearConstraint(
                    sparse.csr_matrix(compiled.c.reshape(1, -1)), -np.inf, cutoff_value
                )
            )
        constraints = constraints or None
        bounds = optimize.Bounds(compiled.var_lb, compiled.var_ub)

        milp_options = {
            "disp": options.verbose,
            "mip_rel_gap": options.mip_rel_gap,
        }
        if effective_time_limit is not None:
            milp_options["time_limit"] = float(effective_time_limit)
        if options.node_limit is not None:
            milp_options["node_limit"] = int(options.node_limit)

        try:
            result = optimize.milp(
                c=compiled.c,
                constraints=constraints,
                bounds=bounds,
                integrality=compiled.integrality,
                options=milp_options,
            )
        except (ValueError, TypeError, ArithmeticError) as exc:  # pragma: no cover - defensive
            # scipy.optimize.milp rejects malformed inputs with ValueError /
            # TypeError; ArithmeticError covers numerical blowups in HiGHS glue
            raise SolverError(f"scipy.optimize.milp failed: {exc}") from exc

    elapsed = time.perf_counter() - start
    sign = 1.0 if compiled.sense is Sense.MINIMIZE else -1.0

    # scipy.optimize.milp status codes:
    #   0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other
    values = np.asarray(result.x) if result.x is not None else None
    objective = None
    if values is not None:
        objective = sign * float(compiled.c @ values) + compiled.objective_constant

    if result.status == 0:
        status = SolutionStatus.OPTIMAL
    elif result.status == 1:
        status = SolutionStatus.FEASIBLE if values is not None else SolutionStatus.NO_SOLUTION
    elif result.status == 2:
        status = SolutionStatus.INFEASIBLE
    elif result.status == 3:
        status = SolutionStatus.UNBOUNDED
    else:
        status = SolutionStatus.FEASIBLE if values is not None else SolutionStatus.ERROR

    mip_gap = getattr(result, "mip_gap", None)
    node_count = int(getattr(result, "mip_node_count", 0) or 0)
    return IlpSolution(
        status=status,
        objective=objective,
        values=values,
        mip_gap=None if mip_gap is None else float(mip_gap),
        solve_time=elapsed,
        message=str(getattr(result, "message", "")) + warm_note,
        node_count=node_count,
    )
