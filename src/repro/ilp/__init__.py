"""Self-contained ILP modeling layer and pluggable solver backends.

The :class:`IlpModel` / :class:`Variable` / :func:`lin_sum` API is a minimal
PuLP-like modeling layer; models are solved through :func:`solve`, which
dispatches into the backend registry of :mod:`repro.ilp.backends`:
``"scipy"`` (HiGHS via ``scipy.optimize.milp``, the default), ``"bnb"``
(the pure-Python branch and bound) or ``"auto"`` (per-model choice by
size/structure with error fallback).  ``backend=None`` selects the process
default — ``REPRO_ILP_BACKEND`` or ``"scipy"``.
"""

from repro.ilp.cancellation import (
    CancelToken,
    cancel_scope,
    clamped_time_limit,
    current_cancel_token,
)
from repro.ilp.expr import INF, Constraint, LinExpr, Variable, lin_sum
from repro.ilp.model import CompiledModel, IlpModel, Sense
from repro.ilp.solution import IlpSolution, SolutionStatus
from repro.ilp.scipy_backend import SolverOptions, solve_with_scipy
from repro.ilp.branch_and_bound import solve_with_branch_and_bound
from repro.ilp.backends import (
    DEFAULT_BACKEND,
    ENV_BACKEND,
    AutoBackend,
    FunctionBackend,
    SolverBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    reset_solver_call_stats,
    resolve_backend_name,
    scoped_solver_stats,
    solve_model,
    solver_call_stats,
)


def solve(
    model: IlpModel,
    options: SolverOptions | None = None,
    backend: str | None = None,
) -> IlpSolution:
    """Solve ``model`` with the selected backend (``None`` = process default)."""
    return solve_model(model, options, backend)


__all__ = [
    "CancelToken",
    "cancel_scope",
    "clamped_time_limit",
    "current_cancel_token",
    "INF",
    "Constraint",
    "LinExpr",
    "Variable",
    "lin_sum",
    "CompiledModel",
    "IlpModel",
    "Sense",
    "IlpSolution",
    "SolutionStatus",
    "SolverOptions",
    "solve",
    "solve_with_scipy",
    "solve_with_branch_and_bound",
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "AutoBackend",
    "FunctionBackend",
    "SolverBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "solve_model",
    "scoped_solver_stats",
    "solver_call_stats",
    "reset_solver_call_stats",
]
