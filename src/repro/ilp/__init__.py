"""Self-contained ILP modeling layer and solver backends.

The :class:`IlpModel` / :class:`Variable` / :func:`lin_sum` API is a minimal
PuLP-like modeling layer; models are solved either through
:func:`solve_with_scipy` (HiGHS via ``scipy.optimize.milp``, the default) or
through the pure-Python :func:`solve_with_branch_and_bound` fallback.
"""

from repro.ilp.expr import INF, Constraint, LinExpr, Variable, lin_sum
from repro.ilp.model import CompiledModel, IlpModel, Sense
from repro.ilp.solution import IlpSolution, SolutionStatus
from repro.ilp.scipy_backend import SolverOptions, solve_with_scipy
from repro.ilp.branch_and_bound import solve_with_branch_and_bound


def solve(model: IlpModel, options: SolverOptions | None = None, backend: str = "scipy") -> IlpSolution:
    """Solve ``model`` with the selected backend (``"scipy"`` or ``"bnb"``)."""
    if backend == "scipy":
        return solve_with_scipy(model, options)
    if backend in ("bnb", "branch_and_bound"):
        return solve_with_branch_and_bound(model, options)
    raise ValueError(f"unknown ILP backend {backend!r}")


__all__ = [
    "INF",
    "Constraint",
    "LinExpr",
    "Variable",
    "lin_sum",
    "CompiledModel",
    "IlpModel",
    "Sense",
    "IlpSolution",
    "SolutionStatus",
    "SolverOptions",
    "solve",
    "solve_with_scipy",
    "solve_with_branch_and_bound",
]
