"""Cooperative cancellation for solver backends (and anything else slow).

The async execution core (:mod:`repro.exec`) and the composite pipeline
stages (:mod:`repro.pipeline.composite`) need a way to *stop* work that is
already running: a ``race(...)`` stage cancels losing branches once the
winner is decided, and a per-stage ``budget=<seconds>s`` wall-clock limit
must actually interrupt a long solve instead of merely being checked after
the fact.

The mechanism is a cooperative :class:`CancelToken` installed per thread
with :func:`cancel_scope`; long-running code polls
:func:`current_cancel_token`:

* the pure-Python branch-and-bound backend checks the token in its node
  loop, so cancellation (or an expired deadline) stops the solve at node
  granularity and returns the incumbent found so far;
* the scipy/HiGHS backend cannot interrupt ``scipy.optimize.milp`` once it
  is running; it checks the token *before* dispatching and clamps its
  ``time_limit`` to the token's remaining deadline, so a budget still
  bounds the solve (at HiGHS's own wall-clock granularity).

Tokens nest: a token created with ``parent=current_cancel_token()`` is
cancelled whenever the parent is, and its remaining time is the minimum
over the chain — a race branch under a budgeted race observes both the
race's budget and its own cancellation.

Determinism caveat: a deadline that actually *binds* makes results depend
on wall clock, exactly like ``SolverOptions.time_limit``.  Sweeps that must
be reproducible should use node limits and budgets generous enough not to
bind; the budget value itself is part of the canonical stage spec (and so
of the engine job hash), so a cached budgeted outcome is replayed as-is.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class CancelToken:
    """A cooperative cancellation signal with an optional wall-clock deadline."""

    def __init__(
        self,
        deadline: Optional[float] = None,
        parent: Optional["CancelToken"] = None,
    ) -> None:
        #: Absolute ``time.perf_counter()`` deadline (``None`` = no deadline).
        self.deadline = deadline
        self.parent = parent
        self._event = threading.Event()
        self._reason: Optional[str] = None

    @classmethod
    def after(
        cls, seconds: float, parent: Optional["CancelToken"] = None
    ) -> "CancelToken":
        """A token whose deadline is ``seconds`` from now."""
        return cls(deadline=time.perf_counter() + float(seconds), parent=parent)

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (idempotent, thread-safe).

        The first non-empty ``reason`` wins and is reported by
        :meth:`cancel_reason` — race/budget telemetry records *why* a
        branch stopped, not just that it did.
        """
        if reason is not None and self._reason is None and not self._event.is_set():
            self._reason = reason
        self._event.set()

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`cancel` was called on this token or an ancestor."""
        if self._event.is_set():
            return True
        return self.parent.cancel_requested if self.parent is not None else False

    def deadline_expired(self) -> bool:
        """Whether this token's (or an ancestor's) deadline has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def cancelled(self) -> bool:
        """Whether work should stop: cancel requested or deadline expired."""
        return self.cancel_requested or self.deadline_expired()

    def cancel_reason(self) -> Optional[str]:
        """Why work stopped: the nearest explicit reason in the chain,
        ``"deadline expired"`` for a binding deadline, else ``None``."""
        token: Optional[CancelToken] = self
        while token is not None:
            if token._event.is_set():
                return token._reason if token._reason else "cancelled"
            token = token.parent
        if self.deadline_expired():
            return "deadline expired"
        return None

    def remaining(self) -> Optional[float]:
        """Seconds until the tightest deadline in the chain (``None`` = no
        deadline anywhere; may be negative once expired)."""
        now = time.perf_counter()
        remaining: Optional[float] = None
        token: Optional[CancelToken] = self
        while token is not None:
            if token.deadline is not None:
                left = token.deadline - now
                remaining = left if remaining is None else min(remaining, left)
            token = token.parent
        return remaining


_CURRENT = threading.local()


def current_cancel_token() -> Optional[CancelToken]:
    """The token installed in this thread (``None`` outside any scope)."""
    return getattr(_CURRENT, "token", None)


@contextmanager
def cancel_scope(token: Optional[CancelToken]) -> Iterator[Optional[CancelToken]]:
    """Install ``token`` as this thread's current cancellation token.

    Scopes restore the previous token on exit and may nest; installing
    ``None`` temporarily shields the body from an outer scope.
    """
    previous = current_cancel_token()
    _CURRENT.token = token
    try:
        yield token
    finally:
        _CURRENT.token = previous


def clamped_time_limit(time_limit: Optional[float]) -> Optional[float]:
    """``time_limit`` clamped to the current token's remaining deadline.

    Backends whose solver cannot be interrupted mid-solve (HiGHS through
    ``scipy.optimize.milp``) call this so a wall-clock budget still bounds
    the solve.  Returns the tighter of the two (``None`` = unlimited); an
    already-expired deadline yields a tiny positive limit rather than zero,
    which some solvers treat as "no limit".
    """
    token = current_cancel_token()
    remaining = token.remaining() if token is not None else None
    if remaining is None:
        return time_limit
    remaining = max(remaining, 1e-3)
    if time_limit is None:
        return remaining
    return min(float(time_limit), remaining)
