"""The ILP model container and its compilation to sparse-matrix form."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import IlpError
from repro.ilp.expr import INF, Constraint, LinExpr, Variable, lin_sum


class Sense(enum.Enum):
    """Optimization direction."""

    MINIMIZE = 1
    MAXIMIZE = -1


@dataclass
class CompiledModel:
    """Arrays describing the model in the form consumed by solver backends.

    ``A`` is a CSR matrix of constraint coefficients; the model is
    ``minimize c @ x`` subject to ``con_lb <= A x <= con_ub`` and
    ``var_lb <= x <= var_ub`` with ``x_i`` integer where ``integrality_i = 1``.
    (Maximization objectives are compiled by negating ``c``.)
    """

    c: np.ndarray
    A: sparse.csr_matrix
    con_lb: np.ndarray
    con_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    integrality: np.ndarray
    objective_constant: float
    sense: Sense

    @property
    def num_variables(self) -> int:
        return int(self.c.shape[0])

    def objective_value(self, values: np.ndarray) -> float:
        """Objective of a variable assignment in the *original* model space."""
        sign = 1.0 if self.sense is Sense.MINIMIZE else -1.0
        return sign * float(self.c @ np.asarray(values, dtype=float)) + self.objective_constant

    def is_feasible(self, values: Sequence[float], tol: float = 1e-6) -> bool:
        """Whether ``values`` satisfies bounds, integrality and constraints.

        Used to vet externally supplied warm-start solutions before a solver
        backend installs them as the initial incumbent.  Violations within
        ``tol`` (absolute) are accepted.
        """
        x = np.asarray(values, dtype=float)
        if x.shape != (self.num_variables,):
            return False
        if np.any(x < self.var_lb - tol) or np.any(x > self.var_ub + tol):
            return False
        integers = self.integrality.astype(bool)
        if integers.any() and np.any(np.abs(x[integers] - np.round(x[integers])) > tol):
            return False
        if self.A.shape[0]:
            row_values = np.asarray(self.A @ x).ravel()
            lb_ok = np.where(np.isfinite(self.con_lb), row_values >= self.con_lb - tol, True)
            ub_ok = np.where(np.isfinite(self.con_ub), row_values <= self.con_ub + tol, True)
            if not (np.all(lb_ok) and np.all(ub_ok)):
                return False
        return True


class IlpModel:
    """A mixed-integer linear program under construction.

    Example
    -------
    >>> m = IlpModel("example")
    >>> x = m.add_binary("x")
    >>> y = m.add_continuous("y", lower=0, upper=10)
    >>> m.add_constraint(2 * x + y <= 5)
    >>> m.minimize(y - 3 * x)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense: Sense = Sense.MINIMIZE
        self._compiled: Optional[CompiledModel] = None

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def _add_variable(self, name: str, lower: float, upper: float, is_integer: bool) -> Variable:
        var = Variable(len(self.variables), name, lower, upper, is_integer)
        self.variables.append(var)
        self._compiled = None
        return var

    def add_binary(self, name: str) -> Variable:
        """Add a binary (0/1) variable."""
        return self._add_variable(name, 0.0, 1.0, True)

    def add_integer(self, name: str, lower: float = 0.0, upper: float = INF) -> Variable:
        """Add a general integer variable."""
        return self._add_variable(name, lower, upper, True)

    def add_continuous(self, name: str, lower: float = 0.0, upper: float = INF) -> Variable:
        """Add a continuous variable."""
        return self._add_variable(name, lower, upper, False)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_binary_variables(self) -> int:
        return sum(1 for v in self.variables if v.is_integer and v.upper <= 1.0)

    # ------------------------------------------------------------------
    # constraints and objective
    # ------------------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise IlpError(
                "add_constraint expects a Constraint (built from a comparison of "
                f"linear expressions), got {constraint!r}"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        self._compiled = None
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for con in constraints:
            self.add_constraint(con)

    def minimize(self, expr) -> None:
        """Set a minimization objective."""
        self._objective = LinExpr._coerce(expr).copy()
        self._sense = Sense.MINIMIZE
        self._compiled = None

    def maximize(self, expr) -> None:
        """Set a maximization objective."""
        self._objective = LinExpr._coerce(expr).copy()
        self._sense = Sense.MAXIMIZE
        self._compiled = None

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def sense(self) -> Sense:
        return self._sense

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledModel:
        """Compile to the sparse arrays used by the solver backends.

        The result is memoized (and invalidated by every mutation — adding
        variables or constraints, setting the objective), so the warm-start
        schedule encoder's feasibility vetting and the solver backend's own
        compile of the same model share one pass over the constraint set.
        """
        if self._compiled is not None:
            return self._compiled
        n = len(self.variables)
        c = np.zeros(n)
        for idx, coeff in self._objective.coeffs.items():
            c[idx] = coeff
        if self._sense is Sense.MAXIMIZE:
            c = -c

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        con_lb = np.empty(len(self.constraints))
        con_ub = np.empty(len(self.constraints))
        for i, con in enumerate(self.constraints):
            for idx, coeff in con.expr.coeffs.items():
                if coeff:
                    rows.append(i)
                    cols.append(idx)
                    vals.append(coeff)
            # fold the expression constant into the bounds
            con_lb[i] = con.lower - con.expr.constant if con.lower != -INF else -INF
            con_ub[i] = con.upper - con.expr.constant if con.upper != INF else INF
        A = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(self.constraints), n), dtype=float
        )
        var_lb = np.array([v.lower for v in self.variables])
        var_ub = np.array([v.upper for v in self.variables])
        integrality = np.array([1 if v.is_integer else 0 for v in self.variables])
        self._compiled = CompiledModel(
            c=c,
            A=A,
            con_lb=con_lb,
            con_ub=con_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            integrality=integrality,
            objective_constant=self._objective.constant,
            sense=self._sense,
        )
        return self._compiled

    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, int]:
        """Model size statistics (for logging and tests)."""
        return {
            "variables": self.num_variables,
            "binaries": self.num_binary_variables,
            "integers": sum(1 for v in self.variables if v.is_integer),
            "continuous": sum(1 for v in self.variables if not v.is_integer),
            "constraints": self.num_constraints,
            "nonzeros": sum(len(c.expr.coeffs) for c in self.constraints),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.statistics()
        return (
            f"IlpModel({self.name!r}, vars={stats['variables']}, "
            f"cons={stats['constraints']})"
        )
