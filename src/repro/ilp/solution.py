"""Solver-independent representation of ILP solutions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.ilp.expr import LinExpr, Variable


class SolutionStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # a solution was found, optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"    # limit reached without an incumbent
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE)


@dataclass
class IlpSolution:
    """Result of solving an :class:`~repro.ilp.model.IlpModel`."""

    status: SolutionStatus
    objective: Optional[float] = None
    values: Optional[np.ndarray] = None
    mip_gap: Optional[float] = None
    solve_time: float = 0.0
    message: str = ""
    node_count: int = 0

    @property
    def has_solution(self) -> bool:
        return self.status.has_solution and self.values is not None

    def value(self, item: Union[Variable, LinExpr]) -> float:
        """Value of a variable or expression in this solution."""
        if self.values is None:
            raise ValueError("solution has no variable values")
        if isinstance(item, Variable):
            return float(self.values[item.index])
        if isinstance(item, LinExpr):
            return float(item.value(self.values))
        raise TypeError(f"cannot evaluate {item!r}")

    def binary_value(self, var: Variable, tolerance: float = 1e-4) -> bool:
        """Rounded value of a binary variable."""
        return self.value(var) > 0.5 + 0.0 * tolerance if self.values is not None else False

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status.value,
            "objective": self.objective,
            "mip_gap": self.mip_gap,
            "solve_time": self.solve_time,
            "node_count": self.node_count,
            "message": self.message,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IlpSolution(status={self.status.value}, objective={self.objective}, "
            f"time={self.solve_time:.2f}s)"
        )
