"""Linear expressions and variables for the ILP modeling layer.

The modeling layer is a small, self-contained replacement for libraries such
as PuLP: variables, linear expressions and constraints are built with natural
Python arithmetic and comparison operators, and the resulting model is
compiled into the sparse-matrix form expected by the solver backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Union

from repro.exceptions import IlpError

Number = Union[int, float]
INF = float("inf")

#: Type tag mixed into Variable.__hash__ ("REPR" in ASCII).  A fixed int —
#: never id()/str material, whose hashes vary per process — keeps variable
#: hashes (and anything keyed on them) stable across workers and shards.
_VARIABLE_HASH_TAG = 0x52455052


class Variable:
    """A decision variable (continuous, integer or binary).

    Variables are created through :class:`~repro.ilp.model.IlpModel`; they
    carry their index in the model's variable vector so expressions can be
    compiled to sparse arrays without lookups.
    """

    __slots__ = ("index", "name", "lower", "upper", "is_integer")

    def __init__(
        self,
        index: int,
        name: str,
        lower: float = 0.0,
        upper: float = INF,
        is_integer: bool = False,
    ) -> None:
        if lower > upper:
            raise IlpError(f"variable {name!r}: lower bound {lower} exceeds upper bound {upper}")
        self.index = index
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.is_integer = bool(is_integer)

    # arithmetic: promote to LinExpr ------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other) -> "LinExpr":
        return self._expr() + other

    def __radd__(self, other) -> "LinExpr":
        return self._expr() + other

    def __sub__(self, other) -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self._expr()) + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self._expr() * other

    def __rmul__(self, other: Number) -> "LinExpr":
        return self._expr() * other

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1.0

    # comparisons: build constraints ------------------------------------
    def __le__(self, other) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return self._expr() == other

    def __hash__(self) -> int:
        # an int-only tuple: int hashing is not PYTHONHASHSEED-salted, so
        # the hash (unlike id()- or string-based keys) is identical across
        # worker processes and shards
        return hash((_VARIABLE_HASH_TAG, self.index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "int" if self.is_integer else "cont"
        return f"Variable({self.name!r}, {kind}, [{self.lower}, {self.upper}])"


class LinExpr:
    """A linear expression ``sum_i coeff_i * x_i + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Mapping[int, float]] = None, constant: float = 0.0) -> None:
        self.coeffs: Dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise IlpError(f"cannot use {value!r} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    # in-place accumulation (used by the model builders for speed) ------
    def add_term(self, var: Variable, coeff: float) -> "LinExpr":
        """Add ``coeff * var`` in place and return self."""
        if coeff:
            self.coeffs[var.index] = self.coeffs.get(var.index, 0.0) + coeff
        return self

    def add_constant(self, value: float) -> "LinExpr":
        self.constant += value
        return self

    def add_expr(self, other: "LinExpr", scale: float = 1.0) -> "LinExpr":
        for idx, coeff in other.coeffs.items():
            self.coeffs[idx] = self.coeffs.get(idx, 0.0) + scale * coeff
        self.constant += scale * other.constant
        return self

    # arithmetic ---------------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        out = self.copy()
        out.add_expr(LinExpr._coerce(other))
        return out

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        out = self.copy()
        out.add_expr(LinExpr._coerce(other), scale=-1.0)
        return out

    def __rsub__(self, other) -> "LinExpr":
        out = LinExpr._coerce(other).copy()
        out.add_expr(self, scale=-1.0)
        return out

    def __mul__(self, other: Number) -> "LinExpr":
        if not isinstance(other, (int, float)):
            raise IlpError("linear expressions can only be multiplied by scalars")
        return LinExpr({k: v * other for k, v in self.coeffs.items()}, self.constant * other)

    def __rmul__(self, other: Number) -> "LinExpr":
        return self.__mul__(other)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # comparisons --------------------------------------------------------
    def __le__(self, other) -> "Constraint":
        diff = self - LinExpr._coerce(other)
        return Constraint(diff, -INF, 0.0)

    def __ge__(self, other) -> "Constraint":
        diff = self - LinExpr._coerce(other)
        return Constraint(diff, 0.0, INF)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        diff = self - LinExpr._coerce(other)
        return Constraint(diff, 0.0, 0.0)

    def __hash__(self) -> int:  # expressions are mutable; identity hash
        return id(self)

    def value(self, values) -> float:
        """Evaluate the expression for a variable-value vector or mapping."""
        total = self.constant
        for idx, coeff in self.coeffs.items():
            total += coeff * values[idx]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms} + {self.constant:g})"


def lin_sum(items: Iterable) -> LinExpr:
    """Sum an iterable of variables / expressions / numbers into one LinExpr."""
    out = LinExpr()
    for item in items:
        if isinstance(item, Variable):
            out.add_term(item, 1.0)
        elif isinstance(item, LinExpr):
            out.add_expr(item)
        elif isinstance(item, (int, float)):
            out.add_constant(float(item))
        else:
            raise IlpError(f"cannot sum {item!r}")
    return out


@dataclass
class Constraint:
    """A two-sided linear constraint ``lower <= expr <= upper``.

    The expression's constant term is folded into the bounds when the model
    is compiled.
    """

    expr: LinExpr
    lower: float
    upper: float
    name: str = ""

    def with_name(self, name: str) -> "Constraint":
        self.name = name
        return self
