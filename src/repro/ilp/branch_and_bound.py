"""A pure-Python branch-and-bound MILP solver.

This backend exists for two reasons: it is a dependency-free fallback when
the HiGHS MILP interface is unavailable, and it is useful in tests because
its behaviour is fully transparent.  It solves LP relaxations with
``scipy.optimize.linprog`` (HiGHS LP) and branches on the most fractional
integer variable, using best-first search with incumbent pruning.

It is intended for *small* models only (up to a few hundred integer
variables); the main experiments use the :mod:`repro.ilp.scipy_backend`.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.ilp.cancellation import current_cancel_token
from repro.ilp.model import CompiledModel, IlpModel, Sense
from repro.ilp.scipy_backend import SolverOptions
from repro.ilp.solution import IlpSolution, SolutionStatus

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node: extra variable bounds on top of the root LP."""

    bound: float
    counter: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


def _split_constraints(compiled: CompiledModel):
    """Convert two-sided row bounds into the A_ub / A_eq form of ``linprog``."""
    if compiled.A.shape[0] == 0:
        return None, None, None, None
    lb, ub = compiled.con_lb, compiled.con_ub
    eq_mask = np.isfinite(lb) & np.isfinite(ub) & (np.abs(ub - lb) < 1e-12)
    ub_mask = np.isfinite(ub) & ~eq_mask
    lb_mask = np.isfinite(lb) & ~eq_mask

    A_eq = compiled.A[eq_mask] if eq_mask.any() else None
    b_eq = ub[eq_mask] if eq_mask.any() else None

    ub_rows = []
    ub_rhs = []
    if ub_mask.any():
        ub_rows.append(compiled.A[ub_mask])
        ub_rhs.append(ub[ub_mask])
    if lb_mask.any():
        ub_rows.append(-compiled.A[lb_mask])
        ub_rhs.append(-lb[lb_mask])
    if ub_rows:
        A_ub = sparse.vstack(ub_rows)
        b_ub = np.concatenate(ub_rhs)
    else:
        A_ub, b_ub = None, None
    return A_ub, b_ub, A_eq, b_eq


def _solve_lp(compiled: CompiledModel, lower: np.ndarray, upper: np.ndarray,
              split=None):
    """Solve the LP relaxation with the given variable bounds."""
    if split is None:
        split = _split_constraints(compiled)
    A_ub, b_ub, A_eq, b_eq = split
    bounds = list(zip(lower, np.where(np.isfinite(upper), upper, None)))
    bounds = [
        (lo, None if up is None or up == float("inf") else up) for lo, up in bounds
    ]
    res = optimize.linprog(
        c=compiled.c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    return res


def _most_fractional(values: np.ndarray, integrality: np.ndarray) -> Optional[int]:
    """Index of the integer variable whose value is farthest from integral."""
    best_idx, best_frac = None, _INT_TOL
    for idx in np.nonzero(integrality)[0]:
        frac = abs(values[idx] - round(values[idx]))
        if frac > best_frac:
            best_frac = frac
            best_idx = int(idx)
    return best_idx


def solve_with_branch_and_bound(
    model: IlpModel, options: Optional[SolverOptions] = None
) -> IlpSolution:
    """Solve ``model`` by LP-based branch and bound.

    Returns the best incumbent found within the time/node limits; the status
    is ``OPTIMAL`` only when the search tree was exhausted.  Limit semantics
    match the scipy backend: ``time_limit=None`` and ``node_limit=None`` mean
    unlimited, ``node_limit=0`` forbids exploring any node, and hitting a
    limit yields ``FEASIBLE`` with an incumbent or ``NO_SOLUTION`` without
    one.  A ``warm_start_objective`` becomes the initial incumbent bound:
    only strictly better solutions are searched for, and exhausting the tree
    without finding one reports ``NO_SOLUTION`` (the warm start stands).
    Nodes whose LP bound is within ``mip_rel_gap`` of the incumbent are
    pruned, mirroring the gap-based early stop of the scipy backend.

    A ``warm_start_solution`` (a full, feasible variable assignment) becomes
    the *initial incumbent*: the search can only improve on it, and when the
    tree is exhausted without an improvement the warm solution itself is
    returned with status ``OPTIMAL`` — a true solution warm start, unlike
    the objective-only bound.  Infeasible warm solutions are ignored (noted
    in the result message).
    """
    options = options or SolverOptions()
    compiled = model.compile()
    start = time.perf_counter()
    deadline = None if options.time_limit is None else start + options.time_limit
    # a cancellation scope (race branches, budgeted stages) tightens the
    # deadline and is additionally polled per node, so cancel() interrupts
    # even a solve submitted without any time limit
    cancel_token = current_cancel_token()
    if cancel_token is not None:
        token_remaining = cancel_token.remaining()
        if token_remaining is not None:
            token_deadline = start + max(token_remaining, 0.0)
            deadline = token_deadline if deadline is None else min(deadline, token_deadline)
    node_limit = math.inf if options.node_limit is None else max(0, int(options.node_limit))

    sign = 1.0 if compiled.sense is Sense.MINIMIZE else -1.0

    # the incumbent bound lives in compiled space (minimize c @ x, constant
    # excluded); a warm start is converted from the original objective space
    warm_bound = math.inf
    if options.warm_start_objective is not None:
        warm_bound = sign * (float(options.warm_start_objective) - compiled.objective_constant)

    # a true warm-start *solution* becomes the initial incumbent (after a
    # feasibility check): the search can only improve on it, and an exhausted
    # tree returns it as proven optimal instead of NO_SOLUTION
    warm_incumbent: Optional[np.ndarray] = None
    warm_incumbent_obj = math.inf
    warm_note = ""
    if options.warm_start_solution is not None:
        candidate = np.asarray(options.warm_start_solution, dtype=float)
        if candidate.shape != (compiled.c.shape[0],):
            raise ValueError(
                f"warm_start_solution has {candidate.shape} values, model has "
                f"{compiled.c.shape[0]} variables"
            )
        if compiled.is_feasible(candidate):
            warm_incumbent = candidate.copy()
            int_idx = np.nonzero(compiled.integrality)[0]
            warm_incumbent[int_idx] = np.round(warm_incumbent[int_idx])
            warm_incumbent_obj = float(compiled.c @ warm_incumbent)
        else:
            warm_note = " (warm-start solution rejected: infeasible)"

    def prune_tolerance(bound_value: float) -> float:
        """Prune margin under the incumbent: at least 1e-9, at most the gap."""
        if not math.isfinite(bound_value):
            return 1e-9
        return max(1e-9, options.mip_rel_gap * abs(bound_value))

    # ``incumbent``/``incumbent_obj`` always describe a real solution (or
    # none); ``cutoff_obj`` is the pruning threshold, which may be tighter
    # than the incumbent when an explicit warm_start_objective says a better
    # solution is known elsewhere (e.g. the scheduler injects the two-stage
    # baseline cost while the caller supplied a weaker warm solution)
    incumbent: Optional[np.ndarray] = warm_incumbent
    incumbent_obj = warm_incumbent_obj
    cutoff_obj = min(warm_bound, warm_incumbent_obj)
    counter = itertools.count()
    explored = 0
    exhausted = True

    split = _split_constraints(compiled)

    root = _Node(
        bound=-math.inf,
        counter=next(counter),
        lower=compiled.var_lb.astype(float).copy(),
        upper=compiled.var_ub.astype(float).copy(),
    )
    heap: List[_Node] = [root]

    while heap:
        if deadline is not None and time.perf_counter() > deadline:
            exhausted = False
            break
        if cancel_token is not None and cancel_token.cancel_requested:
            exhausted = False
            break
        if explored >= node_limit:
            exhausted = False
            break
        node = heapq.heappop(heap)
        if node.bound >= cutoff_obj - prune_tolerance(cutoff_obj):
            continue
        res = _solve_lp(compiled, node.lower, node.upper, split=split)
        explored += 1
        if res.status != 0 or res.x is None:
            continue  # infeasible or failed subproblem: prune
        lp_obj = float(res.fun)
        if lp_obj >= cutoff_obj - prune_tolerance(cutoff_obj):
            continue
        branch_var = _most_fractional(res.x, compiled.integrality)
        if branch_var is None:
            # integral solution: new incumbent
            values = res.x.copy()
            int_idx = np.nonzero(compiled.integrality)[0]
            values[int_idx] = np.round(values[int_idx])
            if lp_obj < cutoff_obj:
                incumbent = values
                incumbent_obj = lp_obj
                cutoff_obj = lp_obj
            continue
        value = res.x[branch_var]
        # branch down
        down = _Node(
            bound=lp_obj,
            counter=next(counter),
            lower=node.lower.copy(),
            upper=node.upper.copy(),
        )
        down.upper[branch_var] = math.floor(value)
        # branch up
        up = _Node(
            bound=lp_obj,
            counter=next(counter),
            lower=node.lower.copy(),
            upper=node.upper.copy(),
        )
        up.lower[branch_var] = math.ceil(value)
        if down.lower[branch_var] <= down.upper[branch_var]:
            heapq.heappush(heap, down)
        if up.lower[branch_var] <= up.upper[branch_var]:
            heapq.heappush(heap, up)

    elapsed = time.perf_counter() - start
    if incumbent is None:
        if math.isfinite(warm_bound):
            # not infeasible: the warm-start incumbent was simply not beaten
            status = SolutionStatus.NO_SOLUTION
            message = (
                "branch-and-bound proved the warm start cannot be improved"
                if exhausted
                else "branch-and-bound hit its limits without improving the warm start"
            )
        else:
            status = SolutionStatus.INFEASIBLE if exhausted else SolutionStatus.NO_SOLUTION
            message = "branch-and-bound finished without an incumbent"
        return IlpSolution(
            status=status,
            solve_time=elapsed,
            node_count=explored,
            message=message + warm_note,
        )
    objective = sign * incumbent_obj + compiled.objective_constant
    # an exhausted tree proves nothing cheaper than ``cutoff_obj`` exists;
    # that proves the incumbent optimal only when the explicit warm bound was
    # not tighter than the incumbent's own objective
    proven = exhausted and incumbent_obj <= cutoff_obj + prune_tolerance(cutoff_obj)
    status = SolutionStatus.OPTIMAL if proven else SolutionStatus.FEASIBLE
    message = "branch-and-bound"
    if incumbent is warm_incumbent:
        message += (
            " (warm-start solution proven optimal)"
            if proven
            else " (warm-start solution kept)"
        )
    return IlpSolution(
        status=status,
        objective=objective,
        values=incumbent,
        solve_time=elapsed,
        node_count=explored,
        message=message + warm_note,
    )
