"""A pure-Python branch-and-bound MILP solver.

This backend exists for two reasons: it is a dependency-free fallback when
the HiGHS MILP interface is unavailable, and it is useful in tests because
its behaviour is fully transparent.  It solves LP relaxations with
``scipy.optimize.linprog`` (HiGHS LP) and branches on the most fractional
integer variable, using best-first search with incumbent pruning.

It is intended for *small* models only (up to a few hundred integer
variables); the main experiments use the :mod:`repro.ilp.scipy_backend`.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.ilp.model import CompiledModel, IlpModel, Sense
from repro.ilp.scipy_backend import SolverOptions
from repro.ilp.solution import IlpSolution, SolutionStatus

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node: extra variable bounds on top of the root LP."""

    bound: float
    counter: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


def _split_constraints(compiled: CompiledModel):
    """Convert two-sided row bounds into the A_ub / A_eq form of ``linprog``."""
    if compiled.A.shape[0] == 0:
        return None, None, None, None
    lb, ub = compiled.con_lb, compiled.con_ub
    eq_mask = np.isfinite(lb) & np.isfinite(ub) & (np.abs(ub - lb) < 1e-12)
    ub_mask = np.isfinite(ub) & ~eq_mask
    lb_mask = np.isfinite(lb) & ~eq_mask

    A_eq = compiled.A[eq_mask] if eq_mask.any() else None
    b_eq = ub[eq_mask] if eq_mask.any() else None

    ub_rows = []
    ub_rhs = []
    if ub_mask.any():
        ub_rows.append(compiled.A[ub_mask])
        ub_rhs.append(ub[ub_mask])
    if lb_mask.any():
        ub_rows.append(-compiled.A[lb_mask])
        ub_rhs.append(-lb[lb_mask])
    if ub_rows:
        A_ub = sparse.vstack(ub_rows)
        b_ub = np.concatenate(ub_rhs)
    else:
        A_ub, b_ub = None, None
    return A_ub, b_ub, A_eq, b_eq


def _solve_lp(compiled: CompiledModel, lower: np.ndarray, upper: np.ndarray,
              split=None):
    """Solve the LP relaxation with the given variable bounds."""
    if split is None:
        split = _split_constraints(compiled)
    A_ub, b_ub, A_eq, b_eq = split
    bounds = list(zip(lower, np.where(np.isfinite(upper), upper, None)))
    bounds = [
        (lo, None if up is None or up == float("inf") else up) for lo, up in bounds
    ]
    res = optimize.linprog(
        c=compiled.c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    return res


def _most_fractional(values: np.ndarray, integrality: np.ndarray) -> Optional[int]:
    """Index of the integer variable whose value is farthest from integral."""
    best_idx, best_frac = None, _INT_TOL
    for idx in np.nonzero(integrality)[0]:
        frac = abs(values[idx] - round(values[idx]))
        if frac > best_frac:
            best_frac = frac
            best_idx = int(idx)
    return best_idx


def solve_with_branch_and_bound(
    model: IlpModel, options: Optional[SolverOptions] = None
) -> IlpSolution:
    """Solve ``model`` by LP-based branch and bound.

    Returns the best incumbent found within the time/node limits; the status
    is ``OPTIMAL`` only when the search tree was exhausted.
    """
    options = options or SolverOptions()
    compiled = model.compile()
    start = time.perf_counter()
    deadline = None if options.time_limit is None else start + options.time_limit
    node_limit = options.node_limit or 100_000

    sign = 1.0 if compiled.sense is Sense.MINIMIZE else -1.0

    incumbent: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    counter = itertools.count()
    explored = 0
    exhausted = True

    split = _split_constraints(compiled)

    root = _Node(
        bound=-math.inf,
        counter=next(counter),
        lower=compiled.var_lb.astype(float).copy(),
        upper=compiled.var_ub.astype(float).copy(),
    )
    heap: List[_Node] = [root]

    while heap:
        if deadline is not None and time.perf_counter() > deadline:
            exhausted = False
            break
        if explored >= node_limit:
            exhausted = False
            break
        node = heapq.heappop(heap)
        if node.bound >= incumbent_obj - 1e-9:
            continue
        res = _solve_lp(compiled, node.lower, node.upper, split=split)
        explored += 1
        if res.status != 0 or res.x is None:
            continue  # infeasible or failed subproblem: prune
        lp_obj = float(res.fun)
        if lp_obj >= incumbent_obj - 1e-9:
            continue
        branch_var = _most_fractional(res.x, compiled.integrality)
        if branch_var is None:
            # integral solution: new incumbent
            values = res.x.copy()
            int_idx = np.nonzero(compiled.integrality)[0]
            values[int_idx] = np.round(values[int_idx])
            if lp_obj < incumbent_obj:
                incumbent = values
                incumbent_obj = lp_obj
            continue
        value = res.x[branch_var]
        # branch down
        down = _Node(
            bound=lp_obj,
            counter=next(counter),
            lower=node.lower.copy(),
            upper=node.upper.copy(),
        )
        down.upper[branch_var] = math.floor(value)
        # branch up
        up = _Node(
            bound=lp_obj,
            counter=next(counter),
            lower=node.lower.copy(),
            upper=node.upper.copy(),
        )
        up.lower[branch_var] = math.ceil(value)
        if down.lower[branch_var] <= down.upper[branch_var]:
            heapq.heappush(heap, down)
        if up.lower[branch_var] <= up.upper[branch_var]:
            heapq.heappush(heap, up)

    elapsed = time.perf_counter() - start
    if incumbent is None:
        status = SolutionStatus.INFEASIBLE if exhausted else SolutionStatus.NO_SOLUTION
        return IlpSolution(
            status=status,
            solve_time=elapsed,
            node_count=explored,
            message="branch-and-bound finished without an incumbent",
        )
    objective = sign * incumbent_obj + compiled.objective_constant
    status = SolutionStatus.OPTIMAL if exhausted else SolutionStatus.FEASIBLE
    return IlpSolution(
        status=status,
        objective=objective,
        values=incumbent,
        solve_time=elapsed,
        node_count=explored,
        message="branch-and-bound",
    )
