"""Built-in pipeline stages and their registry entries.

* one two-stage heuristic stage per first-stage scheduler (``bspg``,
  ``cilk``, ``etf``, ``dfs``, ``bsp-ilp``), each taking a cache-eviction
  ``policy`` (spelled ``"bspg+clairvoyant"`` in specs);
* ``baseline`` — the paper's automatic baseline (DFS for ``P = 1``, BSPg
  otherwise, clairvoyant eviction), the stage auto-prepended when a spec
  starts with an incumbent-consuming stage;
* ``ilp`` — the holistic ILP scheduler warm-started from the incumbent; by
  default the incumbent schedule is *encoded into a full warm-start
  solution* (:mod:`repro.core.encoding`) so the branch-and-bound backend
  starts from it as its initial incumbent (``warm=objective`` restores the
  historical cost-only warm start);
* ``refine`` — local-search post-optimization of the incumbent
  (:mod:`repro.refine`), with optional per-stage budget/strategy/seed
  overrides;
* ``dac`` — the divide-and-conquer ILP, reported as-is (it ignores the
  incumbent; the paper's Table 2 contract).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.model.instance import MbspInstance
from repro.pipeline.registry import StageFactory, register_stage
from repro.pipeline.stage import (
    Incumbent,
    StageContext,
    StageResult,
    schedule_digest,
)

#: All first-stage/policy combinations exposed as two-stage stages.
TWO_STAGE_SCHEDULERS = ("bspg", "cilk", "etf", "dfs", "bsp-ilp")
TWO_STAGE_POLICIES = ("clairvoyant", "lru", "fifo")

DEFAULT_POLICY = "clairvoyant"


def _canonical_options(pairs) -> str:
    inner = ",".join(f"{key}={value}" for key, value in sorted(pairs))
    return f"({inner})" if inner else ""


def _int_option(options: Mapping[str, str], key: str, stage: str) -> Optional[int]:
    if key not in options:
        return None
    try:
        return int(options[key])
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"stage {stage!r}: option {key}={options[key]!r} is not an integer"
        ) from None


def _float_option(options: Mapping[str, str], key: str, stage: str) -> Optional[float]:
    if key not in options:
        return None
    try:
        return float(options[key])
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"stage {stage!r}: option {key}={options[key]!r} is not a number"
        ) from None


# ----------------------------------------------------------------------
# two-stage heuristics
# ----------------------------------------------------------------------
class TwoStageStage:
    """One two-stage pipeline: a first-stage BSP scheduler + cache policy."""

    requires_incumbent = False
    prunable = False
    prune_label = ("base cost", "stage pruned")
    # a ConfigurationError here means "does not apply to this instance"
    # (e.g. the DFS first stage with P > 1), not a misconfiguration
    config_error_means_inapplicable = True

    def __init__(self, scheduler: str, policy: str = DEFAULT_POLICY) -> None:
        if policy not in TWO_STAGE_POLICIES:
            raise ConfigurationError(
                f"unknown cache policy {policy!r}; available: {TWO_STAGE_POLICIES}"
            )
        self.name = scheduler
        self.policy = policy

    def spec_token(self) -> str:
        return f"{self.name}+{self.policy}"

    def run(
        self, instance: MbspInstance, incumbent: Optional[Incumbent], ctx: StageContext
    ) -> StageResult:
        from repro.core.two_stage import run_two_stage

        config = ctx.config
        bsp_ilp_config = None
        if self.name in ("bsp-ilp", "bsp_ilp"):
            # the first-stage ILP must honour the configured backend and
            # budgets: the engine's job hash covers them, so solving with
            # anything else would poison backend sweeps through the cache
            from repro.bsp.ilp import BspIlpConfig
            from repro.ilp import SolverOptions

            bsp_ilp_config = BspIlpConfig(
                solver_options=SolverOptions(
                    time_limit=config.ilp_time_limit, node_limit=config.ilp_node_limit
                ),
                backend=config.ilp_backend,
            )
        result = run_two_stage(
            instance,
            scheduler=self.name,
            policy=self.policy,
            synchronous=ctx.synchronous,
            seed=ctx.seed,
            bsp_ilp_config=bsp_ilp_config,
        )
        return StageResult(
            stage=self.spec_token(),
            schedule=result.mbsp_schedule,
            cost=result.cost,
            status=f"schedule:{schedule_digest(result.mbsp_schedule)}",
        )


def _two_stage_factory(scheduler: str) -> StageFactory:
    def build(options: Mapping[str, str]):
        return TwoStageStage(scheduler, options.get("policy", DEFAULT_POLICY))

    first_stage_doc = {
        "bspg": "greedy BSP list scheduling (the paper's main baseline)",
        "cilk": "Cilk-style work stealing",
        "etf": "earliest task first",
        "dfs": "DFS ordering (single-processor pebbling; requires P = 1)",
        "bsp-ilp": "ILP-based BSP first stage (solver-backed)",
    }[scheduler]
    return StageFactory(
        name=scheduler,
        description=f"two-stage heuristic: {first_stage_doc} + a cache "
        f"policy ({'/'.join(TWO_STAGE_POLICIES)}); spelled "
        f"'{scheduler}+<policy>'",
        build=build,
        options=(("policy", DEFAULT_POLICY),),
    )


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class BaselineStage:
    """The automatic baseline: DFS for single-processor instances, else BSPg."""

    name = "baseline"
    requires_incumbent = False
    prunable = False
    prune_label = ("baseline cost", "stage pruned")
    config_error_means_inapplicable = False

    def spec_token(self) -> str:
        return self.name

    def run(
        self, instance: MbspInstance, incumbent: Optional[Incumbent], ctx: StageContext
    ) -> StageResult:
        from repro.core.two_stage import baseline_schedule

        result = baseline_schedule(instance, synchronous=ctx.synchronous, seed=ctx.seed)
        return StageResult(
            stage=self.name,
            schedule=result.mbsp_schedule,
            cost=result.cost,
            status=f"schedule:{schedule_digest(result.mbsp_schedule)}",
        )


# ----------------------------------------------------------------------
# holistic ILP
# ----------------------------------------------------------------------
class IlpStage:
    """The holistic ILP scheduler, warm-started from the incumbent.

    ``warm="solution"`` (the default) encodes the incumbent schedule into a
    full ILP variable assignment and passes it as
    ``SolverOptions.warm_start_solution`` — the branch-and-bound backend
    installs it as its initial incumbent (and returns it when the tree
    cannot improve), the HiGHS backend derives an objective cutoff row.
    ``warm="objective"`` passes only the incumbent cost, which is the exact
    historical behaviour of the ``"ilp"`` portfolio member (the legacy
    member names canonicalize to this mode).
    """

    name = "ilp"
    requires_incumbent = True
    prunable = True
    prune_label = ("baseline cost", "ILP solve pruned")
    config_error_means_inapplicable = False

    def __init__(self, warm: str = "solution", backend: Optional[str] = None) -> None:
        if warm not in ("solution", "objective"):
            raise ConfigurationError(
                f"stage 'ilp': unknown warm={warm!r}; expected "
                f"'solution' or 'objective'"
            )
        self.warm = warm
        self.backend = None
        if backend is not None and str(backend).strip():
            # 'ilp@scipy' pins this stage's solver backend (the experiment
            # config's ilp_backend applies otherwise); canonicalize and
            # fail early on unknown names
            from repro.ilp.backends import get_backend

            try:
                self.backend = get_backend(str(backend).strip()).name
            except ValueError as exc:
                raise ConfigurationError(f"stage 'ilp': {exc}") from None

    def spec_token(self) -> str:
        options = [] if self.warm == "solution" else [("warm", self.warm)]
        pinned = f"@{self.backend}" if self.backend else ""
        return f"{self.name}{pinned}{_canonical_options(options)}"

    def run(
        self, instance: MbspInstance, incumbent: Optional[Incumbent], ctx: StageContext
    ) -> StageResult:
        from repro.core.scheduler import MbspIlpScheduler
        from repro.core.two_stage import TwoStageResult

        assert incumbent is not None  # guaranteed by the pipeline runner
        seeded = TwoStageResult(
            bsp_schedule=None,
            mbsp_schedule=incumbent.schedule,
            cost=incumbent.cost,
            scheduler_name=incumbent.source or "incumbent",
            policy_name="",
        )
        changes = {"warm_start": "solution" if self.warm == "solution" else "objective"}
        if self.backend is not None:
            changes["backend"] = self.backend
        ilp_config = replace(ctx.config.ilp_config(), **changes)
        result = MbspIlpScheduler(ilp_config).schedule(instance, baseline=seeded)
        extras = {}
        if self.warm == "solution":
            # observable on both backends: 1.0 when the incumbent schedule
            # was encoded and handed to the solver (bnb: initial incumbent
            # installed; scipy: objective cutoff row added), 0.0 when the
            # encoding did not fit and only the cost warm start was used
            extras["warm_started"] = 1.0 if result.warm_start == "solution" else 0.0
        return StageResult(
            stage=self.spec_token(),
            schedule=result.best_schedule,
            cost=result.best_cost,
            status=result.solver_status,
            sticky_status=True,
            solve_time=result.solve_time,
            extras=extras,
            telemetry={
                "warm_start": result.warm_start,
                "solver_message": result.solver_message,
                "ilp_cost": result.ilp_cost,
            },
        )


# ----------------------------------------------------------------------
# local-search refinement
# ----------------------------------------------------------------------
class RefineStage:
    """Local-search refinement of the incumbent (never worse, deterministic)."""

    name = "refine"
    requires_incumbent = True
    prunable = True
    prune_label = ("base cost", "refinement pruned")
    config_error_means_inapplicable = False

    def __init__(
        self,
        budget: Optional[int] = None,
        strategy: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        if strategy is not None and strategy not in ("hill", "anneal"):
            raise ConfigurationError(
                f"stage 'refine': unknown strategy={strategy!r}; "
                f"expected 'hill' or 'anneal'"
            )
        if budget is not None and budget < 0:
            raise ConfigurationError("stage 'refine': budget must be non-negative")
        self.budget = budget
        self.strategy = strategy
        self.seed = seed

    def spec_token(self) -> str:
        options = []
        if self.budget is not None:
            options.append(("budget", str(self.budget)))
        if self.strategy is not None:
            options.append(("strategy", self.strategy))
        if self.seed is not None:
            options.append(("seed", str(self.seed)))
        return f"{self.name}{_canonical_options(options)}"

    def refine_config(self, ctx: StageContext):
        config = ctx.config.refine
        changes = {}
        if self.budget is not None:
            changes["budget"] = self.budget
        if self.strategy is not None:
            changes["strategy"] = self.strategy
        if self.seed is not None:
            changes["seed"] = self.seed
        return replace(config, **changes) if changes else config

    def run(
        self, instance: MbspInstance, incumbent: Optional[Incumbent], ctx: StageContext
    ) -> StageResult:
        from repro.ilp.cancellation import current_cancel_token
        from repro.refine import Refiner

        assert incumbent is not None  # guaranteed by the pipeline runner
        config = self.refine_config(ctx)
        token = current_cancel_token()
        remaining = token.remaining() if token is not None else None
        if remaining is not None:
            # a wall-clock stage budget (budget=<s>s) caps the refinement
            # loop; binding it is wall-clock dependent, like any time limit
            cap = max(remaining, 0.0)
            config = replace(
                config,
                max_time=cap if config.max_time is None else min(config.max_time, cap),
            )
        refined = Refiner(config).refine(
            incumbent.schedule, synchronous=ctx.synchronous
        )
        cost = min(refined.final_cost, incumbent.cost)
        schedule = refined.schedule
        return StageResult(
            stage=self.spec_token(),
            schedule=schedule,
            cost=cost,
            status=f"schedule:{schedule_digest(schedule)}",
            extras=refined.telemetry(incumbent.cost),
            telemetry={
                "refine_accepted": refined.accepted,
                "refine_proposals": refined.proposals,
                "refine_rounds": refined.rounds,
            },
        )


# ----------------------------------------------------------------------
# divide and conquer
# ----------------------------------------------------------------------
class DacStage:
    """The divide-and-conquer ILP; its schedule is reported as-is."""

    name = "dac"
    requires_incumbent = False
    prunable = False
    prune_label = ("base cost", "stage pruned")
    config_error_means_inapplicable = False

    def __init__(
        self,
        max_part_size: Optional[int] = None,
        partition_time_limit: Optional[float] = None,
    ) -> None:
        if max_part_size is not None and max_part_size < 1:
            raise ConfigurationError("stage 'dac': max_part_size must be positive")
        self.max_part_size = max_part_size
        self.partition_time_limit = partition_time_limit

    def spec_token(self) -> str:
        options = []
        if self.max_part_size is not None:
            options.append(("max_part_size", str(self.max_part_size)))
        if self.partition_time_limit is not None:
            options.append(("partition_time_limit", f"{self.partition_time_limit:g}"))
        return f"{self.name}{_canonical_options(options)}"

    def run(
        self, instance: MbspInstance, incumbent: Optional[Incumbent], ctx: StageContext
    ) -> StageResult:
        from repro.experiments.runner import run_divide_and_conquer

        kwargs = {}
        if self.max_part_size is not None:
            kwargs["max_part_size"] = self.max_part_size
        if self.partition_time_limit is not None:
            kwargs["partition_time_limit"] = self.partition_time_limit
        result = run_divide_and_conquer(
            instance.dag, ctx.config, instance=instance, **kwargs
        )
        return StageResult(
            stage=self.spec_token(),
            schedule=result.dac_schedule,
            cost=result.dac_cost,
            status="divide-and-conquer",
            reported_baseline_cost=result.baseline.cost,
            extras={"parts": float(result.partition.num_parts)},
        )


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
for _scheduler in TWO_STAGE_SCHEDULERS:
    register_stage(
        _two_stage_factory(_scheduler),
        aliases=("bsp_ilp",) if _scheduler == "bsp-ilp" else (),
    )

register_stage(
    StageFactory(
        name="baseline",
        description="automatic two-stage baseline (DFS for P = 1, else BSPg; "
        "clairvoyant eviction) — auto-prepended when a spec starts with an "
        "incumbent-consuming stage",
        build=lambda options: BaselineStage(),
    )
)

register_stage(
    StageFactory(
        name="ilp",
        description="holistic ILP scheduler warm-started from the incumbent "
        "(warm=solution encodes the incumbent schedule as a full warm-start "
        "solution; warm=objective passes only its cost; 'ilp@scipy' / "
        "backend=... pins the solver backend of this stage)",
        build=lambda options: IlpStage(
            warm=options.get("warm", "solution"),
            backend=options.get("backend"),
        ),
        options=(("warm", "solution"), ("backend", "")),
    )
)

register_stage(
    StageFactory(
        name="refine",
        description="local-search refinement of the incumbent (repro.refine); "
        "budget/strategy/seed default to the experiment configuration",
        build=lambda options: RefineStage(
            budget=_int_option(options, "budget", "refine"),
            strategy=options.get("strategy"),
            seed=_int_option(options, "seed", "refine"),
        ),
        options=(("budget", ""), ("strategy", ""), ("seed", "")),
    )
)

register_stage(
    StageFactory(
        name="dac",
        description="divide-and-conquer ILP for larger DAGs; reports its "
        "schedule as-is (ignores the incumbent)",
        build=lambda options: DacStage(
            max_part_size=_int_option(options, "max_part_size", "dac"),
            partition_time_limit=_float_option(options, "partition_time_limit", "dac"),
        ),
        options=(("max_part_size", "22"), ("partition_time_limit", "3")),
    ),
    aliases=("divide-and-conquer", "divide_and_conquer"),
)
