"""The pipeline stage registry (mirroring :mod:`repro.ilp.backends`).

Stages are registered as *factories*: a canonical name (plus aliases), a
one-line description, and a ``build(options)`` callable turning the spec
options of one stage token into a :class:`~repro.pipeline.stage.Stage`
instance.  New stages plug in with one :func:`register_stage` call and are
immediately usable in pipeline specs, portfolio members and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.pipeline.stage import Stage


@dataclass(frozen=True)
class StageFactory:
    """One registered stage kind."""

    name: str
    description: str
    build: Callable[[Mapping[str, str]], Stage]
    #: option names the factory understands (for error messages and
    #: spec-fuzzing tests); values are documented defaults, ``""`` = derived
    options: Tuple[Tuple[str, str], ...] = ()
    #: composite stages (``race``) additionally take positional arguments —
    #: sub-specs, e.g. ``race(ilp@bnb, ilp@scipy)``; when set, this builder
    #: is called as ``build_composite(args, options)`` instead of ``build``
    build_composite: "Callable[[Tuple[str, ...], Mapping[str, str]], Stage] | None" = None


_REGISTRY: Dict[str, StageFactory] = {}
_ALIASES: Dict[str, str] = {}


def register_stage(factory: StageFactory, aliases: Tuple[str, ...] = ()) -> StageFactory:
    """Register ``factory`` under its canonical name plus optional aliases.

    Re-registering a name replaces the previous factory (useful in tests);
    an alias may not shadow a different stage's canonical name — the same
    collision rules as the ILP backend registry.
    """
    name = factory.name.lower()
    cleaned = [alias.lower() for alias in aliases]
    if _ALIASES.get(name, name) != name:
        raise ConfigurationError(
            f"stage name {name!r} is already an alias of {_ALIASES[name]!r}"
        )
    for alias in cleaned:
        if alias in _REGISTRY and alias != name:
            raise ConfigurationError(
                f"alias {alias!r} would shadow a registered stage"
            )
        if _ALIASES.get(alias, name) != name:
            raise ConfigurationError(
                f"alias {alias!r} already points to stage {_ALIASES[alias]!r}"
            )
    _REGISTRY[name] = factory
    for alias in cleaned:
        _ALIASES[alias] = name
    return factory


def available_stages() -> List[str]:
    """Sorted canonical names of all registered stages."""
    return sorted(_REGISTRY)


def stage_descriptions() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs of all registered stages, sorted."""
    return [(name, _REGISTRY[name].description) for name in available_stages()]


def get_stage_factory(name: str) -> StageFactory:
    """Look up a stage factory by canonical name or alias."""
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown pipeline stage {name!r}; available stages: "
            f"{available_stages()} (see 'repro pipeline list')"
        ) from None


def make_stage(
    name: str,
    options: Mapping[str, str] | None = None,
    args: Tuple[str, ...] = (),
) -> Stage:
    """Build a stage instance from a name, its spec options and positional
    arguments (the latter only for composite stages such as ``race``)."""
    factory = get_stage_factory(name)
    options = dict(options or {})
    known = {key for key, _ in factory.options}
    unknown = sorted(set(options) - known)
    if unknown:
        hint = ""
        if "budget" in unknown:
            hint = (
                "; a wall-clock stage budget is spelled with an 's' suffix, "
                "e.g. budget=2s"
            )
        raise ConfigurationError(
            f"stage {factory.name!r} does not understand option(s) {unknown}; "
            f"known options: {sorted(known) or 'none'}{hint}"
        )
    if args:
        if factory.build_composite is None:
            raise ConfigurationError(
                f"stage {factory.name!r} takes no positional arguments "
                f"(got {list(args)}); only composite stages like 'race' do"
            )
        return factory.build_composite(tuple(args), options)
    if factory.build_composite is not None:
        return factory.build_composite((), options)
    return factory.build(options)
