"""Core types of the composable scheduler pipeline API.

A *pipeline* is a sequence of :class:`Stage` objects.  Each stage consumes
the current *incumbent* schedule (the best schedule produced by the stages
before it — ``None`` for the first stage) and returns a
:class:`StageResult`: its (possibly improved) schedule, the achieved cost,
a status fragment and per-stage telemetry.  The pipeline threads each
stage's schedule into the next as the warm-start incumbent, which is how the
paper's experiments compose: an initial-assignment heuristic, local-search
refinement, and an exact ILP warm-started from whatever the cheaper stages
already found.

Stages are small objects satisfying the :class:`Stage` protocol and are
created through the registry in :mod:`repro.pipeline.registry`; the built-in
stages live in :mod:`repro.pipeline.stages` and the ``"a|b|c"`` spec
mini-language in :mod:`repro.pipeline.spec`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.model.instance import MbspInstance
from repro.model.schedule import MbspSchedule

#: ``solver_status`` prefix of results whose work was skipped by bound-aware
#: pruning (the canonical definition; re-exported by :mod:`repro.portfolio`).
PRUNED_STATUS_PREFIX = "skipped:"


def schedule_digest(schedule: MbspSchedule) -> str:
    """Short stable digest of a schedule's exact superstep structure."""
    from repro.model.serialization import schedule_to_dict

    blob = json.dumps(schedule_to_dict(schedule), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Incumbent:
    """The best schedule threaded between pipeline stages."""

    schedule: MbspSchedule
    cost: float
    source: str = ""  # spec token of the stage that produced it


@dataclass
class StageContext:
    """Everything a stage may need besides the instance and the incumbent.

    The experiment configuration carries the shared knobs (processors, cost
    parameters, ILP budgets and backend, refinement defaults); ``prune_gap``
    is the pipeline-level bound-pruning gap (``None`` disables pruning) and
    :meth:`lower_bound` evaluates the instance's theory lower bound lazily —
    at most once per pipeline run.
    """

    instance: MbspInstance
    config: "ExperimentConfig"  # noqa: F821 - repro.experiments.runner
    prune_gap: Optional[float] = None
    _lower_bound: Optional[float] = None

    @property
    def synchronous(self) -> bool:
        return self.config.synchronous

    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def prune_enabled(self) -> bool:
        return self.prune_gap is not None and self.prune_gap >= 0

    def lower_bound(self) -> float:
        if self._lower_bound is None:
            from repro.theory.bounds import instance_lower_bound

            self._lower_bound = instance_lower_bound(
                self.instance, synchronous=self.synchronous
            )
        return self._lower_bound


@dataclass
class StageResult:
    """Outcome of one stage on one instance.

    Attributes
    ----------
    stage:
        The stage's canonical spec token (e.g. ``"bspg+clairvoyant"``).
    schedule / cost:
        The stage's best schedule and its cost; becomes the next stage's
        incumbent.
    status:
        Status fragment for the combined pipeline status (a schedule digest
        for deterministic stages, the solver status for ILP stages, the skip
        reason for pruned stages).
    sticky_status:
        Whether the fragment survives into the combined status even when
        later stages run (ILP solver statuses and prune-skip reasons do;
        schedule digests are superseded by the following stage's).
    reported_baseline_cost:
        What the *pipeline*'s ``baseline_cost`` should be when this is the
        first stage, if different from ``cost`` (the divide-and-conquer
        stage reports its internal two-stage baseline).
    extras:
        ``extra_costs`` entries merged (in stage order) into the pipeline's
        :class:`~repro.experiments.runner.InstanceResult`.
    telemetry:
        Per-stage diagnostics (wall time, solver calls, warm-start mode …);
        surfaced by ``repro pipeline run``, never part of fingerprints.
    skipped:
        True when bound-aware pruning skipped the stage.
    """

    stage: str
    schedule: Optional[MbspSchedule]
    cost: float
    status: str = ""
    sticky_status: bool = False
    reported_baseline_cost: Optional[float] = None
    solve_time: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)
    telemetry: Dict[str, object] = field(default_factory=dict)
    skipped: bool = False


@runtime_checkable
class Stage(Protocol):
    """The protocol every pipeline stage implements.

    ``requires_incumbent`` stages can only run after a schedule-producing
    stage (spec parsing auto-prepends the ``baseline`` stage when needed);
    ``prunable`` stages may be skipped by bound-aware pruning when the
    incumbent is provably within the gap of the theory lower bound
    (``prune_label`` provides the wording of the skip message).

    ``config_error_means_inapplicable`` distinguishes the two meanings of a
    ``ConfigurationError`` raised from :meth:`run`: for stages that set it
    (the two-stage heuristics — e.g. the DFS first stage on a ``P > 1``
    instance) the pipeline reports an *inapplicable* result with infinite
    cost instead of failing the sweep; for every other stage the error is a
    genuine misconfiguration (bad solver budgets, invalid step caps) and
    propagates to the caller.
    """

    name: str
    requires_incumbent: bool
    prunable: bool
    prune_label: tuple  # (cost noun, skipped-work phrase)
    config_error_means_inapplicable: bool

    def spec_token(self) -> str:
        """Canonical spec token, including non-default options."""
        ...  # pragma: no cover - protocol

    def run(
        self,
        instance: MbspInstance,
        incumbent: Optional[Incumbent],
        ctx: StageContext,
    ) -> StageResult:
        """Run the stage; may raise ``ConfigurationError`` when inapplicable."""
        ...  # pragma: no cover - protocol
